"""Throughput benchmark for the whole-program batch driver.

Times three configurations over the built-in corpus — cold serial, cold
parallel, and warm (fully cached) — and writes ``BENCH_driver.json`` at the
repository root so future PRs can track driver throughput alongside the
fixpoint-core numbers in ``BENCH_pathmatrix.json``.  Compare snapshots with
``python benchmarks/compare_bench.py OLD.json NEW.json --key elapsed_s``.

The only *hard* assertions are deterministic ones: a warm run must execute
zero analyses, and every configuration must produce identical per-function
reports.  Wall-clock numbers are recorded, not gated (CI machines vary).

Set ``REPRO_FULL=1`` for the paper-sized stress corpus.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.driver.batch import BatchDriver
from repro.driver.corpus import corpus_named


def full_runs_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_driver.json"


def _run(items, jobs, cache_dir):
    started = time.perf_counter()
    batch = BatchDriver(jobs=jobs, cache_dir=cache_dir).analyze_corpus(items)
    elapsed = time.perf_counter() - started
    return batch, elapsed


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    items = corpus_named("builtin", full=full_runs_requested())
    cache_dir = tmp_path_factory.mktemp("driver-cache")
    jobs = 4 if full_runs_requested() else 2

    cold, cold_s = _run(items, 1, cache_dir)
    warm, warm_s = _run(items, 1, cache_dir)
    parallel, parallel_s = _run(items, jobs, tmp_path_factory.mktemp("parallel-cache"))

    functions = cold.function_count()
    rows = [
        {
            "scenario": "cold_serial",
            "jobs": 1,
            "elapsed_s": cold_s,
            "functions": functions,
            "functions_per_s": functions / cold_s if cold_s else float("inf"),
            "analyses_executed": cold.analyses_executed,
            "cache_hits": cold.cache_hits,
        },
        {
            "scenario": "warm_serial",
            "jobs": 1,
            "elapsed_s": warm_s,
            "functions": functions,
            "functions_per_s": functions / warm_s if warm_s else float("inf"),
            "analyses_executed": warm.analyses_executed,
            "cache_hits": warm.cache_hits,
        },
        {
            "scenario": f"cold_parallel_{jobs}",
            "jobs": jobs,
            "elapsed_s": parallel_s,
            "functions": functions,
            "functions_per_s": functions / parallel_s if parallel_s else float("inf"),
            "analyses_executed": parallel.analyses_executed,
            "cache_hits": parallel.cache_hits,
        },
    ]
    return {"items": items, "cold": cold, "warm": warm, "parallel": parallel, "rows": rows}


def test_corpus_is_substantial(measurements):
    assert len(measurements["items"]) >= 8
    assert measurements["cold"].function_count() >= 30
    assert not any(p.error for p in measurements["cold"].programs)


def test_warm_run_is_fully_cached(measurements):
    warm = measurements["warm"]
    cold = measurements["cold"]
    assert warm.analyses_executed == 0
    assert warm.cache_hits == cold.function_count()
    # and the cache returns exactly what the cold run computed
    for cold_p, warm_p in zip(cold.programs, warm.programs):
        assert cold_p.functions == warm_p.functions


def test_parallel_run_matches_serial(measurements):
    cold = measurements["cold"]
    parallel = measurements["parallel"]
    for cold_p, par_p in zip(cold.programs, parallel.programs):
        assert cold_p.functions == par_p.functions
        assert cold_p.simulation == par_p.simulation


def test_warm_run_is_faster_than_cold(measurements):
    rows = {r["scenario"]: r for r in measurements["rows"]}
    # reading ~40 small JSON files must beat re-running ~40 fixpoints; the
    # margin is enormous in practice, so this is safe to gate on
    assert rows["warm_serial"]["elapsed_s"] < rows["cold_serial"]["elapsed_s"]


def test_emit_bench_json(measurements):
    rows = measurements["rows"]
    payload = {
        "schema": 1,
        "suite": "driver_batch",
        "mode": "full" if full_runs_requested() else "quick",
        "corpus_programs": len(measurements["items"]),
        "corpus_functions": measurements["cold"].function_count(),
        "scenarios": rows,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(BENCH_PATH.read_text())
    assert written["scenarios"], "benchmark file must record at least one scenario"
