"""Throughput benchmark for the whole-program batch driver.

Times five configurations over the ``bench`` corpus (the built-in corpus
plus a ~200-function call web, so scheduling and chunking actually matter)
and writes ``BENCH_driver.json`` at the repository root:

* ``cold_serial``      — jobs=1, fresh cache (the inline, no-pool path),
* ``warm_serial``      — jobs=1 over the cold run's cache (pure cache read),
* ``cold_parallel_2/4/8`` — persistent worker pool, fresh cache each.

Every cold scenario gets its own empty cache directory.  The serial path
(the staged engine) must execute exactly one analysis per *distinct*
function — corpus functions that are content-identical across programs
(same body, types, and callee closure, e.g. the ``insert`` shared by the
two tree examples) are served from the just-written stage artifacts
instead of re-solved.  The parallel path probes all plans up front, so a
cold parallel run analyzes every function with zero hits.  The warm run
must execute zero analyses.  All configurations must produce identical
per-function reports (the parallel path is bit-identical to serial).

Wall-clock numbers are recorded, not gated (CI machines vary); the snapshot
records ``host_cpus`` so scaling ratios can be judged in context — on a
single-core container the parallel scenarios measure pure overhead and land
near 1.0x.  ``python benchmarks/compare_bench.py --check-scaling
BENCH_driver.json`` gates on that ratio host-awarely.

Set ``REPRO_FULL=1`` for the paper-sized corpus.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.driver.batch import BatchDriver
from repro.driver.corpus import corpus_named
from repro.driver.executor import preferred_start_method


def full_runs_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_driver.json"

PARALLEL_JOBS = (2, 4, 8)


def _run(items, jobs, cache_dir):
    started = time.perf_counter()
    batch = BatchDriver(jobs=jobs, cache_dir=cache_dir).analyze_corpus(items)
    elapsed = time.perf_counter() - started
    return batch, elapsed


def _row(scenario, jobs, batch, elapsed, functions):
    row = {
        "scenario": scenario,
        "jobs": jobs,
        "elapsed_s": elapsed,
        "functions": functions,
        "functions_per_s": functions / elapsed if elapsed else float("inf"),
        "analyses_executed": batch.analyses_executed,
        "cache_hits": batch.cache_hits,
    }
    stats = batch.to_dict()["stats"]
    row["start_method"] = stats.get("start_method")
    if stats.get("profile"):
        row["profile_totals"] = stats["profile"]["totals"]
    return row


def _content_duplicate_count(items) -> int:
    """Functions sharing all analysis-relevant content (body, types, callee
    closure) with an earlier corpus function — the staged serial engine
    serves these from stage artifacts instead of re-solving them."""
    from repro.driver.cache import function_digests
    from repro.driver.callgraph import build_call_graph
    from repro.driver.pipeline import PipelineOptions
    from repro.lang.parser import parse_program

    seen: set[str] = set()
    duplicates = 0
    for item in items:
        program = parse_program(item.source)
        digests = function_digests(
            program, build_call_graph(program), PipelineOptions().key()
        )
        for digest in digests.values():
            if digest in seen:
                duplicates += 1
            seen.add(digest)
    return duplicates


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    items = corpus_named("bench", full=full_runs_requested())

    serial_cache = tmp_path_factory.mktemp("cache-serial")
    cold, cold_s = _run(items, 1, serial_cache)
    warm, warm_s = _run(items, 1, serial_cache)
    functions = cold.function_count()

    rows = [
        _row("cold_serial", 1, cold, cold_s, functions),
        _row("warm_serial", 1, warm, warm_s, functions),
    ]
    parallel_runs = {}
    for jobs in PARALLEL_JOBS:
        # a fresh, empty cache per scenario: cold means cold
        batch, elapsed = _run(items, jobs, tmp_path_factory.mktemp(f"cache-p{jobs}"))
        parallel_runs[jobs] = batch
        rows.append(_row(f"cold_parallel_{jobs}", jobs, batch, elapsed, functions))
    return {
        "items": items,
        "cold": cold,
        "warm": warm,
        "parallel_runs": parallel_runs,
        "rows": rows,
        "duplicates": _content_duplicate_count(items),
    }


def test_corpus_is_substantial(measurements):
    assert len(measurements["items"]) >= 8
    assert measurements["cold"].function_count() >= 200
    assert not any(p.error for p in measurements["cold"].programs)


def test_cold_runs_execute_every_function_exactly_once(measurements):
    """A cold run over an empty cache solves each *distinct* function once.
    The staged serial engine serves content-identical duplicates from the
    stage artifacts written moments earlier; the parallel path probes all
    plans before running anything, so it sees an empty cache throughout."""
    functions = measurements["cold"].function_count()
    duplicates = measurements["duplicates"]
    for row in measurements["rows"]:
        if not row["scenario"].startswith("cold_"):
            continue
        if row["scenario"] == "cold_serial":
            assert row["cache_hits"] == duplicates, row["scenario"]
            assert row["analyses_executed"] == functions - duplicates, row["scenario"]
        else:
            assert row["cache_hits"] == 0, row["scenario"]
            assert row["analyses_executed"] == functions, row["scenario"]


def test_warm_run_is_fully_cached(measurements):
    warm = measurements["warm"]
    cold = measurements["cold"]
    assert warm.analyses_executed == 0
    assert warm.cache_hits == cold.function_count()
    # and the cache returns exactly what the cold run computed
    for cold_p, warm_p in zip(cold.programs, warm.programs):
        assert cold_p.functions == warm_p.functions


def test_parallel_runs_match_serial(measurements):
    cold = measurements["cold"]
    for jobs, parallel in measurements["parallel_runs"].items():
        for cold_p, par_p in zip(cold.programs, parallel.programs):
            assert cold_p.functions == par_p.functions, (jobs, cold_p.name)
            assert cold_p.simulation == par_p.simulation, (jobs, cold_p.name)


def test_warm_run_is_faster_than_cold(measurements):
    rows = {r["scenario"]: r for r in measurements["rows"]}
    # reading small JSON files must beat re-running hundreds of fixpoints;
    # the margin is enormous in practice, so this is safe to gate on
    assert rows["warm_serial"]["elapsed_s"] < rows["cold_serial"]["elapsed_s"]


def test_emit_bench_json(measurements):
    rows = measurements["rows"]
    by_name = {r["scenario"]: r for r in rows}
    serial_rate = by_name["cold_serial"]["functions_per_s"]
    scaling = {
        f"parallel_{jobs}_vs_serial": by_name[f"cold_parallel_{jobs}"]["functions_per_s"]
        / serial_rate
        for jobs in PARALLEL_JOBS
    }
    payload = {
        "schema": 2,
        "suite": "driver_batch",
        "mode": "full" if full_runs_requested() else "quick",
        "host_cpus": os.cpu_count() or 1,
        "start_method": preferred_start_method(),
        "corpus_programs": len(measurements["items"]),
        "corpus_functions": measurements["cold"].function_count(),
        "scenarios": rows,
        "scaling": scaling,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(BENCH_PATH.read_text())
    assert written["scenarios"], "benchmark file must record at least one scenario"
    assert written["scaling"], "benchmark file must record scaling ratios"
