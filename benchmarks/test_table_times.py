"""Experiment E1 — the TIMES table of section 4.4.

The paper reports wall-clock seconds of the sequential and strip-mined
Barnes–Hut program on a Sequent (80 time steps, N ∈ {128, 512, 1024}).  The
benchmark measures the simulated elapsed time of the same schedule on the
Sequent-like machine model, prints the regenerated table (calibrated so the
sequential N=128 entry equals the paper's 188 s), and checks the time ratios
the table implies.
"""

import pytest

from repro.bench import PAPER_TIMES, format_times_table, run_speedup_experiment
from repro.bench.tables import DEFAULT_DISTRIBUTION, DEFAULT_SEED, DEFAULT_THETA
from repro.machine import SEQUENT_LIKE
from repro.nbody import BarnesHutSimulation, SimulationConfig, StripMinedParallelSimulation, make_particles


def test_times_table_reproduces_paper_shape(speedup_table):
    """The regenerated TIMES table preserves the paper's orderings."""
    table = speedup_table
    print()
    print(format_times_table(table))
    for n in table.ns:
        seq = table.cell(n, 1).elapsed_units
        par4 = table.cell(n, 4).elapsed_units
        par7 = table.cell(n, 7).elapsed_units
        # parallel is faster, and 7 PEs beat 4 PEs — for every problem size
        assert par4 < seq
        assert par7 < par4
    # times grow super-linearly with N (the O(N log N) algorithm), as in the paper
    assert table.cell(table.ns[-1], 1).elapsed_units > table.cell(table.ns[0], 1).elapsed_units * (
        table.ns[-1] / table.ns[0]
    )


def test_paper_time_ratios_match_within_tolerance(speedup_table):
    """seq/par time ratios (the quantity independent of calibration) match the paper."""
    table = speedup_table
    for pes in (4, 7):
        for n in table.ns:
            if n not in PAPER_TIMES[1]:
                continue
            paper_ratio = PAPER_TIMES[1][n] / PAPER_TIMES[pes][n]
            ours = table.cell(n, 1).elapsed_units / table.cell(n, pes).elapsed_units
            assert ours == pytest.approx(paper_ratio, rel=0.25)


def test_benchmark_sequential_time_step(benchmark):
    """pytest-benchmark target: one sequential Barnes–Hut time step (N=128)."""
    config = SimulationConfig(
        n=128, steps=1, theta=DEFAULT_THETA, distribution=DEFAULT_DISTRIBUTION, seed=DEFAULT_SEED
    )

    def run_one_step():
        particles = make_particles(128, DEFAULT_DISTRIBUTION, seed=DEFAULT_SEED)
        return BarnesHutSimulation(particles, config).run().total_work

    work = benchmark(run_one_step)
    assert work > 0


def test_benchmark_parallel_time_step(benchmark):
    """pytest-benchmark target: one strip-mined 4-PE time step (N=128)."""
    config = SimulationConfig(
        n=128, steps=1, theta=DEFAULT_THETA, distribution=DEFAULT_DISTRIBUTION, seed=DEFAULT_SEED
    )

    def run_one_step():
        particles = make_particles(128, DEFAULT_DISTRIBUTION, seed=DEFAULT_SEED)
        sim = StripMinedParallelSimulation(particles, config, SEQUENT_LIKE.with_pes(4))
        return sim.run().elapsed

    elapsed = benchmark(run_one_step)
    assert elapsed > 0
