"""Incremental re-analysis benchmark for the staged engine.

Times four single-process scenarios over the ``bench`` corpus (the built-in
corpus plus the ~200-function call web) against ONE persistent artifact
store, the way an editor-driven workflow would use it, and writes
``BENCH_incremental.json`` at the repository root:

* ``cold``      — empty store, everything is computed and recorded,
* ``warm_noop`` — the same sources again (pure report probes),
* ``edit_leaf`` — one summary-preserving edit (an unused ``var`` padding
  declaration) in the call web's most-depended-upon function: its whole
  transitive caller cone is *firewalled* behind the unchanged summary
  digest, so exactly one fixpoint re-runs,
* ``edit_root`` — the same edit in a function nobody calls (the other
  extreme: nothing to firewall, still exactly one fixpoint).

Edits are cumulative (leaf first, then root on top), so each run's dirty
set against the previous manifest is exactly one function.

The edited program's report is checked bit-for-bit against a from-scratch
(no cache) analysis of the edited source — incrementality must never
change an answer.  ``python benchmarks/compare_bench.py
--check-incremental BENCH_incremental.json`` gates the recorded
edit-vs-cold speedups (the quick corpus shows well over the 10x floor).

Set ``REPRO_FULL=1`` for the paper-sized corpus.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.driver.batch import BatchDriver
from repro.driver.callgraph import build_call_graph
from repro.driver.corpus import CorpusItem, corpus_named
from repro.lang.parser import parse_program


def full_runs_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_incremental.json"

#: the corpus item carrying the large call web the edits land in
WEB_NAME = "stress/callweb_200"


def _dependents(source: str) -> dict[str, set[str]]:
    """function -> the functions that transitively call it."""
    program = parse_program(source)
    graph = build_call_graph(program)
    dependents: dict[str, set[str]] = {f.name: set() for f in program.functions}
    for caller in dependents:
        for callee in graph.transitive_callees(caller):
            dependents[callee].add(caller)
    return dependents


def _pad(source: str, function: str) -> str:
    """Insert an unused ``var`` declaration at the top of ``function`` —
    a body change whose effect summary, preservation verdict, and return
    type are all unchanged."""
    needle = f"function {function}(h)\n{{\n"
    assert needle in source, function
    return source.replace(needle, needle + "  var __pad;\n", 1)


def _run(items, cache_dir):
    started = time.perf_counter()
    batch = BatchDriver(jobs=1, cache_dir=cache_dir, simulate=False).analyze_corpus(
        items
    )
    return batch, time.perf_counter() - started


def _row(scenario, batch, elapsed):
    return {
        "scenario": scenario,
        "elapsed_s": elapsed,
        "analyses_executed": batch.analyses_executed,
        "cache_hits": batch.cache_hits,
        "incremental": batch.incremental,
    }


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    base_items = corpus_named("bench", full=full_runs_requested())
    web = next(it for it in base_items if it.name == WEB_NAME)
    dependents = _dependents(web.source)
    leaf = max(dependents, key=lambda fn: (len(dependents[fn]), fn))
    roots = [fn for fn in sorted(dependents) if not dependents[fn]]
    assert roots, "call web has no root function"
    root = roots[0]

    def with_web(source):
        return [
            CorpusItem(name=it.name, source=source, description=it.description)
            if it.name == WEB_NAME
            else it
            for it in base_items
        ]

    leaf_source = _pad(web.source, leaf)
    root_source = _pad(leaf_source, root)  # cumulative: leaf edit stays

    store = tmp_path_factory.mktemp("incremental-store")
    cold, cold_s = _run(base_items, store)
    warm, warm_s = _run(base_items, store)
    edit_leaf, leaf_s = _run(with_web(leaf_source), store)
    edit_root, root_s = _run(with_web(root_source), store)

    # the reference answer for the final (doubly edited) web program
    scratch, _ = _run([CorpusItem(name=WEB_NAME, source=root_source)], None)

    return {
        "items": base_items,
        "leaf": leaf,
        "leaf_dependents": len(dependents[leaf]),
        "root": root,
        "cold": cold,
        "warm": warm,
        "edit_leaf": edit_leaf,
        "edit_root": edit_root,
        "scratch": scratch,
        "rows": [
            _row("cold", cold, cold_s),
            _row("warm_noop", warm, warm_s),
            _row("edit_leaf", edit_leaf, leaf_s),
            _row("edit_root", edit_root, root_s),
        ],
    }


def test_cold_run_analyzes_the_whole_corpus(measurements):
    cold = measurements["cold"]
    assert cold.function_count() >= 200
    assert not any(p.error for p in cold.programs)
    assert cold.analyses_executed >= 190  # content-identical dupes reassemble
    assert cold.incremental["dirty"] == cold.function_count()


def test_noop_rerun_is_fully_firewalled(measurements):
    warm = measurements["warm"]
    assert warm.analyses_executed == 0
    assert warm.incremental["dirty"] == 0
    assert warm.incremental["fixpoints_run"] == 0
    assert warm.cache_hits == warm.function_count()


def test_single_leaf_edit_runs_exactly_one_fixpoint(measurements):
    """The headline property: editing one deeply-depended-upon function
    re-solves that function alone; every transitive caller is served from
    cache because the callee's summary digest did not move."""
    report = measurements["edit_leaf"]
    inc = report.incremental
    assert inc["dirty"] == 1
    assert report.analyses_executed == 1
    assert inc["recomputed"] == 1
    # the caller cone exists and was firewalled, not just absent
    assert measurements["leaf_dependents"] >= 10
    assert inc["firewalled"] >= measurements["leaf_dependents"]


def test_single_root_edit_runs_exactly_one_fixpoint(measurements):
    report = measurements["edit_root"]
    assert report.incremental["dirty"] == 1
    assert report.analyses_executed == 1
    assert report.incremental["recomputed"] == 1


def test_incremental_report_matches_from_scratch(measurements):
    """Bit-identity: the doubly-edited web program's incremental report
    equals a no-cache analysis of the same source."""
    incremental = next(
        p for p in measurements["edit_root"].programs if p.name == WEB_NAME
    )
    (scratch,) = measurements["scratch"].programs
    assert incremental.functions == scratch.functions


def test_emit_bench_json(measurements):
    rows = measurements["rows"]
    by_name = {r["scenario"]: r for r in rows}
    cold_s = by_name["cold"]["elapsed_s"]
    speedup = {
        f"{name}_vs_cold": cold_s / by_name[name]["elapsed_s"]
        if by_name[name]["elapsed_s"]
        else float("inf")
        for name in ("warm_noop", "edit_leaf", "edit_root")
    }
    payload = {
        "schema": 1,
        "suite": "driver_incremental",
        "mode": "full" if full_runs_requested() else "quick",
        "host_cpus": os.cpu_count() or 1,
        "corpus_programs": len(measurements["items"]),
        "corpus_functions": measurements["cold"].function_count(),
        "edit": {
            "leaf": measurements["leaf"],
            "leaf_dependents": measurements["leaf_dependents"],
            "root": measurements["root"],
        },
        "scenarios": rows,
        "speedup": speedup,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(BENCH_PATH.read_text())
    assert written["speedup"]["edit_leaf_vs_cold"] > 1.0
    assert written["speedup"]["edit_root_vs_cold"] > 1.0
