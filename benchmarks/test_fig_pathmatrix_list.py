"""Experiment E3 — the section 3.3.2 path matrices (polynomial scaling loop).

Regenerates the conservative matrix and the ADDS-informed matrices for the
``while p <> NULL { p->coef = p->coef * c; p = p->next; }`` loop and checks
the claims the paper draws from them.  The benchmark target measures the cost
of the full analysis (parse → summaries → fixed point → primed loop pass).
"""

from repro.adds.library import merged_into
from repro.bench.figures import POLYNOMIAL_SCALE_SRC, polynomial_pathmatrix_figure
from repro.pathmatrix import analyze_loop_dependence


def test_polynomial_figure_claims(capsys=None):
    figure = polynomial_pathmatrix_figure()
    print()
    print(figure.render())
    assert all(figure.claims.values()), figure.claims
    # the conservative matrix has =? everywhere off the diagonal
    cons = figure.conservative
    for a in cons.variables:
        for b in cons.variables:
            if a != b:
                assert cons.may_alias(a, b)


def test_benchmark_polynomial_loop_analysis(benchmark):
    program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")

    def analyze():
        return analyze_loop_dependence(program, "scale")

    report = benchmark(analyze)
    assert report.parallelizable
