"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or in-text artifacts
(see DESIGN.md's per-experiment index).  Workload sizes default to something
that completes in a few seconds; set ``REPRO_FULL=1`` in the environment to
run the paper-sized workloads (N up to 1024).
"""

from __future__ import annotations

import os

import pytest


def full_runs_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def experiment_sizes() -> tuple[int, ...]:
    """Problem sizes for the speedup experiments."""
    if full_runs_requested():
        return (128, 512, 1024)
    return (128, 384)


@pytest.fixture(scope="session")
def experiment_steps() -> int:
    return 2 if not full_runs_requested() else 8


@pytest.fixture(scope="session")
def speedup_table(experiment_sizes, experiment_steps):
    """The headline measurement, shared by the TIMES and SPEEDUP benches."""
    from repro.bench import run_speedup_experiment

    return run_speedup_experiment(ns=experiment_sizes, steps=experiment_steps)
