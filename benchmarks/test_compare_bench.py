"""Tests for the benchmark snapshot differ (``compare_bench.py``).

A PR that adds or retires a benchmark must still be able to diff its
snapshot against the previous one: scenarios present in only one file are
reported as added/removed, never treated as a comparison failure.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", Path(__file__).parent / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _snapshot(path: Path, **scenarios: float) -> str:
    payload = {
        "scenarios": [
            {"scenario": name, "worklist_s": value} for name, value in scenarios.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_identical_snapshots_pass(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0, deep=2.0)
    assert compare_bench.main([old, old]) == 0
    assert "OK" in capsys.readouterr().out


def test_added_and_removed_scenarios_do_not_fail(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0, retired=4.0)
    new = _snapshot(tmp_path / "new.json", wide=1.0, brand_new=0.5)
    assert compare_bench.main([old, new]) == 0
    out = capsys.readouterr().out
    assert "added: brand_new" in out
    assert "removed: retired" in out
    assert "OK" in out


def test_disjoint_snapshots_still_succeed(tmp_path):
    """The degenerate case that used to make the diff unusable: a PR whose
    snapshot shares no scenario with the baseline."""
    old = _snapshot(tmp_path / "old.json", a=1.0)
    new = _snapshot(tmp_path / "new.json", b=1.0)
    assert compare_bench.main([old, new]) == 0


def test_regression_detected(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0)
    new = _snapshot(tmp_path / "new.json", wide=1.5, extra=9.9)
    assert compare_bench.main([old, new]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "added: extra" in out  # the new scenario is reported, not blamed


def test_speedup_is_not_a_regression(tmp_path):
    old = _snapshot(tmp_path / "old.json", wide=2.0)
    new = _snapshot(tmp_path / "new.json", wide=1.0)
    assert compare_bench.main([old, new]) == 0


def test_unreadable_file_exits_2(tmp_path):
    bad = tmp_path / "missing.json"
    good = _snapshot(tmp_path / "good.json", wide=1.0)
    with pytest.raises(SystemExit) as exc:
        compare_bench.main([str(bad), good])
    assert exc.value.code == 2
