"""Tests for the benchmark snapshot differ (``compare_bench.py``).

A PR that adds or retires a benchmark must still be able to diff its
snapshot against the previous one: scenarios present in only one file are
reported as added/removed, never treated as a comparison failure.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench", Path(__file__).parent / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _snapshot(path: Path, **scenarios: float) -> str:
    payload = {
        "scenarios": [
            {"scenario": name, "worklist_s": value} for name, value in scenarios.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_identical_snapshots_pass(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0, deep=2.0)
    assert compare_bench.main([old, old]) == 0
    assert "OK" in capsys.readouterr().out


def test_added_and_removed_scenarios_do_not_fail(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0, retired=4.0)
    new = _snapshot(tmp_path / "new.json", wide=1.0, brand_new=0.5)
    assert compare_bench.main([old, new]) == 0
    out = capsys.readouterr().out
    assert "added: brand_new" in out
    assert "removed: retired" in out
    assert "OK" in out


def test_disjoint_snapshots_still_succeed(tmp_path):
    """The degenerate case that used to make the diff unusable: a PR whose
    snapshot shares no scenario with the baseline."""
    old = _snapshot(tmp_path / "old.json", a=1.0)
    new = _snapshot(tmp_path / "new.json", b=1.0)
    assert compare_bench.main([old, new]) == 0


def test_regression_detected(tmp_path, capsys):
    old = _snapshot(tmp_path / "old.json", wide=1.0)
    new = _snapshot(tmp_path / "new.json", wide=1.5, extra=9.9)
    assert compare_bench.main([old, new]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "added: extra" in out  # the new scenario is reported, not blamed


def test_speedup_is_not_a_regression(tmp_path):
    old = _snapshot(tmp_path / "old.json", wide=2.0)
    new = _snapshot(tmp_path / "new.json", wide=1.0)
    assert compare_bench.main([old, new]) == 0


def test_unreadable_file_exits_2(tmp_path):
    bad = tmp_path / "missing.json"
    good = _snapshot(tmp_path / "good.json", wide=1.0)
    with pytest.raises(SystemExit) as exc:
        compare_bench.main([str(bad), good])
    assert exc.value.code == 2


# -- scaling mode --------------------------------------------------------------
def _driver_snapshot(path: Path, ratio: float, host_cpus: int) -> str:
    payload = {
        "schema": 2,
        "host_cpus": host_cpus,
        "scaling": {
            "parallel_2_vs_serial": ratio,
            "parallel_4_vs_serial": ratio,
            "parallel_8_vs_serial": ratio,
        },
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_scaling_floor_is_host_aware():
    assert compare_bench.scaling_floor({"host_cpus": 8}, None) == 1.0
    assert compare_bench.scaling_floor({"host_cpus": 1}, None) == 0.85
    assert compare_bench.scaling_floor({}, None) == 0.85  # missing → assume 1 cpu
    assert compare_bench.scaling_floor({"host_cpus": 8}, 2.5) == 2.5


def test_scaling_pass_on_single_core_parity(tmp_path, capsys):
    snap = _driver_snapshot(tmp_path / "b.json", ratio=0.95, host_cpus=1)
    assert compare_bench.main(["--check-scaling", snap]) == 0
    assert "OK" in capsys.readouterr().out


def test_scaling_collapse_fails_even_on_single_core(tmp_path, capsys):
    snap = _driver_snapshot(tmp_path / "b.json", ratio=0.5, host_cpus=1)
    assert compare_bench.main(["--check-scaling", snap]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_scaling_multi_core_requires_speedup_floor(tmp_path):
    # 0.95x is fine on one core but a failure on a real multi-core host
    snap = _driver_snapshot(tmp_path / "b.json", ratio=0.95, host_cpus=8)
    assert compare_bench.main(["--check-scaling", snap]) == 1


def test_scaling_min_ratio_override(tmp_path):
    snap = _driver_snapshot(tmp_path / "b.json", ratio=2.6, host_cpus=8)
    assert compare_bench.main(["--check-scaling", snap, "--min-ratio", "2.5"]) == 0
    assert compare_bench.main(["--check-scaling", snap, "--min-ratio", "3.0"]) == 1


def test_scaling_missing_section_exits_2(tmp_path):
    path = tmp_path / "old-schema.json"
    path.write_text(json.dumps({"schema": 1, "scenarios": []}))
    assert compare_bench.main(["--check-scaling", str(path)]) == 2


def test_scaling_mode_rejects_positional_snapshots(tmp_path):
    snap = _driver_snapshot(tmp_path / "b.json", ratio=1.0, host_cpus=1)
    assert compare_bench.main(["--check-scaling", snap, snap]) == 2
