"""Experiment E8 — attribute the lost speedup to the paper's four causes.

The results section explains the sub-linear speedups by (1) static
scheduling, (2) unexploited subtree parallelism inside compute_force,
(3) slow synchronization, (4) unoptimized iteration granularity.  The
ablation removes each cost in turn on the simulated machine and checks that
every one of them indeed accounts for part of the gap, and that removing all
of them (plus parallelizing the tree build) approaches linear speedup.
"""

import pytest

from repro.bench import (
    loss_attribution,
    scheduling_ablation,
    subtree_parallelism_ablation,
    sync_cost_ablation,
)


@pytest.fixture(scope="module")
def attribution():
    return loss_attribution(n=256, pes=4, steps=1)


def test_every_listed_cause_contributes(attribution):
    print()
    print(attribution.render())
    assert attribution.baseline_speedup < 3.2  # the paper-like sub-linear baseline
    for name, value in attribution.variants.items():
        assert value >= attribution.baseline_speedup - 1e-9, name
    # static scheduling and granularity are the dominant recoverable losses
    assert attribution.improvement("dynamic scheduling (one fork/join per pass)") > 0.2
    assert attribution.improvement("coarser granularity (4 particles per task)") > 0.1


def test_removing_everything_approaches_linear(attribution):
    combined = attribution.variants["all of the above + parallel tree build"]
    assert combined > 3.5
    assert combined <= 4.0 + 1e-6


def test_scheduling_and_sync_sweeps():
    sched = scheduling_ablation(n=256, pes=7, steps=1)
    print()
    print(sched.render())
    assert sched.variants["dynamic"] >= sched.baseline_speedup
    sync = sync_cost_ablation(n=256, pes=4, sync_costs=(0.0, 10.0, 50.0))
    print(sync.render())
    assert sync.variants["sync=0"] >= sync.variants["sync=50"]
    subtree = subtree_parallelism_ablation(n=256, pes=4)
    print(subtree.render())
    assert all(v <= 4.0 + 1e-6 for v in subtree.variants.values())


def test_benchmark_loss_attribution(benchmark):
    result = benchmark.pedantic(
        loss_attribution,
        kwargs=dict(n=128, pes=4, steps=1),
        iterations=1,
        rounds=3,
    )
    assert result.variants
