#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` snapshots and fail on performance regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.2]
                                       [--key worklist_s]
    python benchmarks/compare_bench.py --check-scaling BENCH_driver.json
                                       [--min-ratio 1.0]
    python benchmarks/compare_bench.py --check-incremental BENCH_incremental.json
                                       [--min-speedup 10.0]

**Diff mode** (two positional snapshots): scenarios are matched by name.  A
scenario regresses when its timing key in NEW exceeds OLD by more than
``threshold`` (default 20%).  Scenarios present in only one file are
reported but do not fail the comparison.

**Scaling mode** (``--check-scaling``): reads one ``BENCH_driver.json``
snapshot and fails when the recorded ``parallel_4_vs_serial`` throughput
ratio falls below the floor.  The floor is host-aware: on a multi-core host
the parallel driver must at least match serial (floor 1.0); on a
single-core host the parallel scenarios measure pure scheduling/IPC
overhead, so the floor relaxes to 0.85 — parallel may pay a few percent,
never a collapse.  ``--min-ratio`` overrides the floor explicitly.

**Incremental mode** (``--check-incremental``): reads one
``BENCH_incremental.json`` snapshot and fails unless (a) each single-edit
scenario re-ran exactly one analysis — the summary-digest firewall held —
and (b) the recorded edit-vs-cold speedups clear the floor (default 10x).

Exit status: 0 when no regression, 1 on regression, 2 on usage/parse
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: floor for parallel_4/serial throughput on a multi-core host
MULTI_CORE_FLOOR = 1.0
#: floor on a single-core host, where workers only add overhead
SINGLE_CORE_FLOOR = 0.85
#: the scaling ratio the CI gate judges
SCALING_KEY = "parallel_4_vs_serial"

#: floor for the single-edit-vs-cold speedup of the incremental engine
MIN_EDIT_SPEEDUP = 10.0
#: the single-edit scenarios the incremental gate judges
EDIT_SCENARIOS = ("edit_leaf", "edit_root")


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read benchmark file {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def scenarios_by_name(payload: dict) -> dict[str, dict]:
    return {row["scenario"]: row for row in payload.get("scenarios", [])}


def scaling_floor(payload: dict, min_ratio: float | None) -> float:
    if min_ratio is not None:
        return min_ratio
    host_cpus = payload.get("host_cpus") or 1
    return MULTI_CORE_FLOOR if host_cpus > 1 else SINGLE_CORE_FLOOR


def check_scaling(payload: dict, min_ratio: float | None) -> int:
    scaling = payload.get("scaling")
    if not scaling:
        print("error: snapshot has no 'scaling' section (schema < 2?)", file=sys.stderr)
        return 2
    ratio = scaling.get(SCALING_KEY)
    if ratio is None:
        print(f"error: snapshot has no {SCALING_KEY!r} ratio", file=sys.stderr)
        return 2
    floor = scaling_floor(payload, min_ratio)
    host_cpus = payload.get("host_cpus") or 1
    print(f"host_cpus: {host_cpus}   floor: {floor:.2f}")
    for name in sorted(scaling):
        print(f"  {name:<24} {scaling[name]:.3f}x")
    if ratio < floor:
        print(
            f"\nFAIL: {SCALING_KEY} = {ratio:.3f}x is below the "
            f"{floor:.2f}x floor — the parallel driver is slower than it "
            f"is allowed to be on this host"
        )
        return 1
    print(f"\nOK: {SCALING_KEY} = {ratio:.3f}x >= {floor:.2f}x")
    return 0


def check_incremental(payload: dict, min_speedup: float | None) -> int:
    floor = MIN_EDIT_SPEEDUP if min_speedup is None else min_speedup
    speedup = payload.get("speedup")
    if not speedup:
        print("error: snapshot has no 'speedup' section", file=sys.stderr)
        return 2
    scenarios = scenarios_by_name(payload)
    failures: list[str] = []
    for name in EDIT_SCENARIOS:
        row = scenarios.get(name)
        if row is None:
            print(f"error: snapshot has no {name!r} scenario", file=sys.stderr)
            return 2
        executed = row.get("analyses_executed")
        ratio = speedup.get(f"{name}_vs_cold")
        print(
            f"  {name:<12} {executed} analysis(es) re-run, "
            f"{ratio:.1f}x vs cold" if ratio is not None else f"  {name}: no ratio"
        )
        if executed != 1:
            failures.append(
                f"{name}: {executed} analyses re-ran after a single edit "
                f"(the summary firewall did not hold)"
            )
        if ratio is None or ratio < floor:
            failures.append(
                f"{name}: {ratio if ratio is not None else 'missing'}x "
                f"vs cold is below the {floor:.1f}x floor"
            )
    if failures:
        print(f"\nFAIL: {len(failures)} incremental gate violation(s):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nOK: single-edit re-analysis holds the {floor:.1f}x floor")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed relative slowdown before failing (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--key",
        default="worklist_s",
        help="per-scenario timing key to compare (default: worklist_s)",
    )
    parser.add_argument(
        "--check-scaling",
        metavar="SNAPSHOT",
        help="check the parallel-vs-serial scaling ratio of one driver snapshot",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        help="override the host-aware scaling floor (with --check-scaling)",
    )
    parser.add_argument(
        "--check-incremental",
        metavar="SNAPSHOT",
        help="check the single-edit speedup of one incremental snapshot",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "override the edit-vs-cold speedup floor (with "
            f"--check-incremental; default {MIN_EDIT_SPEEDUP:.0f})"
        ),
    )
    args = parser.parse_args(argv)

    if args.check_scaling:
        if args.old or args.new:
            print("error: --check-scaling takes no OLD/NEW snapshots", file=sys.stderr)
            return 2
        return check_scaling(load(args.check_scaling), args.min_ratio)
    if args.check_incremental:
        if args.old or args.new:
            print(
                "error: --check-incremental takes no OLD/NEW snapshots",
                file=sys.stderr,
            )
            return 2
        return check_incremental(load(args.check_incremental), args.min_speedup)
    if not args.old or not args.new:
        print("error: diff mode needs OLD and NEW snapshots", file=sys.stderr)
        return 2

    old = scenarios_by_name(load(args.old))
    new = scenarios_by_name(load(args.new))

    regressions: list[str] = []
    added: list[str] = []
    removed: list[str] = []
    print(f"{'scenario':<16} {'old':>10} {'new':>10} {'delta':>8}")
    for name in sorted(old.keys() | new.keys()):
        old_row, new_row = old.get(name), new.get(name)
        if old_row is None or new_row is None:
            # benchmarks present in only one snapshot (a PR added or retired
            # one) are informational, never a comparison failure
            if old_row is None:
                added.append(name)
                print(f"{name:<16} {'added (new benchmark)':>30}")
            else:
                removed.append(name)
                print(f"{name:<16} {'removed (not in new)':>30}")
            continue
        old_t, new_t = old_row.get(args.key), new_row.get(args.key)
        if old_t is None or new_t is None:
            print(f"{name:<16} {'key ' + args.key + ' missing':>30}")
            continue
        delta = (new_t - old_t) / old_t if old_t else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append(f"{name}: {old_t:.4f}s -> {new_t:.4f}s ({delta:+.1%})")
        print(f"{name:<16} {old_t:>9.4f}s {new_t:>9.4f}s {delta:>+7.1%}{marker}")

    if added:
        print(f"\nadded: {', '.join(added)}")
    if removed:
        print(f"removed: {', '.join(removed)}")
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} scenario(s) slower by more than "
            f"{args.threshold:.0%} on {args.key!r}:"
        )
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(f"\nOK: no scenario slower by more than {args.threshold:.0%} on {args.key!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
