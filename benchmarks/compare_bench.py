#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` snapshots and fail on performance regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.2]
                                       [--key worklist_s]

Scenarios are matched by name.  A scenario regresses when its timing key in
NEW exceeds OLD by more than ``threshold`` (default 20%).  Scenarios present
in only one file are reported but do not fail the comparison.  Exit status:
0 when no regression, 1 on regression, 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read benchmark file {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def scenarios_by_name(payload: dict) -> dict[str, dict]:
    return {row["scenario"]: row for row in payload.get("scenarios", [])}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed relative slowdown before failing (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--key",
        default="worklist_s",
        help="per-scenario timing key to compare (default: worklist_s)",
    )
    args = parser.parse_args(argv)

    old = scenarios_by_name(load(args.old))
    new = scenarios_by_name(load(args.new))

    regressions: list[str] = []
    added: list[str] = []
    removed: list[str] = []
    print(f"{'scenario':<16} {'old':>10} {'new':>10} {'delta':>8}")
    for name in sorted(old.keys() | new.keys()):
        old_row, new_row = old.get(name), new.get(name)
        if old_row is None or new_row is None:
            # benchmarks present in only one snapshot (a PR added or retired
            # one) are informational, never a comparison failure
            if old_row is None:
                added.append(name)
                print(f"{name:<16} {'added (new benchmark)':>30}")
            else:
                removed.append(name)
                print(f"{name:<16} {'removed (not in new)':>30}")
            continue
        old_t, new_t = old_row.get(args.key), new_row.get(args.key)
        if old_t is None or new_t is None:
            print(f"{name:<16} {'key ' + args.key + ' missing':>30}")
            continue
        delta = (new_t - old_t) / old_t if old_t else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append(f"{name}: {old_t:.4f}s -> {new_t:.4f}s ({delta:+.1%})")
        print(f"{name:<16} {old_t:>9.4f}s {new_t:>9.4f}s {delta:>+7.1%}{marker}")

    if added:
        print(f"\nadded: {', '.join(added)}")
    if removed:
        print(f"removed: {', '.join(removed)}")
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} scenario(s) slower by more than "
            f"{args.threshold:.0%} on {args.key!r}:"
        )
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(f"\nOK: no scenario slower by more than {args.threshold:.0%} on {args.key!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
