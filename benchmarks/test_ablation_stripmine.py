"""Experiment E7 — correctness and cost of the strip-mining transformation.

Checks that the transformed toy-language Barnes–Hut program computes exactly
the same heap as the original, and that the native strip-mined parallel
driver reproduces the sequential physics bit-for-bit for several processor
counts.  Benchmark targets measure the transformation itself and the
interpreted execution of the transformed program under the machine simulator.
"""

import copy

import pytest

from repro.lang.ast_nodes import Call, IntLit
from repro.lang.interpreter import Interpreter, run_program
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.nbody import (
    BHL1_FUNCTION,
    BHL2_FUNCTION,
    BarnesHutSimulation,
    SimulationConfig,
    StripMinedParallelSimulation,
    barnes_hut_toy_program,
    make_particles,
)
from repro.transform import strip_mine_loop


def _transformed_program(pes: int):
    program = barnes_hut_toy_program()
    result = strip_mine_loop(program, BHL1_FUNCTION)
    result = strip_mine_loop(result.program, BHL2_FUNCTION)
    transformed = result.program
    for func in transformed.functions:
        for node in func.body.walk():
            if isinstance(node, Call) and node.func in (BHL1_FUNCTION, BHL2_FUNCTION):
                node.args.append(IntLit(pes))
    return transformed


def _heap_physics(interp):
    return sorted(
        (round(c.fields.get("x", 0.0), 9), round(c.fields.get("force", 0.0), 9))
        for c in interp.heap
    )


@pytest.mark.parametrize("pes", [2, 4, 7])
def test_transformed_toy_program_is_semantics_preserving(pes):
    _, original = run_program(barnes_hut_toy_program())
    transformed = _transformed_program(pes)
    interp = Interpreter(transformed)
    MachineSimulator(SEQUENT_LIKE.with_pes(pes)).attach_to_interpreter(interp)
    interp.call_function("main")
    assert _heap_physics(interp) == _heap_physics(original)


@pytest.mark.parametrize("pes", [4, 7])
def test_native_parallel_driver_matches_sequential(pes, experiment_steps):
    config = SimulationConfig(n=96, steps=experiment_steps, theta=0.4,
                              distribution="uniform", seed=3)
    seq = BarnesHutSimulation(make_particles(96, "uniform", 3), config).run()
    par = StripMinedParallelSimulation(
        make_particles(96, "uniform", 3), config, SEQUENT_LIKE.with_pes(pes)
    ).run()
    assert par.final_states == seq.final_states
    assert 1.0 < par.speedup_against(seq.total_work) < pes


def test_benchmark_strip_mining_transformation(benchmark):
    program = barnes_hut_toy_program()

    def transform_both_loops():
        result = strip_mine_loop(program, BHL1_FUNCTION)
        return strip_mine_loop(result.program, BHL2_FUNCTION)

    result = benchmark(transform_both_loops)
    assert result.iteration_procedure.startswith("_")


def test_benchmark_interpreted_parallel_execution(benchmark):
    transformed = _transformed_program(4)

    def run_transformed():
        interp = Interpreter(copy.deepcopy(transformed))
        executor = MachineSimulator(SEQUENT_LIKE.with_pes(4)).attach_to_interpreter(interp)
        interp.call_function("main")
        return executor.trace

    trace = benchmark(run_transformed)
    assert trace.parallel_steps > 0
