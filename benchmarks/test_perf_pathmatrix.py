"""Performance benchmark: worklist engine vs. the seed round-robin engine.

Times fixpoint solving on generated stress programs (wide matrices with many
live pointer variables; deep CFGs with nested loops and branches) for both
fixpoint engines and asserts the worklist+interned engine achieves at least a
3x median speedup.  Results are written to ``BENCH_pathmatrix.json`` at the
repository root so future PRs have a performance trajectory; compare two
snapshots with ``python benchmarks/compare_bench.py OLD.json NEW.json``.

Set ``REPRO_FULL=1`` for the larger workloads.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.bench.stress import deep_program, wide_program
from repro.pathmatrix import PathMatrixAnalysis


def full_runs_requested() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_pathmatrix.json"

#: required median speedup of the worklist engine over the baseline
SPEEDUP_TARGET = 3.0


def _scenarios():
    if full_runs_requested():
        return [
            ("wide_50", wide_program(50), "stress"),
            ("wide_100", wide_program(100), "stress"),
            ("wide_200", wide_program(200), "stress"),
            ("deep_6x30", deep_program(6, 8, 30), "deep"),
            ("deep_8x40", deep_program(8, 6, 40), "deep"),
            ("deep_10x50", deep_program(10, 6, 50), "deep"),
        ]
    return [
        ("wide_50", wide_program(50), "stress"),
        ("wide_100", wide_program(100), "stress"),
        ("deep_6x30", deep_program(6, 8, 30), "deep"),
        ("deep_8x40", deep_program(8, 6, 40), "deep"),
    ]


def _time_solver(analysis: PathMatrixAnalysis, function: str, solver: str, repeats: int):
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = analysis.analyze_function(function, solver=solver)
        times.append(time.perf_counter() - start)
    assert result is not None
    return statistics.median(times), result


@pytest.fixture(scope="module")
def measurements():
    repeats = 5 if full_runs_requested() else 3
    rows = []
    for name, program, function in _scenarios():
        analysis = PathMatrixAnalysis(program)
        rr_time, rr_result = _time_solver(analysis, function, "roundrobin", repeats)
        wl_time, wl_result = _time_solver(analysis, function, "worklist", repeats)
        # both engines must agree everywhere before a timing is trusted
        for idx, matrix in rr_result.exit_matrices.items():
            assert wl_result.exit_matrices[idx].equivalent(matrix), (
                f"{name}: solvers disagree at block {idx}"
            )
        rows.append(
            {
                "scenario": name,
                "function": function,
                "cfg_blocks": len(rr_result.cfg.blocks),
                "cfg_statements": rr_result.cfg.statement_count(),
                "pointer_vars": len(rr_result.ctx.pointer_vars),
                "roundrobin_s": rr_time,
                "worklist_s": wl_time,
                "speedup": rr_time / wl_time if wl_time > 0 else float("inf"),
                "roundrobin_blocks_transferred": rr_result.blocks_transferred,
                "worklist_blocks_transferred": wl_result.blocks_transferred,
                "roundrobin_iterations": rr_result.iterations,
                "worklist_iterations": wl_result.iterations,
            }
        )
    return rows


def test_worklist_engine_speedup(measurements):
    speedups = [row["speedup"] for row in measurements]
    median_speedup = statistics.median(speedups)
    detail = ", ".join(f"{r['scenario']}={r['speedup']:.2f}x" for r in measurements)
    assert median_speedup >= SPEEDUP_TARGET, (
        f"median speedup {median_speedup:.2f}x below target {SPEEDUP_TARGET}x ({detail})"
    )


def test_worklist_never_does_more_transfers(measurements):
    for row in measurements:
        assert (
            row["worklist_blocks_transferred"] <= row["roundrobin_blocks_transferred"]
        ), row["scenario"]


def test_emit_bench_json(measurements):
    payload = {
        "schema": 1,
        "suite": "pathmatrix_fixpoint",
        "mode": "full" if full_runs_requested() else "quick",
        "speedup_target": SPEEDUP_TARGET,
        "median_speedup": statistics.median(r["speedup"] for r in measurements),
        "scenarios": measurements,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(BENCH_PATH.read_text())
    assert written["scenarios"], "benchmark file must record at least one scenario"
