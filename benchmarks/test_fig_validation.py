"""Experiment E6 — the section 3.3.1 abstraction-validation example.

The subtree move ``p1->left = p2->left; p2->left = NULL;`` breaks the BinTree
abstraction between the two statements and repairs it afterwards.  The static
trace is regenerated from the analysis; the dynamic counterpart is exercised
on a concrete heap via the runtime checker.  The benchmark target measures
the static validation pass.
"""

from repro.adds import check_heap_against_declaration, declaration
from repro.bench.figures import validation_trace_figure
from repro.structures import BinarySearchTree


def test_static_validation_trace():
    trace = validation_trace_figure()
    print()
    print(trace.render())
    assert trace.valid_after == [False, True]
    assert any("sharing" in v for v in trace.violations_after[0])
    assert trace.violations_after[1] == []


def test_dynamic_validation_matches_static_story():
    tree = BinarySearchTree.from_iterable([8, 3, 10, 1, 6, 14])
    node3 = [r for r in tree.refs() if tree.heap.load(r, "data") == 3][0]
    node10 = [r for r in tree.refs() if tree.heap.load(r, "data") == 10][0]
    bintree = declaration("BinTree")

    assert check_heap_against_declaration(tree.heap, bintree) == []
    tree.share_left_subtree(node10, node3)          # first statement: broken
    assert any(
        v.kind == "uniqueness"
        for v in check_heap_against_declaration(tree.heap, bintree)
    )
    tree.repair_shared_subtree(node3)               # second statement: repaired
    assert check_heap_against_declaration(tree.heap, bintree) == []


def test_benchmark_validation_analysis(benchmark):
    result = benchmark(validation_trace_figure)
    assert result.valid_after[-1] is True
