"""Experiment E5 — Figures 1/2 behaviourally: analysis precision comparison.

The paper's Figure 1 shows that structures with very different properties can
be built from the same node type, and section 2.1 argues that prior analyses
(conservative, k-limited storage graphs) cannot recover those properties.
This benchmark compares the three oracles on the list-traversal question and
validates the runtime-checker side of the figure: a genuine one-way list
satisfies the OneWayList declaration while the "tournament" sharing structure
does not.
"""

from repro.adds import check_heap_against_declaration, declaration
from repro.bench.figures import precision_comparison
from repro.structures import OneWayList, build_tournament_list


def test_precision_comparison_table():
    comparison = precision_comparison()
    print()
    print(comparison.render())
    adds_row = comparison.row("ADDS + GPM")
    assert adds_row.proves_traversal_independent
    assert not comparison.row("conservative").proves_traversal_independent
    assert not comparison.row("k-limited (k=2)").proves_traversal_independent
    assert adds_row.precision_score >= max(
        comparison.row("conservative").precision_score,
        comparison.row("k-limited (k=2)").precision_score,
    )


def test_figure1_structures_are_distinguished_dynamically():
    lst = OneWayList.from_iterable(range(32))
    assert check_heap_against_declaration(lst.heap, declaration("OneWayList")) == []
    heap, _ = build_tournament_list(list(range(16)))
    assert check_heap_against_declaration(heap, declaration("OneWayList")) != []
    assert check_heap_against_declaration(heap, declaration("TournamentList")) == []


def test_benchmark_precision_comparison(benchmark):
    result = benchmark(precision_comparison)
    assert len(result.rows) == 3
