"""Experiment E2 — the SPEEDUP table of section 4.4.

Paper values: par(4) = 2.5 / 2.7 / 2.8 and par(7) = 3.3 / 4.1 / 4.3 for
N = 128 / 512 / 1024.  The benchmark regenerates the table on the simulated
machine and asserts the paper's qualitative claims (and, for the N values the
paper reports, quantitative agreement within a band).
"""

import pytest

from repro.bench import PAPER_SPEEDUPS, compare_with_paper, format_speedup_table, run_speedup_experiment
from repro.bench.tables import qualitative_checks


def test_speedup_table_matches_paper(speedup_table):
    table = speedup_table
    print()
    print(format_speedup_table(table))
    print(compare_with_paper(table))

    # every qualitative claim of the paper's table must hold
    failed = [claim for claim, ok in qualitative_checks(table) if not ok]
    assert not failed, f"shape checks failed: {failed}"

    # quantitative band for the N values the paper actually reports
    for pes in (4, 7):
        for n in table.ns:
            expected = PAPER_SPEEDUPS.get(pes, {}).get(n)
            if expected is None:
                continue
            tolerance = 0.5 if pes == 4 else 0.7
            assert abs(table.speedup(n, pes) - expected) <= tolerance


def test_speedup_improves_with_problem_size(speedup_table):
    """The paper's trend: larger N gives (weakly) better speedup."""
    table = speedup_table
    for pes in (4, 7):
        speedups = [table.speedup(n, pes) for n in table.ns]
        assert all(b >= a - 0.05 for a, b in zip(speedups, speedups[1:]))


def test_benchmark_full_speedup_experiment(benchmark, experiment_steps):
    """pytest-benchmark target: the whole (reduced) speedup sweep."""
    result = benchmark.pedantic(
        run_speedup_experiment,
        kwargs=dict(ns=(96,), pe_counts=(4, 7), steps=1),
        iterations=1,
        rounds=3,
    )
    assert result.speedup(96, 7) > result.speedup(96, 4) > 1.0
