"""Experiment E4 — the section 4.3.2 path matrix for BHL1 of the tree code.

Regenerates the BHL1 analysis on the toy-language Barnes–Hut program carrying
the Octree ADDS declaration, checks the paper's claims (iterations touch
distinct nodes; root may alias but is used read-only; the declaration is
valid at the loop), and confirms that with ADDS both BHL1 and BHL2 are
parallelizable while without ADDS neither is.  The benchmark target measures
the whole-program analysis cost.
"""

from repro.bench.figures import bhl1_pathmatrix_figure
from repro.nbody import BHL1_FUNCTION, BHL2_FUNCTION, barnes_hut_toy_program
from repro.pathmatrix import PathMatrixAnalysis
from repro.transform import classify_loop


def test_bhl1_figure_claims():
    figure = bhl1_pathmatrix_figure()
    print()
    print(figure.render())
    assert all(figure.claims.values()), figure.claims


def test_adds_is_what_makes_the_loops_parallel():
    program = barnes_hut_toy_program()
    for fn in (BHL1_FUNCTION, BHL2_FUNCTION):
        assert classify_loop(program, fn, use_adds=True).parallelizable
        assert not classify_loop(program, fn, use_adds=False).parallelizable


def test_benchmark_whole_program_analysis(benchmark):
    program = barnes_hut_toy_program()

    def analyze_everything():
        analysis = PathMatrixAnalysis(program)
        return analysis.analyze_all()

    results = benchmark(analyze_everything)
    assert set(results) == {f.name for f in program.functions}
