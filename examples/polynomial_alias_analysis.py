#!/usr/bin/env python3
"""The section 3.3.2 worked example, plus the baselines it is compared against.

Shows, for the polynomial coefficient-scaling loop:

* the conservative path matrix a compiler must assume without structure
  information,
* the matrices general path matrix analysis computes once the ListNode type
  carries its ADDS declaration,
* what the k-limited storage-graph baseline concludes (it cannot prove the
  traversal visits distinct nodes — the limitation discussed in section 2.1),
* the polynomial data structure itself doing real work (bignums too), with
  the runtime shape checker confirming the heap matches the declaration.

Run:  python examples/polynomial_alias_analysis.py
"""

from repro.adds import check_heap_against_declaration, declaration
from repro.bench.figures import (
    POLYNOMIAL_SCALE_SRC,
    polynomial_pathmatrix_figure,
    precision_comparison,
    validation_trace_figure,
)
from repro.structures import BigNum, Polynomial


def main() -> None:
    figure = polynomial_pathmatrix_figure()
    print(figure.render())
    print()

    print("== precision of the three analyses on the same loop ==")
    print(precision_comparison().render())
    print()

    print("== abstraction validation on the subtree-move example (section 3.3.1) ==")
    print(validation_trace_figure().render())
    print()

    print("== the data structures doing real work ==")
    poly = Polynomial.from_terms([(451, 31), (10, 13), (4, 0)])
    print(f"polynomial terms: {poly.terms()}")
    print(f"p(2) = {poly.evaluate(2)}")
    poly.scale_in_place(3)
    print(f"after scale_in_place(3): {poly.terms()}")
    violations = check_heap_against_declaration(poly.heap, declaration("ListNode"))
    print(f"runtime shape check against the ListNode declaration: "
          f"{'valid' if not violations else violations}")

    a = BigNum.from_int(3_298_991)          # the paper's bignum example
    b = BigNum.from_int(123_456_789)
    print(f"bignum chunks of 3,298,991 (three digits per node): {a.chunks()}")
    print(f"3,298,991 * 123,456,789 = {a.multiply(b).to_int()}")
    print(f"Python agrees: {a.multiply(b).to_int() == 3_298_991 * 123_456_789}")


if __name__ == "__main__":
    main()
