#!/usr/bin/env python3
"""Regenerate the paper's section 4.4 tables (experiments E1 and E2).

Runs the Barnes–Hut N-body simulation sequentially and strip-mined over the
simulated Sequent-like machine for N in {128, 512, 1024} and 4/7 processors,
prints the TIMES and SPEEDUP tables next to the paper's numbers, and checks
the qualitative shape claims.

Run:  python examples/nbody_speedup_table.py [--steps STEPS] [--full]

``--full`` uses the paper's 80 time steps (slow: several minutes of pure
Python); the default 2 steps gives the same speedups to within a few percent
because per-step work is nearly constant.
"""

import argparse

from repro.bench import (
    PAPER_TIMES,
    compare_with_paper,
    format_speedup_table,
    format_times_table,
    run_speedup_experiment,
)
from repro.bench.figures import bhl1_pathmatrix_figure
from repro.nbody import BHL1_FUNCTION, BHL2_FUNCTION, barnes_hut_toy_program
from repro.transform import classify_loop


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2, help="time steps per run")
    parser.add_argument("--full", action="store_true", help="use the paper's 80 steps")
    parser.add_argument(
        "--ns", type=int, nargs="+", default=[128, 512, 1024], help="problem sizes"
    )
    args = parser.parse_args()
    steps = 80 if args.full else args.steps

    # First, the compiler-side story: the analysis that makes the
    # transformation legal at all.
    program = barnes_hut_toy_program()
    print("== dependence analysis of the Barnes-Hut loops (toy-language program) ==")
    for name, label in ((BHL1_FUNCTION, "BHL1"), (BHL2_FUNCTION, "BHL2")):
        with_adds = classify_loop(program, name, use_adds=True)
        without = classify_loop(program, name, use_adds=False)
        print(f"{label}: with ADDS -> {with_adds.classification}; "
              f"without ADDS -> {without.classification}")
    print()
    figure = bhl1_pathmatrix_figure()
    print(figure.render())
    print()

    # Then the measured tables.
    print(f"== running the speedup experiment (steps={steps}) ==")
    table = run_speedup_experiment(ns=tuple(args.ns), steps=steps)
    print()
    print(format_times_table(table))
    print()
    print("(paper, seconds)")
    for pes in (1, 4, 7):
        label = "seq" if pes == 1 else f"par({pes})"
        row = "  ".join(f"{PAPER_TIMES[pes].get(n, float('nan')):7.0f}" for n in args.ns)
        print(f"{label:>8}  {row}")
    print()
    print(format_speedup_table(table))
    print()
    print(compare_with_paper(table))


if __name__ == "__main__":
    main()
