#!/usr/bin/env python3
"""Sparse matrices as orthogonal lists (section 3.1.3, Figure 3).

Builds an orthogonal-list sparse matrix, validates its heap against the
OrthList ADDS declaration (two dependent dimensions X and Y, each acyclic
with unique forward edges), runs a sparse matrix–vector product using the
row traversals, checks it against NumPy, and shows that the per-row scaling
loops are exactly the kind of disjoint traversals the paper's analysis can
parallelize.

Run:  python examples/sparse_matrix_orthlist.py
"""

import random

import numpy as np

from repro.adds import check_heap_against_declaration, declaration, derive_properties
from repro.adds.library import merged_into
from repro.structures import OrthogonalListMatrix
from repro.transform import classify_loop


ROW_SCALE_SRC = """
function scale_row(rowhead, factor)
{ var p;
  p = rowhead;
  while p <> NULL
  { p->data = p->data * factor;
    p = p->across;
  }
  return rowhead;
}
"""


def main() -> None:
    adds = declaration("OrthList")
    print("== the OrthList ADDS declaration ==")
    print(adds.describe())
    print(derive_properties(adds).summary())
    print()

    rng = random.Random(7)
    rows, cols, density = 12, 16, 0.2
    dense = [
        [rng.randint(1, 9) if rng.random() < density else 0 for _ in range(cols)]
        for _ in range(rows)
    ]
    matrix = OrthogonalListMatrix.from_dense(dense)
    print(f"built a {rows}x{cols} orthogonal-list matrix with "
          f"{matrix.nonzero_count()} stored elements "
          f"({matrix.heap.allocation_count} heap nodes including headers)")

    violations = check_heap_against_declaration(matrix.heap, adds)
    print(f"runtime shape check: {'valid' if not violations else violations}")

    vector = [rng.randint(-3, 3) for _ in range(cols)]
    ours = matrix.matvec(vector)
    reference = (np.array(dense) @ np.array(vector)).tolist()
    print(f"sparse mat-vec matches NumPy: {ours == reference}")
    print(f"column sums via the Y dimension: {matrix.column_sums()}")
    print()

    # the compiler-side story: a row-scaling traversal over `across`
    program = merged_into(ROW_SCALE_SRC, "OrthList")
    with_adds = classify_loop(program, "scale_row", use_adds=True)
    without = classify_loop(program, "scale_row", use_adds=False)
    print("row-scaling loop over the `across` links:")
    print(f"  with the OrthList declaration: {with_adds.classification}")
    print(f"  without structure information: {without.classification}")
    print("  (each row is disjoint, so different rows could additionally be "
          "processed by different processors — the property Figure 3 illustrates)")


if __name__ == "__main__":
    main()
