#!/usr/bin/env python3
"""2-D range trees (section 3.1.3, Figure 4) answering rectangle queries.

Builds the "binary tree of binary trees" with leaf lists, validates it
against the TwoDRangeTree ADDS declaration — including the declared
*independence* of the ``sub`` dimension from ``down`` and ``leaves`` — and
answers interval and rectangle queries, cross-checked against brute force.

Run:  python examples/range_tree_queries.py
"""

import random

from repro.adds import check_heap_against_declaration, declaration
from repro.structures import RangeTree2D


def main() -> None:
    adds = declaration("TwoDRangeTree")
    print("== the TwoDRangeTree ADDS declaration ==")
    print(adds.describe())
    print()

    rng = random.Random(11)
    points = sorted({(rng.randint(0, 60), rng.randint(0, 60)) for _ in range(40)})
    tree = RangeTree2D(points)
    print(f"built a 2-D range tree over {tree.size()} points "
          f"({tree.node_count()} heap nodes across primary + secondary trees)")

    violations = check_heap_against_declaration(tree.heap, adds)
    print(f"runtime shape check (acyclicity, uniqueness, sub||down, sub||leaves): "
          f"{'valid' if not violations else violations}")
    print()

    queries = [(5, 25, 10, 40), (0, 60, 0, 60), (30, 50, 0, 20)]
    for x1, x2, y1, y2 in queries:
        got = tree.query_rect(x1, x2, y1, y2)
        expected = sorted(
            p for p in points if x1 <= p[0] <= x2 and y1 <= p[1] <= y2
        )
        status = "ok" if got == expected else "MISMATCH"
        print(f"points in [{x1},{x2}] x [{y1},{y2}]: {len(got):3d}  [{status}]")

    x_only = tree.query_x(10, 30)
    print(f"points with x in [10,30]: {len(x_only)} "
          f"(leaf-list order preserved: {tree.primary_leaf_points() == sorted(points)})")


if __name__ == "__main__":
    main()
