#!/usr/bin/env python3
"""Quickstart: declare a structure with ADDS, analyze a loop, parallelize it.

This walks the paper's core pipeline end to end on the polynomial example of
section 3.3.2:

1. write a toy-language program whose list type carries an ADDS declaration,
2. run general path matrix analysis on its traversal loop,
3. compare against what a conventional compiler must assume,
4. strip-mine the loop (section 4.3.3) and check the transformed program
   computes the same heap,
5. replay the transformed program on the simulated multiprocessor.

Run:  python examples/quickstart.py
"""

from repro.adds import declaration, derive_properties
from repro.adds.library import merged_into
from repro.lang import Interpreter, run_program, unparse
from repro.lang.ast_nodes import Call, IntLit
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.pathmatrix import analyze_loop_dependence
from repro.transform import classify_loop, strip_mine_loop


PROGRAM = """
function build(n)
{ var head; var p; var i;
  head = NULL;
  i = 0;
  while i < n
  { p = new ListNode;
    p->coef = i + 1;
    p->exp = i;
    p->next = head;
    head = p;
    i = i + 1;
  }
  return head;
}

function scale(head, c)
{ var p;
  p = head;
  while p <> NULL
  { p->coef = p->coef * c;
    p = p->next;
  }
  return head;
}

function main()
{ var h;
  h = build(64);
  h = scale(h, 3);
  return h;
}
"""


def main() -> None:
    # 1. the program: the ListNode type of the paper, with its ADDS declaration
    program = merged_into(PROGRAM, "ListNode")
    adds = declaration("ListNode")
    print("== the ADDS declaration ==")
    print(adds.describe())
    print()
    print("derived facts the compiler may rely on:")
    print(derive_properties(adds).summary())
    print()

    # 2. analyze the traversal loop of `scale`
    report = analyze_loop_dependence(program, "scale")
    print("== general path matrix analysis of the scale() loop ==")
    print(report.describe())
    print()
    print("path matrix after one loop body (p' is the previous iteration's p):")
    print(report.matrix_after_body.to_table(["head", "p", "p'"]))
    print()

    # 3. what a conventional compiler concludes (no ADDS information)
    conventional = classify_loop(program, "scale", use_adds=False)
    with_adds = classify_loop(program, "scale", use_adds=True)
    print(f"without ADDS the loop is: {conventional.classification}")
    print(f"with ADDS the loop is:    {with_adds.classification}")
    print()

    # 4. strip-mine the loop and check semantics are preserved
    result = strip_mine_loop(program, "scale", pes_param="PEs")
    print("== transformed program (section 4.3.3) ==")
    print(unparse(result.program.function_named("scale")))
    print(unparse(result.program.function_named(result.iteration_procedure)))

    _, original = run_program(program)
    transformed = result.program
    for stmt in transformed.function_named("main").body.statements:
        for node in stmt.walk():
            if isinstance(node, Call) and node.func == "scale":
                node.args.append(IntLit(4))  # run with 4 processors

    interpreter = Interpreter(transformed)
    simulator = MachineSimulator(SEQUENT_LIKE.with_pes(4))
    executor = simulator.attach_to_interpreter(interpreter)
    interpreter.call_function("main")

    original_coefs = sorted(c.fields["coef"] for c in original.heap)
    transformed_coefs = sorted(c.fields["coef"] for c in interpreter.heap)
    print(f"same results as the sequential program: {original_coefs == transformed_coefs}")

    # 5. simulated parallel timing of the transformed loops
    trace = executor.trace
    speedup = executor.sequential_cost / trace.elapsed if trace.elapsed else 1.0
    print(
        f"simulated 4-PE execution: {trace.parallel_steps} parallel steps, "
        f"{trace.elapsed:.0f} work units vs {executor.sequential_cost:.0f} sequential "
        f"(speedup of the parallelized loops: {speedup:.2f})"
    )


if __name__ == "__main__":
    main()
