"""Observation capture, diffing, and the interpreter resource budgets."""

import pytest

from repro.fuzz.observation import (
    ERROR,
    EXHAUSTED,
    OK,
    Observation,
    diff_observations,
    observe,
)
from repro.lang.errors import InterpreterLimitError
from repro.lang.interpreter import run_program
from repro.lang.parser import parse_program

COUNTDOWN = """
function main()
{ var i; var s;
  i = 10;
  s = 0;
  while i > 0
  { s = s + i;
    print(s);
    i = i - 1;
  }
  return s;
}
"""

RECURSIVE = """
function spin(n)
{ return spin(n + 1); }

function main()
{ return spin(0); }
"""

ALLOCATES = """
type Node [X]
{ int v;
  Node *next is uniquely forward along X;
};

function main()
{ var a; var b;
  a = new Node;
  a->v = 1;
  b = new Node;
  b->v = 2;
  a->next = b;
  return a->v + b->v;
}
"""


class TestObserve:
    def test_ok_run_captures_everything(self):
        obs = observe(parse_program(COUNTDOWN))
        assert obs.status == OK
        assert obs.result == 55
        assert obs.output[0] == "10" and obs.output[-1] == "55"
        assert obs.steps > 0

    def test_heap_snapshot_includes_pointer_fields(self):
        obs = observe(parse_program(ALLOCATES))
        assert obs.status == OK and obs.result == 3
        assert len(obs.heap) == 2
        (_, type_name, fields) = obs.heap[0]
        assert type_name == "Node"
        assert dict(fields)["v"] == 1
        assert "next" in dict(fields)

    def test_step_budget_reports_exhausted_not_error(self):
        obs = observe(parse_program(COUNTDOWN), max_steps=20)
        assert obs.status == EXHAUSTED
        assert "step budget" in obs.error

    def test_depth_budget_reports_exhausted_not_error(self):
        obs = observe(parse_program(RECURSIVE), max_call_depth=16)
        assert obs.status == EXHAUSTED
        assert "depth" in obs.error

    def test_limit_error_is_typed_with_kind(self):
        with pytest.raises(InterpreterLimitError) as exc:
            run_program(parse_program(COUNTDOWN), max_steps=5)
        assert exc.value.kind == "steps"
        with pytest.raises(InterpreterLimitError) as exc:
            run_program(parse_program(RECURSIVE), max_call_depth=8)
        assert exc.value.kind == "depth"


class TestDiff:
    def _ok(self, **kwargs):
        defaults = dict(status=OK, result=1, output=("a",), heap=())
        defaults.update(kwargs)
        return Observation(**defaults)

    def test_identical_observations_agree(self):
        assert diff_observations(self._ok(), self._ok()) == []

    def test_exhausted_never_diverges(self):
        cut_off = Observation(status=EXHAUSTED, error="step budget of 5 exhausted")
        assert diff_observations(self._ok(), cut_off) == []

    def test_status_difference_reports_the_error(self):
        crashed = Observation(status=ERROR, error="NULL dereference (line 3)")
        (diff,) = diff_observations(self._ok(), crashed)
        assert "status" in diff and "NULL dereference" in diff

    def test_result_difference(self):
        diffs = diff_observations(self._ok(), self._ok(result=2))
        assert any("result" in d for d in diffs)

    def test_first_differing_output_line_is_named(self):
        diffs = diff_observations(
            self._ok(output=("a", "b", "c")), self._ok(output=("a", "X", "c"))
        )
        assert diffs == ["output[1]: reference 'b' vs 'X'"]

    def test_output_length_difference(self):
        diffs = diff_observations(
            self._ok(output=("a",)), self._ok(output=("a", "b"))
        )
        assert diffs == ["output length: reference 1 vs 2"]

    def test_heap_field_difference_names_cell_and_field(self):
        ref = self._ok(heap=((1, "Node", (("v", 1),)),))
        other = self._ok(heap=((1, "Node", (("v", 2),)),))
        (diff,) = diff_observations(ref, other)
        assert diff == "heap cell #1 (Node).v: reference 1 vs 2"
