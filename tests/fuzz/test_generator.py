"""Generator determinism and well-formedness.

Determinism is a hard requirement: a seed in a regression record must mean
the same program forever, on any machine, under any ``PYTHONHASHSEED``.
"""

import subprocess
import sys
from pathlib import Path

from repro.fuzz.generator import GENERATOR_VERSION, _SCENARIOS, generate_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in SEEDS:
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.source == b.source
            assert a.scenario == b.scenario

    def test_byte_identical_across_hashseed_processes(self):
        """Fresh interpreters with different PYTHONHASHSEEDs must agree.

        This catches any accidental dependence on set/dict iteration order
        of hash-randomized keys inside the generator.
        """
        script = (
            "import hashlib\n"
            "from repro.fuzz.generator import generate_program\n"
            "h = hashlib.sha256()\n"
            "for seed in range(40):\n"
            "    h.update(generate_program(seed).source.encode())\n"
            "print(h.hexdigest())\n"
        )
        digests = set()
        for hashseed in ("0", "1", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": hashseed},
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1, f"generator output depends on hash seed: {digests}"


class TestWellFormedness:
    def test_every_program_parses_and_typechecks(self):
        for seed in SEEDS:
            generated = generate_program(seed)
            program = parse_program(generated.source)
            check_program(program)

    def test_all_scenarios_reachable(self):
        seen = {generate_program(seed).scenario for seed in range(200)}
        assert seen == {name for name, _weight in _SCENARIOS}

    def test_version_is_stamped(self):
        assert GENERATOR_VERSION >= 1
