"""The differential harness end-to-end, and the structural shrinker."""

from repro.fuzz.harness import (
    DIVERGENCE,
    INVALID,
    PASS,
    run_campaign,
    run_seed,
    run_source,
    save_regression,
    load_regression,
    replay_regression,
)
from repro.fuzz.shrink import shrink_source
from repro.lang.parser import parse_program


class TestRunSource:
    def test_front_end_rejection_is_invalid_not_crash(self):
        case = run_source("function main( { return 0 }")
        assert case.status == INVALID
        assert "front end rejected" in case.note

    def test_reference_error_skips_the_seed(self):
        case = run_source("function main() { return missing(); }")
        assert case.status == "skipped"
        assert case.diverged is False

    def test_clean_program_passes_all_executors(self):
        case = run_seed(0)
        assert case.status == PASS, case.summary()
        assert case.executors["reference"] == "ok"


class TestCampaign:
    def test_small_campaign_is_all_green(self):
        report = run_campaign(range(8))
        assert report.count(PASS) + report.count("skipped") == 8
        assert not report.failures
        assert "8 program(s)" in report.describe()

    def test_report_dict_shape(self):
        data = run_campaign(range(3)).to_dict()
        assert data["seeds"] == 3
        assert data["divergences"] == 0
        assert "generator_version" in data


class TestShrink:
    SOURCE = """
function helper(x)
{ return x + 1; }

function main()
{ var a; var b;
  a = 1;
  b = 2;
  if a > 0 then
  { a = a + b; }
  return a;
}
"""

    def test_shrinks_to_predicate_fixed_point(self):
        # predicate: "still defines main" — everything else should go
        def has_main(candidate: str) -> bool:
            try:
                program = parse_program(candidate)
            except Exception:
                return False
            return program.function_named("main") is not None

        reduced = shrink_source(self.SOURCE, predicate=has_main)
        assert "helper" not in reduced
        assert len(reduced) < len(self.SOURCE)
        assert parse_program(reduced).function_named("main") is not None

    def test_unshrinkable_source_is_returned_unchanged(self):
        source = "function main()\n{ return 7; }\n"

        def exact(candidate: str) -> bool:
            return "return 7" in candidate

        reduced = shrink_source(source, predicate=exact)
        assert "return 7" in reduced

    def test_invalid_source_passes_through(self):
        assert shrink_source("not a program", predicate=lambda s: True) == "not a program"


class TestRegressionStore:
    def test_save_load_replay_round_trip(self, tmp_path):
        case = run_seed(0)
        case.status = DIVERGENCE  # pretend, to exercise the store
        path = save_regression(case, tmp_path, name="example", description="round trip")
        assert path.name == "example.json"
        record = load_regression(path)
        assert record["seed"] == 0
        assert record["description"] == "round trip"
        replayed = replay_regression(path)
        assert replayed.status == PASS
