"""Every stored fuzz regression must replay clean.

The records under ``tests/fuzz_regressions/`` are real divergences the
differential fuzzer (or a fuzzer-reproducible handcrafted program) exposed
before the corresponding semantics fix landed.  Replaying them from source
re-runs every executor; a reappearing divergence here is a reintroduced bug.
"""

from pathlib import Path

import pytest

from repro.fuzz.harness import PASS, load_regression, replay_regression

REGRESSION_DIR = Path(__file__).resolve().parents[1] / "fuzz_regressions"
RECORDS = sorted(REGRESSION_DIR.glob("*.json"))


def test_regression_corpus_is_present():
    assert len(RECORDS) >= 3


@pytest.mark.parametrize("path", RECORDS, ids=lambda p: p.stem)
class TestStoredRegressions:
    def test_record_is_well_formed(self, path):
        record = load_regression(path)
        assert record["source"], "record must carry replayable source"
        assert record["description"], "record must say what bug it pins"
        assert record["divergences"], "record must show the original divergence"
        for divergence in record["divergences"]:
            assert divergence["executor"]
            assert divergence["details"]

    def test_replays_clean_after_the_fix(self, path):
        case = replay_regression(path)
        assert case.status == PASS, case.summary()
        assert not case.divergences

    def test_full_source_also_replays_clean(self, path):
        # shrunk counterexamples replay by default; the original unshrunk
        # program must stay green too
        record = load_regression(path)
        from repro.fuzz.harness import run_source

        case = run_source(record["source"])
        assert case.status == PASS, case.summary()
