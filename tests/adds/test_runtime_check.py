"""Tests for the runtime shape checker (dynamic abstraction validation)."""

import pytest

from repro.adds import check_heap_against_declaration, declaration
from repro.adds.runtime_check import RuntimeShapeChecker
from repro.lang.heap import Heap, NULL_REF
from repro.lang.interpreter import run_program
from repro.structures import (
    BinarySearchTree,
    OneWayList,
    OrthogonalListMatrix,
    PointRegionQuadTree,
    RangeTree2D,
    TwoWayList,
    build_tournament_list,
)


class TestOneWayList:
    def test_valid_list_passes(self):
        lst = OneWayList.from_iterable(range(10))
        assert check_heap_against_declaration(lst.heap, declaration("OneWayList")) == []

    def test_cycle_is_detected(self):
        lst = OneWayList.from_iterable(range(5))
        lst.make_cycle()
        violations = check_heap_against_declaration(lst.heap, declaration("OneWayList"))
        assert any(v.kind == "cycle" for v in violations)

    def test_tournament_sharing_violates_uniqueness(self):
        heap, _ = build_tournament_list([3, 1, 4, 1, 5, 9, 2, 6])
        violations = check_heap_against_declaration(heap, declaration("OneWayList"))
        assert any(v.kind == "uniqueness" for v in violations)
        # ...but the same heap satisfies the weaker TournamentList declaration
        assert check_heap_against_declaration(heap, declaration("TournamentList")) == []

    def test_reversed_list_still_valid(self):
        lst = OneWayList.from_iterable(range(6))
        lst.reverse_in_place()
        assert lst.to_list() == list(reversed(range(6)))
        assert check_heap_against_declaration(lst.heap, declaration("OneWayList")) == []


class TestTwoWayList:
    def test_valid_two_way_list_passes(self):
        lst = TwoWayList.from_iterable(range(8))
        assert check_heap_against_declaration(lst.heap, declaration("TwoWayList")) == []

    def test_inconsistent_prev_is_a_direction_violation(self):
        lst = TwoWayList.from_iterable(range(5))
        lst.corrupt_prev()
        violations = check_heap_against_declaration(lst.heap, declaration("TwoWayList"))
        assert any(v.kind == "direction" for v in violations)

    def test_removal_keeps_structure_valid(self):
        lst = TwoWayList.from_iterable(range(5))
        refs = list(lst.forward_refs())
        lst.remove(refs[2])
        assert lst.forward() == [0, 1, 3, 4]
        assert lst.backward() == [4, 3, 1, 0]
        assert check_heap_against_declaration(lst.heap, declaration("TwoWayList")) == []


class TestBinTree:
    def test_bst_passes(self):
        tree = BinarySearchTree.from_iterable([8, 3, 10, 1, 6, 14, 4, 7, 13])
        assert check_heap_against_declaration(tree.heap, declaration("BinTree")) == []

    def test_shared_subtree_violates_uniqueness(self):
        tree = BinarySearchTree.from_iterable([8, 3, 10, 1, 6])
        # root's left child (3) has a left subtree (1); share it under node 10
        node3 = [r for r in tree.refs() if tree.heap.load(r, "data") == 3][0]
        node10 = [r for r in tree.refs() if tree.heap.load(r, "data") == 10][0]
        tree.share_left_subtree(node10, node3)
        violations = check_heap_against_declaration(tree.heap, declaration("BinTree"))
        assert any(v.kind == "uniqueness" for v in violations)
        # the repair of section 3.3.1 restores validity
        tree.repair_shared_subtree(node3)
        assert check_heap_against_declaration(tree.heap, declaration("BinTree")) == []

    def test_cycle_through_left_is_detected(self):
        tree = BinarySearchTree.from_iterable([5, 2, 8])
        node2 = [r for r in tree.refs() if tree.heap.load(r, "data") == 2][0]
        tree.heap.store(node2, "left", tree.root)
        violations = check_heap_against_declaration(tree.heap, declaration("BinTree"))
        assert any(v.kind == "cycle" for v in violations)


class TestComplexStructures:
    def test_orthogonal_list_passes(self):
        matrix = OrthogonalListMatrix.from_dense([[1, 0, 2], [0, 0, 3], [4, 5, 0]])
        assert check_heap_against_declaration(matrix.heap, declaration("OrthList")) == []

    def test_range_tree_passes_including_independence(self):
        tree = RangeTree2D([(1, 5), (2, 3), (4, 8), (6, 1), (7, 7), (9, 2)])
        assert check_heap_against_declaration(tree.heap, declaration("TwoDRangeTree")) == []

    def test_range_tree_independence_violation_detected(self):
        tree = RangeTree2D([(1, 5), (2, 3), (4, 8)])
        # wire a primary node's `left` into its own secondary tree: now a node
        # is reachable both along `down` and along `sub`, breaking sub||down
        secondary_root = tree.heap.load(tree.root, "subtree")
        assert secondary_root != NULL_REF
        victim = tree.heap.load(secondary_root, "left")
        if victim == NULL_REF:
            victim = secondary_root
        tree.heap.store(tree.root, "left", victim)
        violations = check_heap_against_declaration(tree.heap, declaration("TwoDRangeTree"))
        assert any(v.kind in ("independence", "uniqueness") for v in violations)

    def test_quadtree_passes(self):
        qt = PointRegionQuadTree.from_points(
            [(0.1, 0.2), (-0.5, 0.3), (0.7, -0.8), (0.15, 0.25), (-0.9, -0.9)]
        )
        assert check_heap_against_declaration(qt.heap, declaration("QuadTree")) == []

    def test_interpreted_octree_build_passes(self, bh_program):
        """The heap built by the toy-language Barnes-Hut program satisfies Octree."""
        result, interp = run_program(bh_program)
        assert result != NULL_REF
        violations = check_heap_against_declaration(interp.heap, declaration("Octree"))
        assert violations == []


class TestCheckerInternals:
    def test_individual_check_methods(self):
        lst = OneWayList.from_iterable(range(4))
        checker = RuntimeShapeChecker(lst.heap, declaration("OneWayList"))
        assert checker.check_acyclicity() == []
        assert checker.check_uniqueness() == []
        assert checker.check_directions() == []
        assert checker.check_independence() == []

    def test_empty_heap_is_trivially_valid(self):
        assert check_heap_against_declaration(Heap(), declaration("Octree")) == []

    def test_violation_reports_nodes(self):
        lst = OneWayList.from_iterable(range(3))
        lst.make_cycle()
        violations = check_heap_against_declaration(lst.heap, declaration("OneWayList"))
        assert violations and violations[0].nodes
        assert "cycle" in str(violations[0])
