"""Tests for the ADDS semantic model and the standard declaration library."""

import pytest

from repro.adds.declaration import (
    AddsDeclarationError,
    Direction,
    from_type_decl,
    program_adds_types,
)
from repro.adds.library import (
    declaration,
    standard_declarations,
    standard_program,
    standard_source,
)
from repro.adds.properties import derive_properties
from repro.adds.wellformed import check_well_formed, has_errors
from repro.lang.parser import parse_program


class TestFromTypeDecl:
    def test_one_way_list_model(self):
        adds = declaration("OneWayList")
        assert list(adds.dimensions) == ["X"]
        spec = adds.field_spec("next")
        assert spec.direction is Direction.FORWARD
        assert spec.unique
        assert adds.is_acyclic_field("next")
        assert adds.data_fields == ["data"]

    def test_default_dimension_for_plain_types(self):
        adds = declaration("PlainListNode")
        assert list(adds.dimensions) == ["D"]
        assert adds.field_spec("next").direction is Direction.UNKNOWN
        assert not adds.has_adds_info()

    def test_octree_dimensions_and_fanout(self):
        adds = declaration("Octree")
        assert set(adds.dimensions) == {"down", "leaves"}
        assert adds.field_spec("subtrees").fanout == 8
        assert adds.field_spec("next").dimension == "leaves"
        assert adds.dependent("down", "leaves")  # dependent by default

    def test_range_tree_independences(self):
        adds = declaration("TwoDRangeTree")
        assert adds.independent("sub", "down")
        assert adds.independent("down", "sub")  # symmetric
        assert adds.independent("sub", "leaves")
        assert not adds.independent("down", "leaves")
        assert not adds.independent("down", "down")

    def test_two_way_list_opposite_directions(self):
        adds = declaration("TwoWayList")
        assert adds.opposite_directions("next", "prev")
        assert not adds.opposite_directions("next", "next")

    def test_unknown_dimension_in_field_raises(self):
        decl = parse_program("type T [X] { T *n is forward along Y; };").types[0]
        with pytest.raises(AddsDeclarationError):
            from_type_decl(decl)

    def test_unknown_dimension_in_independence_raises(self):
        decl = parse_program("type T [X] where X||Z { T *n is forward along X; };").types[0]
        with pytest.raises(AddsDeclarationError):
            from_type_decl(decl)

    def test_program_adds_types_covers_all_declarations(self):
        program = standard_program("OneWayList", "BinTree", "Octree")
        types = program_adds_types(program)
        assert set(types) == {"OneWayList", "BinTree", "Octree"}

    def test_external_pointer_fields_are_separated(self):
        program = parse_program(
            "type Other { int v; }; type T [X] { Other *payload; T *next is forward along X; };"
        )
        adds = from_type_decl(program.types[1])
        assert adds.external_pointer_fields == ["payload"]
        assert list(adds.fields) == ["next"]


class TestStandardLibrary:
    def test_every_standard_declaration_is_well_formed(self):
        for name, adds in standard_declarations().items():
            issues = check_well_formed(adds)
            assert not has_errors(issues), f"{name}: {issues}"

    def test_sources_round_trip_through_parser(self):
        for name in ("OneWayList", "OrthList", "TwoDRangeTree", "Octree"):
            assert parse_program(standard_source(name)).types[0].name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            standard_source("NoSuchStructure")

    def test_tournament_list_is_not_unique(self):
        adds = declaration("TournamentList")
        assert adds.field_spec("next").direction is Direction.FORWARD
        assert not adds.field_spec("next").unique

    def test_describe_mentions_every_field(self):
        text = declaration("OrthList").describe()
        for field in ("across", "back", "down", "up"):
            assert field in text


class TestDerivedProperties:
    def test_one_way_list_traversal_properties(self):
        props = derive_properties(declaration("OneWayList"))
        assert props.traversal_never_revisits("next")
        assert props.unique_inbound("next")
        assert props.subtrees_disjoint("next")
        assert not props.may_form_cycle("next")

    def test_plain_list_is_conservative(self):
        props = derive_properties(declaration("PlainListNode"))
        assert not props.traversal_never_revisits("next")
        assert props.may_form_cycle("next")

    def test_bintree_siblings_disjoint(self):
        props = derive_properties(declaration("BinTree"))
        assert props.siblings_disjoint("left", "right")

    def test_octree_array_field_self_disjoint(self):
        props = derive_properties(declaration("Octree"))
        assert props.siblings_disjoint("subtrees", "subtrees")

    def test_needless_cycle_pairs_for_two_way_list(self):
        props = derive_properties(declaration("TwoWayList"))
        assert ("next", "prev") in props.needless_cycle_pairs() or (
            "prev", "next"
        ) in props.needless_cycle_pairs()

    def test_range_tree_field_independence(self):
        props = derive_properties(declaration("TwoDRangeTree"))
        assert props.fields_independent("subtree", "left")
        assert props.fields_independent("subtree", "next")
        assert not props.fields_independent("left", "next")  # dependent dims
        assert not props.fields_independent("left", "right")  # same dim

    def test_summary_is_printable(self):
        text = derive_properties(declaration("Octree")).summary()
        assert "acyclic" in text


class TestWellFormedness:
    def test_uniquely_backward_is_an_error(self):
        decl = parse_program("type T [X] { T *p is uniquely backward along X; };").types[0]
        issues = check_well_formed(from_type_decl(decl))
        assert has_errors(issues)

    def test_uninhabited_dimension_is_a_warning(self):
        decl = parse_program("type T [X] [Y] { T *n is forward along X; };").types[0]
        issues = check_well_formed(from_type_decl(decl))
        assert issues and not has_errors(issues)

    def test_backward_only_dimension_is_flagged(self):
        decl = parse_program("type T [X] { T *p is backward along X; };").types[0]
        issues = check_well_formed(from_type_decl(decl))
        assert any("backward" in i.message for i in issues)
