"""Tests for the octree, the tree build, and the force computations."""

import math

import pytest

from repro.nbody import (
    GRAVITY,
    OctreeNode,
    Particle,
    Vec3,
    build_tree,
    compute_force,
    compute_force_on_particle,
    direct_forces,
    expand_box,
    insert_particle,
    plummer_sphere,
    uniform_cube,
)
from repro.nbody.build import BuildStats, compute_mass_distribution
from repro.nbody.force import well_separated
from repro.nbody.particle import iterate_list, link_particles


class TestVec3:
    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert (a + b).as_tuple() == (5, 7, 9)
        assert (b - a).as_tuple() == (3, 3, 3)
        assert (a * 2).as_tuple() == (2, 4, 6)
        assert (a / 2).as_tuple() == (0.5, 1, 1.5)
        assert (-a).as_tuple() == (-1, -2, -3)

    def test_geometry(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)
        assert Vec3(1, 0, 0).dot(Vec3(0, 1, 0)) == 0.0
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 1, 1)) == pytest.approx(math.sqrt(3))
        assert Vec3(1, 1, 1).is_close(Vec3(1, 1, 1 + 1e-12))


class TestParticleList:
    def test_link_and_iterate(self):
        particles = [Particle(ident=i) for i in range(5)]
        head = link_particles(particles)
        assert head is particles[0]
        assert iterate_list(head) == particles

    def test_cycle_detection(self):
        particles = [Particle(ident=i) for i in range(3)]
        link_particles(particles)
        particles[2].next = particles[0]
        with pytest.raises(ValueError):
            iterate_list(particles[0])


class TestTreeBuild:
    def test_build_over_list_head_and_python_list_agree(self):
        particles = uniform_cube(32, seed=2)
        root_a, _ = build_tree(particles)
        fresh = uniform_cube(32, seed=2)
        root_b, _ = build_tree(fresh[0])  # pass the list head
        assert root_a.count_particles() == root_b.count_particles() == 32

    def test_invariants_hold(self):
        particles = plummer_sphere(64, seed=4)
        root, stats = build_tree(particles)
        assert root.check_invariants() == []
        assert root.count_particles() == 64
        assert root.mass == pytest.approx(sum(p.mass for p in particles))
        assert stats.work > 0

    def test_center_of_mass_matches_direct_computation(self):
        particles = uniform_cube(20, seed=9)
        root, _ = build_tree(particles)
        total = sum(p.mass for p in particles)
        com_x = sum(p.mass * p.position.x for p in particles) / total
        assert root.center_of_mass.x == pytest.approx(com_x)

    def test_expand_box_grows_until_containing(self):
        p_near = Particle(ident=0, position=Vec3(0, 0, 0))
        p_far = Particle(ident=1, position=Vec3(40, -3, 7))
        root = expand_box(p_near, None)
        stats = BuildStats()
        root = expand_box(p_far, root, stats)
        assert root.contains(p_far.position)
        assert stats.expansions >= 1

    def test_insert_two_close_particles_subdivides(self):
        a = Particle(ident=0, position=Vec3(0.1, 0.1, 0.1))
        b = Particle(ident=1, position=Vec3(0.11, 0.12, 0.1))
        root = OctreeNode(center=Vec3(0, 0, 0), half_size=1.0)
        stats = BuildStats()
        insert_particle(a, root, stats)
        insert_particle(b, root, stats)
        compute_mass_distribution(root)
        assert root.count_particles() == 2
        assert stats.subdivisions >= 1
        assert root.check_invariants() == []

    def test_nearly_coincident_particles_build(self):
        """Separating points 1e-12 apart needs ~40 tree levels; the depth cap
        must count levels, not subdivision loop iterations (which reach the
        same level twice), or this trips the 64-level cap at level 32."""
        particles = [
            Particle(ident=0, position=Vec3(0.0, 0.0, 0.0)),
            Particle(ident=1, position=Vec3(0.0, 0.0, 1e-12)),
        ]
        root, _ = build_tree(particles)
        assert root.count_particles() == 2
        assert root.check_invariants() == []

    def test_exactly_coincident_particles_still_capped(self):
        particles = [
            Particle(ident=0, position=Vec3(1.0, 2.0, 3.0)),
            Particle(ident=1, position=Vec3(1.0, 2.0, 3.0)),
        ]
        with pytest.raises(RuntimeError, match="maximum depth"):
            build_tree(particles)

    def test_identical_positions_raise(self):
        a = Particle(ident=0, position=Vec3(0.5, 0.5, 0.5))
        b = Particle(ident=1, position=Vec3(0.5, 0.5, 0.5))
        root = OctreeNode(center=Vec3(0, 0, 0), half_size=1.0)
        insert_particle(a, root)
        with pytest.raises(RuntimeError):
            insert_particle(b, root)

    def test_empty_and_singleton_inputs(self):
        root, _ = build_tree([])
        assert root is None
        single = [Particle(ident=0, position=Vec3(0.3, 0.2, 0.1), mass=2.0)]
        root, _ = build_tree(single)
        assert root is not None and root.mass == 2.0

    def test_stats_describe(self):
        particles = uniform_cube(16, seed=1)
        root, _ = build_tree(particles)
        text = root.stats().describe()
        assert "leaves" in text and "depth" in text


class TestForces:
    def test_two_body_force_matches_newton(self):
        a = Particle(ident=0, mass=2.0, position=Vec3(0, 0, 0))
        b = Particle(ident=1, mass=3.0, position=Vec3(1, 0, 0))
        direct_forces([a, b])
        softened_r2 = 1.0 + 1e-4
        expected = GRAVITY * 2.0 * 3.0 / softened_r2 * (1.0 / math.sqrt(softened_r2))
        assert a.force.x == pytest.approx(expected, rel=1e-9)
        assert b.force.x == pytest.approx(-expected, rel=1e-9)
        assert a.force.y == 0.0 and a.force.z == 0.0

    def test_direct_forces_conserve_momentum(self):
        particles = uniform_cube(24, seed=6)
        direct_forces(particles)
        fx = sum(p.force.x for p in particles)
        fy = sum(p.force.y for p in particles)
        fz = sum(p.force.z for p in particles)
        assert abs(fx) < 1e-9 and abs(fy) < 1e-9 and abs(fz) < 1e-9

    def test_barnes_hut_approximates_direct(self):
        particles = plummer_sphere(96, seed=7)
        reference = [p.copy() for p in particles]
        direct_forces(reference)
        root, _ = build_tree(particles)
        errors = []
        for p, ref in zip(particles, reference):
            compute_force_on_particle(p, root, theta=0.3)
            denom = ref.force.norm() or 1.0
            errors.append((p.force - ref.force).norm() / denom)
        errors.sort()
        assert errors[len(errors) // 2] < 0.05  # median relative error below 5%

    def test_theta_zero_equals_direct_summation(self):
        particles = uniform_cube(20, seed=8)
        reference = [p.copy() for p in particles]
        direct_forces(reference)
        root, _ = build_tree(particles)
        for p, ref in zip(particles, reference):
            compute_force_on_particle(p, root, theta=0.0)
            assert p.force.is_close(ref.force, tol=1e-9)

    def test_larger_theta_means_fewer_interactions(self):
        particles = plummer_sphere(128, seed=3)
        root, _ = build_tree(particles)
        tight = sum(compute_force_on_particle(p, root, theta=0.2) for p in particles)
        loose = sum(compute_force_on_particle(p, root, theta=0.9) for p in particles)
        assert loose < tight

    def test_self_force_is_excluded(self):
        particles = uniform_cube(8, seed=5)
        root, _ = build_tree(particles)
        lonely = [Particle(ident=99, position=Vec3(0.25, 0.25, 0.25))]
        root_single, _ = build_tree(lonely)
        acc = compute_force(lonely[0], root_single, theta=0.5)
        assert acc.interactions == 0
        assert acc.as_vec().norm() == 0.0

    def test_well_separated_criterion(self):
        node = OctreeNode(center=Vec3(0, 0, 0), half_size=1.0)
        node.center_of_mass = Vec3(0, 0, 0)
        near = Particle(ident=0, position=Vec3(1.5, 0, 0))
        far = Particle(ident=1, position=Vec3(50, 0, 0))
        assert not well_separated(near, node, theta=0.5)
        assert well_separated(far, node, theta=0.5)
