"""Tests for the sequential and strip-mined parallel N-body drivers (experiment E7)."""

import pytest

from repro.machine import IDEAL_MACHINE, SEQUENT_LIKE
from repro.nbody import (
    BarnesHutSimulation,
    SimulationConfig,
    StripMinedParallelSimulation,
    kinetic_energy,
    make_particles,
    momentum,
    plummer_sphere,
    total_energy,
    two_clusters,
    uniform_cube,
)
from repro.nbody.energy import center_of_mass


CFG = SimulationConfig(n=48, steps=2, theta=0.5, distribution="uniform", seed=5)


class TestDatasets:
    def test_generators_are_deterministic(self):
        a = [p.position.as_tuple() for p in uniform_cube(16, seed=3)]
        b = [p.position.as_tuple() for p in uniform_cube(16, seed=3)]
        c = [p.position.as_tuple() for p in uniform_cube(16, seed=4)]
        assert a == b and a != c

    def test_particle_lists_are_linked(self):
        particles = plummer_sphere(10, seed=1)
        count = 0
        p = particles[0]
        while p is not None:
            count += 1
            p = p.next
        assert count == 10

    def test_two_clusters_are_separated(self):
        particles = two_clusters(40, seed=2, separation=6.0)
        left = [p for p in particles if p.position.x < 0]
        right = [p for p in particles if p.position.x >= 0]
        assert len(left) == len(right) == 20

    def test_make_particles_dispatch(self):
        assert len(make_particles(12, "plummer", seed=1)) == 12
        with pytest.raises(KeyError):
            make_particles(12, "nope")


class TestSequentialSimulation:
    def test_run_produces_per_step_stats(self, small_particles):
        sim = BarnesHutSimulation(small_particles, CFG)
        result = sim.run()
        assert len(result.steps) == CFG.steps
        for step in result.steps:
            assert step.build_work > 0
            assert step.force_work > 0
            assert step.interactions > 0
            assert len(step.per_particle_force_work) == CFG.n
        assert 0 < result.build_fraction < 0.5

    def test_simulation_moves_particles(self, small_particles):
        before = [p.position.as_tuple() for p in small_particles]
        BarnesHutSimulation(small_particles, CFG).run()
        after = [p.position.as_tuple() for p in small_particles]
        assert before != after

    def test_energy_roughly_conserved_over_short_run(self):
        particles = plummer_sphere(40, seed=9)
        e0 = total_energy(particles)
        config = SimulationConfig(n=40, steps=5, dt=1e-4, theta=0.3, distribution="plummer", seed=9)
        BarnesHutSimulation(particles, config).run()
        e1 = total_energy(particles)
        assert abs(e1 - e0) < 0.05 * max(abs(e0), 1e-9)

    def test_momentum_nearly_conserved(self):
        particles = uniform_cube(30, seed=11)
        p0 = momentum(particles)
        config = SimulationConfig(n=30, steps=3, dt=1e-3, theta=0.3, distribution="uniform", seed=11)
        BarnesHutSimulation(particles, config).run()
        p1 = momentum(particles)
        # BH approximation breaks exact symmetry, but drift should be small
        assert (p1 - p0).norm() < 5e-3

    def test_direct_run_matches_bh_closely(self):
        config = SimulationConfig(n=32, steps=1, theta=0.2, distribution="uniform", seed=6)
        bh_particles = uniform_cube(32, seed=6)
        direct_particles = uniform_cube(32, seed=6)
        BarnesHutSimulation(bh_particles, config).run()
        BarnesHutSimulation(direct_particles, config).run_direct()
        for a, b in zip(bh_particles, direct_particles):
            assert (a.position - b.position).norm() < 1e-4

    def test_center_of_mass_helper(self, small_particles):
        com = center_of_mass(small_particles)
        assert abs(com.x) < 1.0 and abs(com.y) < 1.0

    def test_kinetic_energy_nonnegative(self, small_particles):
        assert kinetic_energy(small_particles) >= 0.0


class TestParallelEquivalence:
    """The strip-mined schedule must compute bit-identical physics (E7)."""

    @pytest.mark.parametrize("pes", [2, 4, 7])
    def test_simulated_parallel_matches_sequential(self, pes):
        seq_particles = make_particles(CFG.n, CFG.distribution, seed=CFG.seed)
        sequential = BarnesHutSimulation(seq_particles, CFG).run()
        par_particles = make_particles(CFG.n, CFG.distribution, seed=CFG.seed)
        parallel = StripMinedParallelSimulation(
            par_particles, CFG, SEQUENT_LIKE.with_pes(pes)
        ).run()
        assert parallel.final_states == sequential.final_states

    def test_thread_backend_matches_sequential(self):
        seq_particles = make_particles(CFG.n, CFG.distribution, seed=CFG.seed)
        sequential = BarnesHutSimulation(seq_particles, CFG).run()
        par_particles = make_particles(CFG.n, CFG.distribution, seed=CFG.seed)
        parallel = StripMinedParallelSimulation(
            par_particles, CFG, SEQUENT_LIKE.with_pes(4), use_threads=True
        ).run()
        assert parallel.final_states == sequential.final_states
        assert parallel.threads_observed >= 1

    def test_parallel_run_reports_speedup(self):
        seq_particles = make_particles(96, "uniform", seed=2)
        config = SimulationConfig(n=96, steps=1, theta=0.4, distribution="uniform", seed=2)
        sequential = BarnesHutSimulation(seq_particles, config).run()
        par_particles = make_particles(96, "uniform", seed=2)
        parallel = StripMinedParallelSimulation(
            par_particles, config, SEQUENT_LIKE.with_pes(4)
        ).run()
        speedup = parallel.speedup_against(sequential.total_work)
        assert 1.5 < speedup < 4.0

    def test_ideal_machine_gives_higher_speedup_than_sequent(self):
        config = SimulationConfig(n=96, steps=1, theta=0.4, distribution="uniform", seed=2)
        seq = BarnesHutSimulation(make_particles(96, "uniform", 2), config).run()
        real = StripMinedParallelSimulation(
            make_particles(96, "uniform", 2), config, SEQUENT_LIKE.with_pes(4)
        ).run()
        ideal = StripMinedParallelSimulation(
            make_particles(96, "uniform", 2), config, IDEAL_MACHINE.with_pes(4)
        ).run()
        assert ideal.speedup_against(seq.total_work) > real.speedup_against(seq.total_work)

    def test_trace_components_are_consistent(self):
        config = SimulationConfig(n=64, steps=1, theta=0.4, distribution="uniform", seed=2)
        parallel = StripMinedParallelSimulation(
            make_particles(64, "uniform", 2), config, SEQUENT_LIKE.with_pes(4)
        ).run()
        trace = parallel.trace
        assert trace.parallel_steps == 2 * ((64 + 3) // 4)  # force + update passes
        assert trace.elapsed > trace.sequential_time
        assert trace.busy_time > 0 and trace.sync_time > 0


class TestToyProgramConsistency:
    def test_toy_program_loops_match_native_structure(self, bh_program):
        """The toy-language program has the two loops the paper names."""
        from repro.nbody import BHL1_FUNCTION, BHL2_FUNCTION

        assert bh_program.function_named(BHL1_FUNCTION) is not None
        assert bh_program.function_named(BHL2_FUNCTION) is not None

    def test_toy_program_runs_and_builds_valid_octree(self, bh_program):
        from repro.adds import check_heap_against_declaration, declaration
        from repro.lang.interpreter import run_program

        head, interp = run_program(bh_program)
        assert head != 0
        assert check_heap_against_declaration(interp.heap, declaration("Octree")) == []
