"""Unit tests for the toy-language lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as K


def kinds(source: str) -> list[K]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source) if t.kind is not K.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        assert kinds("") == [K.EOF]

    def test_identifiers_and_keywords_are_distinguished(self):
        toks = tokenize("type while foo forward along bar")
        assert [t.kind for t in toks[:-1]] == [
            K.KW_TYPE, K.KW_WHILE, K.IDENT, K.KW_FORWARD, K.KW_ALONG, K.IDENT,
        ]

    def test_integer_and_float_literals(self):
        toks = tokenize("42 3.5 1e3 2.5e-2 7")
        assert [t.kind for t in toks[:-1]] == [
            K.INT_LIT, K.FLOAT_LIT, K.FLOAT_LIT, K.FLOAT_LIT, K.INT_LIT,
        ]

    def test_string_literal_with_escapes(self):
        toks = tokenize(r'"hello\nworld"')
        assert toks[0].kind is K.STRING_LIT
        assert toks[0].text == "hello\nworld"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestOperators:
    def test_arrow_versus_minus(self):
        assert kinds("p->next")[:3] == [K.IDENT, K.ARROW, K.IDENT]
        assert kinds("a - b")[:3] == [K.IDENT, K.MINUS, K.IDENT]

    def test_comparison_operators(self):
        assert kinds("a <> b == c <= d >= e < f > g")[1:-1:2] == [
            K.NEQ, K.EQ, K.LE, K.GE, K.LT, K.GT,
        ]

    def test_independence_operator(self):
        assert K.INDEP in kinds("sub||down")

    def test_null_keyword_case_variants(self):
        assert kinds("NULL null")[:2] == [K.KW_NULL, K.KW_NULL]


class TestCommentsAndPositions:
    def test_block_and_line_comments_are_skipped(self):
        source = "a /* comment \n spanning lines */ b // trailing\n c # hash\n d"
        assert texts(source) == ["a", "b", "c", "d"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_line_numbers_advance(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].col == 3

    def test_paper_adds_declaration_tokenizes(self):
        source = """
        type OneWayList [X]
        { int data;
          OneWayList *next is uniquely forward along X;
        };
        """
        token_kinds = kinds(source)
        assert K.KW_UNIQUELY in token_kinds
        assert K.KW_FORWARD in token_kinds
        assert K.KW_ALONG in token_kinds
