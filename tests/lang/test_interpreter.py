"""Tests for the reference interpreter and its explicit heap."""

import pytest

from repro.lang.errors import RuntimeLangError
from repro.lang.heap import NULL_REF
from repro.lang.interpreter import Interpreter, run_program
from repro.lang.parser import parse_program


class TestArithmeticAndControlFlow:
    def test_recursion_and_arithmetic(self):
        program = parse_program(
            "function fib(n) { if n < 2 then return n; return fib(n - 1) + fib(n - 2); }"
        )
        result, _ = run_program(program, entry="fib", args=(10,))
        assert result == 55

    def test_while_loop_and_float_math(self):
        program = parse_program(
            """
            function sum_inverse(n)
            { var total; var i;
              total = 0.0;
              i = 1;
              while i <= n
              { total = total + 1.0 / i;
                i = i + 1;
              }
              return total;
            }
            """
        )
        result, _ = run_program(program, entry="sum_inverse", args=(4,))
        assert result == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_for_loop_counts_iterations(self):
        program = parse_program(
            "function f(n) { var s; s = 0; for i = 1 to n { s = s + i; } return s; }"
        )
        result, interp = run_program(program, entry="f", args=(5,))
        assert result == 15
        assert interp.stats.loop_iterations == 5

    def test_parallel_for_reference_semantics(self):
        program = parse_program(
            "function f(n) { var s; s = 0; for i = 1 to n in parallel { s = s + i; } return s; }"
        )
        result, interp = run_program(program, entry="f", args=(4,))
        assert result == 10
        assert interp.stats.parallel_loops == 1

    def test_division_by_zero_raises(self):
        program = parse_program("function f(x) { return 1 / x; }")
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f", args=(0,))

    def test_builtin_functions(self):
        program = parse_program("function f(x) { return sqrt(x) + abs(0 - 2); }")
        result, _ = run_program(program, entry="f", args=(9.0,))
        assert result == pytest.approx(5.0)

    def test_custom_builtin_registration(self):
        program = parse_program("function f(x) { return double(x); }")
        result, _ = run_program(
            program, entry="f", args=(21,), builtins={"double": lambda v: v * 2}
        )
        assert result == 42


class TestHeapSemantics:
    def test_allocation_and_field_access(self, scale_program):
        result, interp = run_program(scale_program)
        assert interp.stats.allocations == 8
        # build() pushes 8..1 at the front, then scale() multiplies by 3
        cell = interp.heap.cell(result)
        assert cell.fields["coef"] == 8 * 3
        values = []
        ref = result
        while ref != NULL_REF:
            values.append(interp.heap.cell(ref).fields["coef"])
            ref = interp.heap.cell(ref).fields["next"]
        assert values == [v * 3 for v in range(8, 0, -1)]

    def test_unknown_field_raises(self):
        program = parse_program(
            "type T { int v; }; function f() { var p; p = new T; return p->missing; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")

    def test_store_through_null_raises(self):
        program = parse_program(
            "type T { int v; T *n; }; function f() { var p; p = NULL; p->v = 1; return 0; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")

    def test_array_field_indexing(self):
        program = parse_program(
            """
            type Node { int v; Node *kids[4]; };
            function f()
            { var a; var b;
              a = new Node;
              b = new Node;
              b->v = 7;
              a->kids[2] = b;
              return a->kids[2]->v;
            }
            """
        )
        result, _ = run_program(program, entry="f")
        assert result == 7

    def test_array_index_out_of_bounds_raises(self):
        program = parse_program(
            "type Node { Node *kids[2]; }; function f() { var a; a = new Node; return a->kids[5]; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")


class TestSpeculativeTraversability:
    """Section 3.2: traversing past the end of a structure must not fault."""

    SRC = """
    type L [X] { int v; L *next is uniquely forward along X; };
    function f(k)
    { var p; var i;
      p = new L;
      p->v = 1;
      i = 0;
      while i < k
      { p = p->next;
        i = i + 1;
      }
      return p;
    }
    """

    def test_walking_past_the_end_yields_null(self):
        program = parse_program(self.SRC)
        result, _ = run_program(program, entry="f", args=(5,))
        assert result == NULL_REF

    def test_disabled_speculation_faults(self):
        program = parse_program(self.SRC)
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f", args=(5,), speculative_traversal=False)

    def test_data_access_through_null_still_faults(self):
        program = parse_program(
            "type L { int v; L *next; }; function f() { var p; p = NULL; return p->v + 1; }"
        )
        # the speculative load returns NULL (0); adding is fine, but a store is not —
        # verify the documented boundary: loads are speculative, stores are not
        result, _ = run_program(program, entry="f")
        assert result == 1


class TestExecutionStats:
    def test_operation_counters_increase(self, scale_program):
        _, interp = run_program(scale_program)
        stats = interp.stats
        assert stats.field_writes >= 8 * 3  # coef, exp, next per node at least
        assert stats.field_reads > 0
        assert stats.calls >= 3
        assert stats.total_operations() > stats.statements

    def test_max_steps_guard(self):
        program = parse_program(
            "function f() { var i; i = 0; while true { i = i + 1; } return i; }"
        )
        interp = Interpreter(program, max_steps=1000)
        with pytest.raises(RuntimeLangError):
            interp.call_function("f")

    def test_output_capture_via_print(self):
        program = parse_program('function f() { print("hello", 42); return 0; }')
        _, interp = run_program(program, entry="f")
        assert interp.output == ["hello 42"]
