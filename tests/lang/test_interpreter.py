"""Tests for the reference interpreter and its explicit heap."""

import pytest

from repro.lang.errors import RuntimeLangError
from repro.lang.heap import NULL_REF
from repro.lang.interpreter import Interpreter, run_program
from repro.lang.parser import parse_program


class TestArithmeticAndControlFlow:
    def test_recursion_and_arithmetic(self):
        program = parse_program(
            "function fib(n) { if n < 2 then return n; return fib(n - 1) + fib(n - 2); }"
        )
        result, _ = run_program(program, entry="fib", args=(10,))
        assert result == 55

    def test_while_loop_and_float_math(self):
        program = parse_program(
            """
            function sum_inverse(n)
            { var total; var i;
              total = 0.0;
              i = 1;
              while i <= n
              { total = total + 1.0 / i;
                i = i + 1;
              }
              return total;
            }
            """
        )
        result, _ = run_program(program, entry="sum_inverse", args=(4,))
        assert result == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_for_loop_counts_iterations(self):
        program = parse_program(
            "function f(n) { var s; s = 0; for i = 1 to n { s = s + i; } return s; }"
        )
        result, interp = run_program(program, entry="f", args=(5,))
        assert result == 15
        assert interp.stats.loop_iterations == 5

    def test_parallel_for_reference_semantics(self):
        program = parse_program(
            "function f(n) { var s; s = 0; for i = 1 to n in parallel { s = s + i; } return s; }"
        )
        result, interp = run_program(program, entry="f", args=(4,))
        assert result == 10
        assert interp.stats.parallel_loops == 1

    def test_division_by_zero_raises(self):
        program = parse_program("function f(x) { return 1 / x; }")
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f", args=(0,))


#: both counted-loop forms must share the same reference semantics
LOOP_KINDS = ["", " in parallel"]


class TestCountedLoopSemantics:
    """``for`` and ``for .. in parallel`` agree on step, bounds, and the
    loop variable (the parallel form previously ignored all three)."""

    @pytest.mark.parametrize("parallel", LOOP_KINDS)
    def test_positive_step(self, parallel):
        program = parse_program(
            "function f() { var s; s = 0; "
            f"for i = 1 to 9 step 3{parallel} {{ s = s + i; }} return s; }}"
        )
        result, interp = run_program(program, entry="f")
        assert result == 1 + 4 + 7
        assert interp.stats.loop_iterations == 3

    @pytest.mark.parametrize("parallel", LOOP_KINDS)
    def test_descending_bounds_with_negative_step(self, parallel):
        program = parse_program(
            "function f() { var s; s = 0; "
            f"for i = 5 to 1 step 0 - 2{parallel} {{ s = s + i; }} return s; }}"
        )
        result, interp = run_program(program, entry="f")
        assert result == 5 + 3 + 1
        assert interp.stats.loop_iterations == 3

    @pytest.mark.parametrize("parallel", LOOP_KINDS)
    def test_empty_range_runs_zero_iterations(self, parallel):
        program = parse_program(
            "function f() { var s; s = 0; "
            f"for i = 3 to 1{parallel} {{ s = s + 1; }} return s; }}"
        )
        result, interp = run_program(program, entry="f")
        assert result == 0
        assert interp.stats.loop_iterations == 0

    @pytest.mark.parametrize("parallel", LOOP_KINDS)
    def test_body_update_of_loop_variable_is_honored(self, parallel):
        program = parse_program(
            "function f() { var n; n = 0; "
            f"for i = 1 to 10{parallel} {{ n = n + 1; i = i + 1; }} return n; }}"
        )
        result, _ = run_program(program, entry="f")
        assert result == 5  # the body advances i too, so the loop halves

    @pytest.mark.parametrize("parallel", LOOP_KINDS)
    def test_zero_step_raises(self, parallel):
        program = parse_program(
            f"function f() {{ for i = 1 to 3 step 0{parallel} {{ }} return 0; }}"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")

    def test_both_kinds_compute_identical_sums(self):
        results = []
        for parallel in LOOP_KINDS:
            program = parse_program(
                "function f() { var s; s = 0; "
                f"for i = 10 to 2 step 0 - 3{parallel} {{ s = s * 10 + i; }} return s; }}"
            )
            result, _ = run_program(program, entry="f")
            results.append(result)
        assert results[0] == results[1] == 1074


class TestCStyleIntegerArithmetic:
    """Integer ``/`` truncates toward zero and ``%`` takes the dividend's
    sign, as in the modeled C-like language (Python floors instead)."""

    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("(0 - 7) / 2", -3),   # Python floor division would say -4
            ("7 / (0 - 2)", -3),   # ... and -4 here
            ("(0 - 7) / (0 - 2)", 3),
            ("7 / 2", 3),
            ("(0 - 7) % 2", -1),   # Python % would say 1
            ("7 % (0 - 2)", 1),    # ... and -1 here
            ("(0 - 7) % (0 - 2)", -1),
            ("7 % 2", 1),
        ],
    )
    def test_negative_operands(self, expr, expected):
        program = parse_program(f"function f() {{ return ({expr}); }}")
        result, _ = run_program(program, entry="f")
        assert result == expected

    def test_division_identity_holds(self):
        # l == (l / r) * r + l % r for every sign combination
        for left in (-7, 7):
            for right in (-2, 2):
                program = parse_program(
                    "function f(l, r) { return (l / r) * r + l % r; }"
                )
                result, _ = run_program(program, entry="f", args=(left, right))
                assert result == left, (left, right)

    def test_float_division_unchanged(self):
        program = parse_program("function f() { return (0.0 - 7.0) / 2.0; }")
        result, _ = run_program(program, entry="f")
        assert result == pytest.approx(-3.5)

    def test_modulo_by_zero_raises(self):
        program = parse_program("function f(x) { return 1 % x; }")
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f", args=(0,))

    def test_builtin_functions(self):
        program = parse_program("function f(x) { return sqrt(x) + abs(0 - 2); }")
        result, _ = run_program(program, entry="f", args=(9.0,))
        assert result == pytest.approx(5.0)

    def test_custom_builtin_registration(self):
        program = parse_program("function f(x) { return double(x); }")
        result, _ = run_program(
            program, entry="f", args=(21,), builtins={"double": lambda v: v * 2}
        )
        assert result == 42


class TestHeapSemantics:
    def test_allocation_and_field_access(self, scale_program):
        result, interp = run_program(scale_program)
        assert interp.stats.allocations == 8
        # build() pushes 8..1 at the front, then scale() multiplies by 3
        cell = interp.heap.cell(result)
        assert cell.fields["coef"] == 8 * 3
        values = []
        ref = result
        while ref != NULL_REF:
            values.append(interp.heap.cell(ref).fields["coef"])
            ref = interp.heap.cell(ref).fields["next"]
        assert values == [v * 3 for v in range(8, 0, -1)]

    def test_unknown_field_raises(self):
        program = parse_program(
            "type T { int v; }; function f() { var p; p = new T; return p->missing; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")

    def test_store_through_null_raises(self):
        program = parse_program(
            "type T { int v; T *n; }; function f() { var p; p = NULL; p->v = 1; return 0; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")

    def test_array_field_indexing(self):
        program = parse_program(
            """
            type Node { int v; Node *kids[4]; };
            function f()
            { var a; var b;
              a = new Node;
              b = new Node;
              b->v = 7;
              a->kids[2] = b;
              return a->kids[2]->v;
            }
            """
        )
        result, _ = run_program(program, entry="f")
        assert result == 7

    def test_array_index_out_of_bounds_raises(self):
        program = parse_program(
            "type Node { Node *kids[2]; }; function f() { var a; a = new Node; return a->kids[5]; }"
        )
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f")


class TestSpeculativeTraversability:
    """Section 3.2: traversing past the end of a structure must not fault."""

    SRC = """
    type L [X] { int v; L *next is uniquely forward along X; };
    function f(k)
    { var p; var i;
      p = new L;
      p->v = 1;
      i = 0;
      while i < k
      { p = p->next;
        i = i + 1;
      }
      return p;
    }
    """

    def test_walking_past_the_end_yields_null(self):
        program = parse_program(self.SRC)
        result, _ = run_program(program, entry="f", args=(5,))
        assert result == NULL_REF

    def test_disabled_speculation_faults(self):
        program = parse_program(self.SRC)
        with pytest.raises(RuntimeLangError):
            run_program(program, entry="f", args=(5,), speculative_traversal=False)

    def test_data_access_through_null_still_faults(self):
        program = parse_program(
            "type L { int v; L *next; }; function f() { var p; p = NULL; return p->v + 1; }"
        )
        # the speculative load returns NULL (0); adding is fine, but a store is not —
        # verify the documented boundary: loads are speculative, stores are not
        result, _ = run_program(program, entry="f")
        assert result == 1


class TestExecutionStats:
    def test_operation_counters_increase(self, scale_program):
        _, interp = run_program(scale_program)
        stats = interp.stats
        assert stats.field_writes >= 8 * 3  # coef, exp, next per node at least
        assert stats.field_reads > 0
        assert stats.calls >= 3
        assert stats.total_operations() > stats.statements

    def test_max_steps_guard(self):
        program = parse_program(
            "function f() { var i; i = 0; while true { i = i + 1; } return i; }"
        )
        interp = Interpreter(program, max_steps=1000)
        with pytest.raises(RuntimeLangError):
            interp.call_function("f")

    def test_output_capture_via_print(self):
        program = parse_program('function f() { print("hello", 42); return 0; }')
        _, interp = run_program(program, entry="f")
        assert interp.output == ["hello 42"]
