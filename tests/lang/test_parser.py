"""Unit tests for the toy-language parser, including the ADDS extensions."""

import pytest

from repro.adds.library import ORTH_LIST_SRC, RANGE_TREE_2D_SRC
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    FieldAccess,
    FieldAssign,
    For,
    If,
    IndexAccess,
    NullLit,
    ParallelFor,
    Return,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program


class TestTypeDeclarations:
    def test_simple_adds_declaration(self):
        program = parse_program(
            "type OneWayList [X] { int data; OneWayList *next is uniquely forward along X; };"
        )
        decl = program.types[0]
        assert decl.name == "OneWayList"
        assert decl.dimensions == ["X"]
        next_field = decl.field_named("next")
        assert next_field.is_pointer
        assert next_field.adds.direction == "forward"
        assert next_field.adds.unique
        assert next_field.adds.dimension == "X"
        assert decl.field_named("data").adds is None

    def test_plain_declaration_without_dimensions(self):
        program = parse_program("type Node { int v; Node *next; };")
        decl = program.types[0]
        assert decl.dimensions == []
        assert decl.field_named("next").adds is None

    def test_grouped_fields_share_group_and_spec(self):
        program = parse_program(
            "type BinTree [down] { int data; BinTree *left, *right is uniquely forward along down; };"
        )
        decl = program.types[0]
        left, right = decl.field_named("left"), decl.field_named("right")
        assert left.group == right.group and left.group is not None
        assert left.adds == right.adds

    def test_independence_clause(self):
        program = parse_program(RANGE_TREE_2D_SRC)
        decl = program.types[0]
        assert ("sub", "down") in decl.independences
        assert ("sub", "leaves") in decl.independences

    def test_array_of_pointers_field(self):
        program = parse_program(
            "type Octree [down] { Octree *subtrees[8] is uniquely forward along down; };"
        )
        field = program.types[0].field_named("subtrees")
        assert field.array_size == 8
        assert field.is_pointer

    def test_orthogonal_list_has_four_directed_fields(self):
        decl = parse_program(ORTH_LIST_SRC).types[0]
        assert {f.name for f in decl.recursive_pointer_fields()} == {
            "across", "back", "down", "up",
        }
        assert decl.field_named("back").adds.direction == "backward"

    def test_backward_field_direction(self):
        program = parse_program(
            "type L [X] { L *next is forward along X; L *prev is backward along X; };"
        )
        assert program.types[0].field_named("prev").adds.direction == "backward"
        assert not program.types[0].field_named("next").adds.unique


class TestStatements:
    def test_while_with_null_test(self):
        program = parse_program(
            "function f(p) { while p <> NULL { p = p->next; } return p; }"
        )
        body = program.functions[0].body.statements
        assert isinstance(body[0], While)
        assert isinstance(body[0].cond, BinOp) and body[0].cond.op == "<>"
        assert isinstance(body[0].cond.right, NullLit)
        assert isinstance(body[1], Return)

    def test_field_assignment_forms(self):
        program = parse_program(
            "procedure f(p, q) { p->next = q; p->subtrees[3] = q; p->data = 1 + 2; }"
        )
        stmts = program.functions[0].body.statements
        assert all(isinstance(s, FieldAssign) for s in stmts)
        assert stmts[1].index is not None
        assert stmts[0].field == "next"

    def test_for_and_parallel_for(self):
        program = parse_program(
            "procedure f(n) { for i = 0 to n - 1 { g(i); } for j = 0 to n - 1 in parallel { g(j); } }"
        )
        stmts = program.functions[0].body.statements
        assert isinstance(stmts[0], For)
        assert isinstance(stmts[1], ParallelFor)

    def test_if_then_else(self):
        program = parse_program(
            "function f(x) { if x > 0 then return 1; else return 0 - 1; }"
        )
        stmt = program.functions[0].body.statements[0]
        assert isinstance(stmt, If)
        assert stmt.else_body is not None

    def test_nested_calls_and_field_chains(self):
        expr = parse_expression("compute_force(p->next, root)->mass")
        assert isinstance(expr, FieldAccess)
        assert isinstance(expr.base, Call)
        assert isinstance(expr.base.args[0], FieldAccess)

    def test_index_access_expression(self):
        expr = parse_expression("node->subtrees[i + 1]")
        assert isinstance(expr, IndexAccess)
        assert isinstance(expr.base, FieldAccess)

    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_boolean_connectives(self):
        expr = parse_expression("a < b and not c or d == e")
        assert isinstance(expr, BinOp) and expr.op == "or"


class TestErrors:
    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("function f() { return 1 }")

    def test_bad_adds_direction_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("type T [X] { T *n is sideways along X; };")

    def test_assignment_to_literal_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("function f() { 3 = 4; }")

    def test_top_level_garbage_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("banana")


class TestWholePrograms:
    def test_scale_program_parses(self, scale_program):
        assert scale_program.type_named("ListNode") is not None
        assert {f.name for f in scale_program.functions} == {"build", "scale", "main"}

    def test_barnes_hut_toy_program_parses(self, bh_program):
        assert bh_program.type_named("Octree") is not None
        assert bh_program.function_named("build_tree") is not None
        assert bh_program.function_named("compute_force") is not None
