"""Tests for the CFG builder, the type inferencer, the pretty-printer and the builder API."""

import pytest

from repro.lang.ast_nodes import Assign, While
from repro.lang.builder import E, ProgramBuilder, S
from repro.lang.cfg import build_cfg
from repro.lang.errors import TypeCheckError
from repro.lang.interpreter import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import unparse
from repro.lang.typecheck import check_program


class TestCFG:
    def test_straight_line_code_is_one_block_plus_exit(self):
        program = parse_program("function f(x) { var y; y = x + 1; return y; }")
        cfg = build_cfg(program.functions[0])
        assert cfg.block(cfg.entry).statements
        assert cfg.reverse_postorder()[0] == cfg.entry

    def test_while_loop_creates_back_edge(self, scale_program):
        cfg = build_cfg(scale_program.function_named("scale"))
        headers = cfg.loop_headers()
        assert len(headers) == 1
        header = cfg.block(headers[0])
        assert isinstance(header.loop_header_of, While)
        # the header has two successors: body and exit path
        assert len(header.successors) == 2

    def test_if_produces_join_block(self):
        program = parse_program(
            "function f(x) { var y; if x > 0 then y = 1; else y = 2; return y; }"
        )
        cfg = build_cfg(program.functions[0])
        joins = [b for b in cfg.blocks if b.label == "if.join"]
        assert len(joins) == 1
        assert len(joins[0].predecessors) == 2

    def test_for_loop_is_lowered_with_induction_update(self):
        program = parse_program("function f(n) { var s; s = 0; for i = 1 to n { s = s + i; } return s; }")
        cfg = build_cfg(program.functions[0])
        # the init assignment i = 1 must appear in some block
        inits = [
            s for b in cfg.blocks for s in b.statements
            if isinstance(s, Assign) and s.target == "i"
        ]
        assert len(inits) >= 2  # init plus increment

    def test_statement_count_matches_blocks(self, bh_program):
        for func in bh_program.functions:
            cfg = build_cfg(func)
            assert cfg.statement_count() >= 0
            assert cfg.exit == cfg.blocks[cfg.exit].index


class TestTypeInference:
    def test_pointer_variables_are_found(self, scale_program):
        result = check_program(scale_program)
        env = result.env("scale")
        assert "p" in env.pointer_variables()
        assert env.pointee_record("p") == "ListNode"
        assert "head" in env.pointer_variables()  # via backward propagation

    def test_scalar_parameters_stay_scalar(self, scale_program):
        env = check_program(scale_program).env("scale")
        assert env.pointee_record("c") is None

    def test_duplicate_type_declaration_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("type T { int v; }; type T { int w; };"))

    def test_duplicate_field_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("type T { int v; int v; };"))

    def test_unknown_field_type_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("type T { Unknown *u; };"))

    def test_adds_on_data_field_rejected(self):
        with pytest.raises(TypeCheckError):
            check_program(
                parse_program("type T [X] { int v is forward along X; T *n; };")
            )

    def test_allocation_gives_pointer_type(self):
        program = parse_program(
            "type T { int v; T *n; }; function f() { var p; p = new T; return p; }"
        )
        env = check_program(program).env("f")
        assert env.pointee_record("p") == "T"


class TestPrettyPrinterRoundTrip:
    def test_scale_program_round_trips(self, scale_program):
        text = unparse(scale_program)
        reparsed = parse_program(text)
        r1, i1 = run_program(scale_program)
        r2, i2 = run_program(reparsed)
        assert i1.heap.snapshot() == i2.heap.snapshot()

    def test_barnes_hut_round_trips(self, bh_program):
        text = unparse(bh_program)
        reparsed = parse_program(text)
        assert {f.name for f in reparsed.functions} == {f.name for f in bh_program.functions}
        r1, i1 = run_program(bh_program)
        r2, i2 = run_program(reparsed)
        assert len(i1.heap) == len(i2.heap)

    def test_adds_annotations_survive_round_trip(self):
        source = (
            "type OrthList [X] [Y]\n{ int data;\n  OrthList *across is uniquely forward along X;\n};"
        )
        reparsed = parse_program(unparse(parse_program(source)))
        field = reparsed.types[0].field_named("across")
        assert field.adds.unique and field.adds.dimension == "X"

    def test_independences_survive_round_trip(self):
        from repro.adds.library import RANGE_TREE_2D_SRC

        reparsed = parse_program(unparse(parse_program(RANGE_TREE_2D_SRC)))
        assert set(map(tuple, reparsed.types[0].independences)) == {
            ("sub", "down"), ("sub", "leaves"),
        }


class TestProgramBuilder:
    def test_build_and_run_a_program(self):
        pb = ProgramBuilder()
        pb.type("Node", dimensions=["X"]).data("v").pointer(
            "next", dimension="X", direction="forward", unique=True
        )
        pb.function(
            "main",
            [],
            [
                S.var("a", E.new("Node")),
                S.store("a", "v", 41),
                S.store("a", "v", E.add(E.field("a", "v"), 1)),
                S.ret(E.field("a", "v")),
            ],
        )
        program = pb.build()
        result, _ = run_program(program)
        assert result == 42

    def test_builder_adds_metadata_matches_parser(self):
        pb = ProgramBuilder()
        pb.type("L", dimensions=["X"]).data("v").pointer(
            "next", dimension="X", direction="forward", unique=True
        )
        built = pb.build().types[0]
        parsed = parse_program(
            "type L [X] { int v; L *next is uniquely forward along X; };"
        ).types[0]
        assert built.dimensions == parsed.dimensions
        assert built.field_named("next").adds == parsed.field_named("next").adds
