"""Additional coverage: the heap model, error formatting, symbol tables."""

import pytest

from repro.lang.errors import LangError, LexError, ParseError, TypeCheckError
from repro.lang.heap import Heap, NULL_REF, _pointer_values
from repro.lang.errors import RuntimeLangError
from repro.lang.symbols import Scope, Symbol, SymbolTable
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    NULL_POINTER,
    PointerType,
    RecordType,
    ArrayType,
    compatible,
    type_from_name,
)


class TestHeapModel:
    def test_allocate_and_access(self):
        heap = Heap()
        ref = heap.allocate("Node", {"v": 1, "next": NULL_REF})
        assert heap.is_valid(ref)
        assert heap.load(ref, "v") == 1
        heap.store(ref, "v", 2)
        assert heap.cell(ref).fields["v"] == 2
        assert len(heap) == 1 and heap.allocation_count == 1

    def test_null_and_dangling_dereference(self):
        heap = Heap()
        with pytest.raises(RuntimeLangError):
            heap.cell(NULL_REF)
        with pytest.raises(RuntimeLangError):
            heap.cell(999)

    def test_unknown_field_access(self):
        heap = Heap()
        ref = heap.allocate("Node", {"v": 1})
        with pytest.raises(RuntimeLangError):
            heap.load(ref, "w")
        with pytest.raises(RuntimeLangError):
            heap.store(ref, "w", 0)

    def test_reachability_and_edges(self):
        heap = Heap()
        a = heap.allocate("Node", {"next": NULL_REF})
        b = heap.allocate("Node", {"next": NULL_REF})
        c = heap.allocate("Node", {"next": NULL_REF})
        heap.store(a, "next", b)
        heap.store(b, "next", c)
        assert heap.reachable_from(a, fields={"next"}) == {a, b, c}
        assert heap.reachable_from(b, fields={"next"}) == {b, c}
        edges = list(heap.edges(fields={"next"}))
        assert (a, "next", b) in edges and (b, "next", c) in edges

    def test_pointer_arrays_are_followed(self):
        heap = Heap()
        child = heap.allocate("Node", {"kids": [NULL_REF, NULL_REF]})
        parent = heap.allocate("Node", {"kids": [child, NULL_REF]})
        assert heap.reachable_from(parent, fields={"kids"}) == {parent, child}

    def test_cells_of_type_and_snapshot(self):
        heap = Heap()
        heap.allocate("A", {"v": 1})
        heap.allocate("B", {"v": 2})
        assert len(heap.cells_of_type("A")) == 1
        snap = heap.snapshot()
        assert snap[1]["v"] == 1 and snap[2]["v"] == 2

    def test_pointer_values_skips_bools(self):
        assert list(_pointer_values(True)) == []
        assert list(_pointer_values(7)) == [7]
        assert list(_pointer_values([3, True, 5])) == [3, 5]


class TestSymbolTables:
    def test_nested_scopes(self):
        table = SymbolTable()
        table.declare_global(Symbol("g", "var", INT))
        table.push("f")
        table.declare(Symbol("x", "param", FLOAT))
        assert table.lookup("x").type is FLOAT
        assert table.lookup("g").type is INT
        assert "x" in table
        table.pop()
        assert table.lookup("x") is None

    def test_redeclaration_rejected(self):
        scope = Scope()
        scope.declare(Symbol("a", "var"))
        with pytest.raises(TypeCheckError):
            scope.declare(Symbol("a", "var"))
        scope.declare(Symbol("a", "var"), allow_redeclare=True)

    def test_cannot_pop_global(self):
        table = SymbolTable()
        with pytest.raises(RuntimeError):
            table.pop()

    def test_scope_iteration(self):
        scope = Scope()
        scope.declare(Symbol("a", "var"))
        scope.declare(Symbol("b", "var"))
        assert scope.local_names() == ["a", "b"]
        assert len(list(iter(scope))) == 2


class TestTypeHelpers:
    def test_type_from_name(self):
        assert type_from_name("int", False) is INT
        assert isinstance(type_from_name("Node", True), PointerType)
        arr = type_from_name("Node", True, 4)
        assert isinstance(arr, ArrayType) and arr.size == 4

    def test_compatibility_rules(self):
        node_ptr = PointerType(RecordType("Node"))
        other_ptr = PointerType(RecordType("Other"))
        assert compatible(INT, FLOAT)
        assert compatible(node_ptr, NULL_POINTER)
        assert compatible(NULL_POINTER, node_ptr)
        assert not compatible(node_ptr, other_ptr)
        assert not compatible(BOOL, node_ptr)

    def test_string_forms(self):
        assert str(PointerType(RecordType("Node"))) == "Node*"
        assert str(ArrayType(INT, 8)) == "int[8]"


class TestErrorFormatting:
    def test_positions_in_messages(self):
        assert "line 3" in str(LangError("boom", 3))
        assert "col 7" in str(ParseError("boom", 3, 7))
        assert str(LexError("bad")) == "bad"
        assert issubclass(TypeCheckError, LangError)
