"""Call graph, SCC, and bottom-up schedule tests."""

from repro.adds.library import merged_into
from repro.driver.callgraph import (
    bottom_up_waves,
    build_call_graph,
    condense,
    strongly_connected_components,
)

MUTUAL_SRC = """
function leaf(p) { return p->next; }
function even(p, n) { if n == 0 then return p; return odd(leaf(p), n - 1); }
function odd(p, n) { if n == 0 then return p; return even(leaf(p), n - 1); }
function driver(head) { return even(head, 4); }
function lonely(q) { return q; }
"""


def _graph():
    return build_call_graph(merged_into(MUTUAL_SRC, "ListNode"))


class TestCallGraph:
    def test_edges_exclude_builtins(self):
        program = merged_into(
            "function f(p) { print(1); return sqrt(4.0) + g(p); }\n"
            "function g(p) { return 1; }",
            "ListNode",
        )
        graph = build_call_graph(program)
        assert graph.callees("f") == {"g"}

    def test_transitive_callees(self):
        graph = _graph()
        assert graph.transitive_callees("driver") == {"even", "odd", "leaf"}
        assert graph.transitive_callees("lonely") == set()


class TestSccs:
    def test_mutual_recursion_is_one_component(self):
        sccs = strongly_connected_components(_graph())
        by_member = {name: tuple(scc) for scc in sccs for name in scc}
        assert by_member["even"] == by_member["odd"] == ("even", "odd")
        assert by_member["leaf"] == ("leaf",)

    def test_components_are_emitted_bottom_up(self):
        graph = _graph()
        sccs = strongly_connected_components(graph)
        position = {name: i for i, scc in enumerate(sccs) for name in scc}
        for caller, callees in graph.edges.items():
            for callee in callees:
                assert position[callee] <= position[caller], (caller, callee)

    def test_self_recursion(self):
        program = merged_into("function r(p) { return r(p->next); }", "ListNode")
        sccs = strongly_connected_components(build_call_graph(program))
        assert sccs == [["r"]]


class TestCondensation:
    def test_edges_mirror_each_other(self):
        cond = condense(_graph())
        for comp, callees in cond.callee_components.items():
            assert comp not in callees  # self-loops (recursion) are discarded
            for callee in callees:
                assert comp in cond.dependents[callee]
        for comp, deps in cond.dependents.items():
            for dep in deps:
                assert comp in cond.callee_components[dep]

    def test_initial_blockers_count_callee_components(self):
        cond = condense(_graph())
        blockers = cond.initial_blockers()
        by_name = {name: i for i, scc in enumerate(cond.sccs) for name in scc}
        assert blockers[by_name["leaf"]] == 0
        assert blockers[by_name["lonely"]] == 0
        # even/odd are one component; its only external callee is leaf
        assert blockers[by_name["even"]] == 1
        assert blockers[by_name["driver"]] == 1

    def test_blockers_are_returned_fresh_each_call(self):
        cond = condense(_graph())
        first = cond.initial_blockers()
        first[0] = 99
        assert cond.initial_blockers()[0] != 99

    def test_waves_match_the_legacy_entry_point(self):
        graph = _graph()
        assert condense(graph).waves() == bottom_up_waves(graph)


class TestWaves:
    def test_every_callee_lands_in_an_earlier_wave(self):
        graph = _graph()
        waves = bottom_up_waves(graph)
        wave_of = {
            name: w for w, wave in enumerate(waves) for scc in wave for name in scc
        }
        for caller, callees in graph.edges.items():
            for callee in callees:
                same_scc = wave_of[callee] == wave_of[caller] and any(
                    caller in scc and callee in scc
                    for scc in waves[wave_of[caller]]
                )
                assert wave_of[callee] < wave_of[caller] or same_scc

    def test_independent_functions_share_the_first_wave(self):
        graph = _graph()
        waves = bottom_up_waves(graph)
        first = {name for scc in waves[0] for name in scc}
        assert {"leaf", "lonely"} <= first

    def test_every_function_is_scheduled_exactly_once(self):
        graph = _graph()
        waves = bottom_up_waves(graph)
        names = [name for wave in waves for scc in wave for name in scc]
        assert sorted(names) == sorted(graph.functions)
