"""Cache integrity tests: checksummed entries, corruption detection/eviction,
the verify audit, and transient-I/O retry — including the injected-fault
convergence property (a run whose cache writes were corrupted re-analyzes and
converges on the next run instead of serving garbage).
"""

import json

import pytest

from repro.adds.library import standard_source
from repro.driver.batch import BatchDriver
from repro.driver.cache import (
    CorruptEntryError,
    ResultCache,
    decode_entry,
    encode_entry,
)
from repro.driver.corpus import CorpusItem
from repro.driver.faults import FAULTS_ENV_VAR

SRC = standard_source("ListNode") + """
function touch(p) { p->coef = 1; return p; }
"""


def _stage_entries(root):
    """All checksummed artifacts under the staged store (the top-level
    ledger is unchecksummed and not part of the audit surface)."""
    return sorted(p for p in root.rglob("*.json") if p.parent != root)


class TestChecksumCodec:
    def test_round_trip(self):
        payload = {"function": "f", "loops": [1, 2], "nested": {"a": None}}
        assert decode_entry(encode_entry(payload)) == payload

    def test_truncated_entry_is_detected(self):
        text = encode_entry({"function": "f"})
        with pytest.raises(CorruptEntryError):
            decode_entry(text[: len(text) // 2])

    def test_garbage_is_detected(self):
        with pytest.raises(CorruptEntryError, match="not valid JSON"):
            decode_entry("}}} total garbage")

    def test_legacy_unwrapped_entry_is_detected(self):
        # pre-checksum cache files were the bare payload: must read as corrupt
        # (and be evicted), never as a valid report
        with pytest.raises(CorruptEntryError, match="checksum wrapper"):
            decode_entry(json.dumps({"function": "f", "loops": []}))

    def test_bit_flip_is_detected(self):
        text = encode_entry({"function": "f", "iterations": 3})
        flipped = text.replace('"iterations": 3', '"iterations": 4')
        with pytest.raises(CorruptEntryError, match="checksum mismatch"):
            decode_entry(flipped)


class TestCorruptionRecovery:
    def _seed(self, tmp_path, **kwargs):
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False, **kwargs)
        items = [CorpusItem(name="one", source=SRC)]
        return driver, items, driver.analyze_corpus(items)

    def test_corrupt_entry_is_evicted_and_reanalyzed(self, tmp_path):
        _, items, seeded = self._seed(tmp_path)
        assert seeded.analyses_executed == 1
        for entry in _stage_entries(tmp_path):
            entry.write_text("garbage {{{")
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
        report = driver.analyze_corpus(items)
        assert report.cache_hits == 0
        assert report.analyses_executed == 1
        assert report.resilience.cache_evictions >= 1
        # the rewritten entries are whole again
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
        warm = driver.analyze_corpus(items)
        assert warm.cache_hits == 1
        assert warm.resilience.cache_evictions == 0

    def test_corrupt_and_clean_reports_are_identical(self, tmp_path):
        _, items, seeded = self._seed(tmp_path)
        clean = {p.name: p.functions for p in seeded.programs}
        for entry in _stage_entries(tmp_path):
            entry.write_text(entry.read_text()[:40])
        recovered = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False).analyze_corpus(items)
        assert {p.name: p.functions for p in recovered.programs} == clean

    def test_corrupt_report_heals_from_stage_artifacts(self, tmp_path):
        # losing only the assembled report does not cost a fixpoint: the
        # engine reassembles it from the intact analysis/loops/transforms
        # artifacts
        _, items, seeded = self._seed(tmp_path)
        clean = {p.name: p.functions for p in seeded.programs}
        for entry in (tmp_path / "report").glob("*.json"):
            entry.write_text("garbage {{{")
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
        report = driver.analyze_corpus(items)
        assert {p.name: p.functions for p in report.programs} == clean
        assert report.analyses_executed == 0
        assert report.cache_hits == 1
        assert report.resilience.cache_evictions == 1
        assert report.incremental["fixpoints_run"] == 0

    def test_injected_write_corruption_converges(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache:writes=99")
        _, items, seeded = self._seed(tmp_path)
        clean = {p.name: p.functions for p in seeded.programs}
        monkeypatch.delenv(FAULTS_ENV_VAR)
        # first uninjected run detects the torn writes, evicts, re-analyzes
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
        healed = driver.analyze_corpus(items)
        assert healed.resilience.cache_evictions >= 1
        assert healed.analyses_executed == 1
        assert {p.name: p.functions for p in healed.programs} == clean
        # second uninjected run is fully warm
        warm = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False).analyze_corpus(items)
        assert warm.cache_hits == 1
        assert warm.analyses_executed == 0


class TestVerify:
    def _seeded_cache(self, tmp_path):
        driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
        driver.analyze_corpus([CorpusItem(name="one", source=SRC)])
        return ResultCache(tmp_path)

    def test_verify_clean_cache(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        audit = cache.verify()
        assert audit["checked"] == audit["ok"] == len(_stage_entries(tmp_path))
        assert audit["checked"] >= 1
        assert audit["corrupt"] == []

    def test_verify_reports_without_evicting(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        entry = _stage_entries(tmp_path)[0]
        entry.write_text("nope")
        audit = cache.verify()
        assert len(audit["corrupt"]) == 1
        assert audit["evicted"] == 0
        assert entry.exists()

    def test_verify_evicts_on_request(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        entry = _stage_entries(tmp_path)[0]
        entry.write_text("nope")
        audit = cache.verify(evict=True)
        assert audit["evicted"] == 1
        assert cache.evictions == 1
        assert not entry.exists()

    def test_verify_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.verify() == {"checked": 0, "ok": 0, "corrupt": [], "evicted": 0}


class TestTransientIO:
    def test_io_error_is_retried_once_and_counted(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"function": "f"})
        monkeypatch.setenv(FAULTS_ENV_VAR, "io:rate=1.0,times=1")
        fresh = ResultCache(tmp_path)
        assert fresh.get("k1") == {"function": "f"}
        assert fresh.io_retries == 1
        assert fresh.hits == 1

    def test_persistent_io_error_degrades_to_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"function": "f"})
        monkeypatch.setenv(FAULTS_ENV_VAR, "io:rate=1.0,times=99")
        fresh = ResultCache(tmp_path)
        assert fresh.get("k1") is None  # a miss, not an exception
        assert fresh.misses == 1
