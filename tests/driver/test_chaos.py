"""The acceptance scenario from the robustness issue, end to end.

With fault injection enabled — ~10% worker-crash rate, one permanently hung
task, one corrupted cache write — a full paper-corpus run must *complete*,
report per-function statuses, exit with the completed-with-failures code,
and a subsequent uninjected warm run must converge to all-ok results
bit-identical to a clean baseline.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.driver.batch import BatchDriver
from repro.driver.cli import EXIT_PARTIAL
from repro.driver.corpus import paper_corpus
from repro.driver.faults import FAULTS_ENV_VAR

REPO_ROOT = Path(__file__).resolve().parents[2]

#: ~10% of functions crash their worker once (transient), the polynomial
#: corpus's ``scale`` hangs on every attempt, and the first cache write lands
#: corrupted on disk
CHAOS_SPEC = "crash:rate=0.1,seed=4;hang:function=scale,times=99,seconds=600;cache:writes=1"


def _snapshot(report):
    """Everything semantically observable about a batch run, JSON-canonical."""
    return json.dumps(
        {
            p.name: {"functions": p.functions, "simulation": p.simulation}
            for p in report.programs
        },
        sort_keys=True,
    )


class TestChaosConvergence:
    def test_faulted_run_completes_and_warm_run_converges(self, tmp_path, monkeypatch):
        items = paper_corpus()

        # clean baseline: separate cache, no faults
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        baseline = BatchDriver(
            jobs=2, cache_dir=tmp_path / "baseline-cache"
        ).analyze_corpus(items)
        assert not baseline.failed_functions()

        # the chaos run: crashes + a permanent hang + a torn cache write
        monkeypatch.setenv(FAULTS_ENV_VAR, CHAOS_SPEC)
        chaos_cache = tmp_path / "chaos-cache"
        chaos = BatchDriver(
            jobs=2,
            cache_dir=chaos_cache,
            task_timeout=1.5,
            max_retries=1,
            retry_backoff_s=0.01,
            quarantine_dir=tmp_path / "quarantine",
        ).analyze_corpus(items)

        # it completed, with explicit statuses instead of an abort
        assert chaos.resilience.worker_crashes > 0
        assert chaos.resilience.timeouts > 0
        statuses = {
            payload.get("status", "ok")
            for p in chaos.programs
            for payload in p.functions.values()
        }
        assert "ok" in statuses
        assert "timeout" in statuses  # the hung `scale`
        failed = chaos.failed_functions()
        assert ("paper/polynomial_scale", "scale", "timeout") in failed
        # every function is accounted for — failure stubs, not holes
        assert chaos.function_count() == baseline.function_count()

        # uninjected warm run over the chaos cache: the torn write is
        # evicted, the failed functions re-analyze, everything converges
        monkeypatch.delenv(FAULTS_ENV_VAR)
        warm = BatchDriver(jobs=2, cache_dir=chaos_cache).analyze_corpus(items)
        assert not warm.failed_functions()
        assert warm.resilience.cache_evictions == 1
        assert _snapshot(warm) == _snapshot(baseline)

        # and a second warm run does no work at all
        settled = BatchDriver(jobs=2, cache_dir=chaos_cache).analyze_corpus(items)
        assert settled.analyses_executed == 0
        assert settled.effective_jobs == 1  # pool never started
        assert _snapshot(settled) == _snapshot(baseline)

    def test_failure_stubs_are_never_cached(self, tmp_path, monkeypatch):
        items = [item for item in paper_corpus() if "polynomial" in item.name]
        monkeypatch.setenv(FAULTS_ENV_VAR, "hang:function=scale,times=99,seconds=600")
        cache_dir = tmp_path / "cache"
        chaos = BatchDriver(
            jobs=2,
            cache_dir=cache_dir,
            simulate=False,
            task_timeout=1.0,
            max_retries=0,
            retry_backoff_s=0.01,
        ).analyze_corpus(items)
        assert chaos.program(items[0].name).functions["scale"]["status"] == "timeout"
        monkeypatch.delenv(FAULTS_ENV_VAR)
        warm = BatchDriver(jobs=2, cache_dir=cache_dir, simulate=False).analyze_corpus(items)
        assert warm.program(items[0].name).functions["scale"].get("status") == "ok"
        assert warm.analyses_executed == 1  # only the previously failed one


class TestChaosExitCode:
    def test_cli_reports_partial_failure_exit(self, tmp_path):
        """The CLI-level half of the acceptance criterion: the chaos run
        exits with the completed-with-failures code and prints statuses."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "analyze",
                "--corpus", "paper",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--quarantine-dir", str(tmp_path / "quarantine"),
                "--task-timeout", "1.5",
                "--max-retries", "1",
                "--inject-faults", CHAOS_SPEC,
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=str(REPO_ROOT),
            timeout=300,
        )
        assert proc.returncode == EXIT_PARTIAL, (proc.stdout, proc.stderr)
        assert "scale: TIMEOUT" in proc.stdout
        assert "resilience:" in proc.stdout
        assert "failed: paper/polynomial_scale/scale (timeout)" in proc.stdout
