"""Tests for the persistent-worker executor: cost model, chunking, defaults,
the ready-queue gating discipline, the profiling layer, and crash surfacing.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.adds.library import merged_into, standard_source
from repro.driver.batch import BatchDriver, BatchReport
from repro.driver.corpus import CorpusItem
from repro.driver.executor import (
    CHUNK_COST_TARGET,
    CHUNK_MAX_FUNCTIONS,
    CRASH_ENV_VAR,
    MAX_DEFAULT_JOBS,
    default_jobs,
    estimate_cost,
    pack_chunks,
    preferred_start_method,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

CHAIN_SRC = standard_source("ListNode") + """
function tiny(p) { return p; }
function mid(p) { p->coef = 1; return tiny(p); }
function big(h)
{ var p; var q; var r;
  p = h;
  q = h;
  r = h;
  while p <> NULL
  { p->coef = p->coef + 1;
    q = q->next;
    r = q;
    p = p->next;
  }
  return mid(r);
}
"""


class TestDefaults:
    def test_default_jobs_is_cpu_count_capped(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 32)
        assert default_jobs() == MAX_DEFAULT_JOBS
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_jobs() == 3

    def test_default_jobs_never_oversubscribes_a_constrained_host(self, monkeypatch):
        # BENCH_driver.json came from a host_cpus=1 box where extra workers
        # were ~89% queue-wait overhead: the default must stay at 1 there
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_jobs() == 1
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert default_jobs() == 2

    def test_default_jobs_floor_is_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_jobs() == 1

    def test_preferred_start_method_is_valid(self):
        import multiprocessing

        assert preferred_start_method() in multiprocessing.get_all_start_methods()


class TestCostModel:
    def test_cost_ranks_big_functions_above_tiny_ones(self):
        program = merged_into(CHAIN_SRC, "ListNode")
        costs = {
            f.name: estimate_cost(program.function_named(f.name), program)
            for f in program.functions
        }
        assert costs["tiny"] < costs["mid"] < costs["big"]
        assert all(c >= 1 for c in costs.values())


class TestPackChunks:
    def _group(self, n_functions=1, cost=10):
        return ([f"f{i}" for i in range(n_functions)], cost)

    def test_cheap_groups_share_one_chunk(self):
        chunks = pack_chunks([self._group(cost=5) for _ in range(4)])
        assert chunks == [[0, 1, 2, 3]]

    def test_cost_target_splits_chunks(self):
        half = CHUNK_COST_TARGET // 2
        chunks = pack_chunks([self._group(cost=half) for _ in range(4)])
        assert chunks == [[0, 1], [2, 3]]

    def test_function_cap_splits_chunks(self):
        groups = [self._group(n_functions=1, cost=1) for _ in range(CHUNK_MAX_FUNCTIONS + 1)]
        chunks = pack_chunks(groups)
        assert len(chunks) == 2
        assert len(chunks[0]) == CHUNK_MAX_FUNCTIONS

    def test_expensive_group_ships_alone(self):
        groups = [
            self._group(cost=5),
            self._group(cost=CHUNK_COST_TARGET * 3),
            self._group(cost=5),
        ]
        chunks = pack_chunks(groups)
        assert [0, 1] not in chunks  # the cheap leader is flushed first
        assert [1] in chunks

    def test_groups_are_kept_whole_and_covered_exactly_once(self):
        groups = [self._group(n_functions=i % 3 + 1, cost=i * 7) for i in range(20)]
        chunks = pack_chunks(groups)
        flat = [g for chunk in chunks for g in chunk]
        assert sorted(flat) == list(range(20))

    def test_empty_input(self):
        assert pack_chunks([]) == []


class TestReadyQueueGating:
    """The scheduler invariant: a component never becomes ready before every
    callee component has landed — even when completions arrive in an
    adversarial (work-stealing) order."""

    def _plan(self):
        driver = BatchDriver(jobs=2, cache_dir=None, simulate=False)
        item = CorpusItem(name="chain", source=CHAIN_SRC)
        return driver._plan_item(0, item, BatchReport())

    def test_initial_ready_set_is_the_leaves(self):
        plan = self._plan()
        ready_names = {n for i in plan.ready for n in plan.cond.sccs[i]}
        assert ready_names == {"tiny"}  # big -> mid -> tiny is a pure chain

    def test_landing_in_lifo_order_never_frees_a_blocked_component(self):
        plan = self._plan()
        landed_names: set[str] = set()
        ready = list(plan.ready)
        plan.ready = []
        while ready:
            component = ready.pop()  # LIFO: adversarial vs submission order
            for name in plan.cond.sccs[component]:
                # every callee of the component must already have landed
                callees = plan.cond.callee_components[component]
                assert all(c in plan.landed for c in callees), name
                landed_names.add(name)
            plan.land(component)
            ready.extend(plan.ready)
            plan.ready = []
        assert landed_names == {"tiny", "mid", "big"}


class TestProfileLayer:
    def _items(self):
        return [CorpusItem(name="chain", source=CHAIN_SRC)]

    def test_parallel_profile_records_task_breakdown(self):
        driver = BatchDriver(jobs=2, cache_dir=None, simulate=False, profile=True)
        report = driver.analyze_corpus(self._items())
        profile = report.profile
        assert profile is not None
        totals = profile["totals"]
        for key in ("tasks", "functions", "queue_wait_s", "parse_s",
                    "analyze_s", "transfer_s", "overhead_fraction"):
            assert key in totals
        assert totals["functions"] == 3
        assert 0.0 <= totals["overhead_fraction"] <= 1.0
        tasks = profile["tasks"]
        assert tasks and all(t["worker_pid"] > 0 for t in tasks)
        assert {t["kind"] for t in tasks} == {"analyze"}

    def test_profile_detail_omitted_without_flag(self):
        driver = BatchDriver(jobs=2, cache_dir=None, simulate=False, profile=False)
        report = driver.analyze_corpus(self._items())
        assert report.profile is not None  # totals are always aggregated
        assert "tasks" not in report.profile

    def test_inline_run_profiles_as_one_task(self):
        driver = BatchDriver(jobs=1, cache_dir=None, simulate=False, profile=True)
        report = driver.analyze_corpus(self._items())
        (task,) = report.profile["tasks"]
        assert task["kind"] == "inline"
        assert report.profile["totals"]["functions"] == 3

    def test_report_stats_carry_start_method(self):
        driver = BatchDriver(jobs=2, cache_dir=None, simulate=False)
        stats = driver.analyze_corpus(self._items()).to_dict()["stats"]
        assert stats["start_method"] == preferred_start_method()
        inline = BatchDriver(jobs=1, cache_dir=None, simulate=False)
        assert inline.analyze_corpus(self._items()).to_dict()["stats"]["start_method"] is None

    def test_report_stats_carry_effective_jobs_and_host_cpus(self):
        driver = BatchDriver(jobs=2, cache_dir=None, simulate=False)
        stats = driver.analyze_corpus(self._items()).to_dict()["stats"]
        assert stats["jobs"] == 2
        assert stats["effective_jobs"] == 2
        assert stats["host_cpus"] == os.cpu_count()
        assert stats["resilience"]["retries"] == 0
        inline = BatchDriver(jobs=1, cache_dir=None, simulate=False)
        assert inline.analyze_corpus(self._items()).to_dict()["stats"]["effective_jobs"] == 1


class TestCrashSurfacing:
    def _run_cli(self, source_path, *extra, env_extra=None):
        env = {
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        }
        env.update(env_extra or {})
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "analyze", str(source_path),
                "--jobs", "2", "--no-cache", "--no-simulate", *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            timeout=300,
        )

    def test_worker_death_completes_with_quarantine(self, tmp_path):
        """A worker hard-dying mid-task (OOM kill, segfault) must surface as
        the completed-with-failures exit with the poison function quarantined
        and every healthy function analyzed — not a hang, not an abort."""
        source = tmp_path / "chain.ptr"
        source.write_text(CHAIN_SRC)
        proc = self._run_cli(source, env_extra={CRASH_ENV_VAR: "mid"})
        assert proc.returncode == 4, (proc.stdout, proc.stderr)
        assert "mid: QUARANTINED" in proc.stdout
        # the innocent chunk-mates still completed
        assert "tiny:" in proc.stdout and "big:" in proc.stdout

    def test_respawn_budget_exhaustion_is_unrecoverable_exit_3(self, tmp_path):
        """With a zero respawn budget the first worker death makes the pool
        unrecoverable: the hard exit 3 is reserved for exactly this."""
        source = tmp_path / "chain.ptr"
        source.write_text(CHAIN_SRC)
        proc = self._run_cli(
            source, "--max-respawns", "0", env_extra={CRASH_ENV_VAR: "mid"}
        )
        assert proc.returncode == 3, (proc.stdout, proc.stderr)
        assert "batch execution failed" in proc.stderr
