"""Tests for the ``python -m repro`` command line."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.driver.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestAnalyzeCommand:
    def test_paper_corpus_text_report(self, tmp_path, capsys):
        code = main(
            ["analyze", "--corpus", "paper", "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "paper/barnes_hut" in out
        assert "doall-after-traversal" in out
        assert "simulated on 4 PEs" in out

    def test_json_report_round_trips(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = main(
            [
                "analyze",
                "--corpus",
                "paper",
                "--no-cache",
                "--no-simulate",
                "--format",
                "json",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(output.read_text())
        assert printed == written
        assert written["stats"]["programs"] == 3
        assert written["stats"]["analyses_executed"] > 0

    def test_source_file_arguments(self, tmp_path, capsys):
        source = REPO_ROOT / "examples" / "corpus" / "list_sum.ptr"
        code = main(["analyze", str(source), "--no-cache"])
        assert code == 0
        assert "list_sum" in capsys.readouterr().out

    def test_no_inputs_is_a_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "no inputs" in capsys.readouterr().err

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.ptr")]) == 2

    def test_parse_error_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.ptr"
        bad.write_text("function { nope")
        assert main(["analyze", str(bad), "--no-cache"]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_jobs_defaults_to_capped_cpu_count(self):
        from repro.driver.cli import _build_parser
        from repro.driver.executor import default_jobs

        args = _build_parser().parse_args(["analyze", "--corpus", "paper"])
        assert args.jobs == default_jobs()
        assert 1 <= args.jobs <= 8

    def test_profile_flag_renders_task_breakdown(self, capsys):
        code = main(
            ["analyze", "--corpus", "paper", "--no-cache", "--no-simulate",
             "--jobs", "2", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile:" in out
        assert "queue-wait" in out
        assert "task " in out  # per-task detail lines

    def test_profile_totals_shown_without_detail_by_default(self, capsys):
        code = main(
            ["analyze", "--corpus", "paper", "--no-cache", "--no-simulate",
             "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile:" in out  # totals are always aggregated
        assert "task " not in out  # but no per-task lines without --profile

    def test_explicit_start_method_spawn(self, capsys):
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            import pytest

            pytest.skip("spawn unavailable")
        code = main(
            ["analyze", "--corpus", "paper", "--no-cache", "--no-simulate",
             "--jobs", "2", "--start-method", "spawn", "--format", "json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["stats"]["start_method"] == "spawn"


class TestFaultFlags:
    def test_bad_inject_faults_spec_is_a_usage_error(self, capsys):
        code = main(
            ["analyze", "--corpus", "paper", "--no-cache",
             "--inject-faults", "explode:rate=1"]
        )
        assert code == 2
        assert "bad --inject-faults spec" in capsys.readouterr().err

    def test_inject_faults_sets_env_for_workers(self, monkeypatch, capsys):
        import os

        from repro.driver.faults import FAULTS_ENV_VAR

        # setenv (not delenv) so monkeypatch restores the variable after the
        # CLI mutates os.environ in-process — otherwise the spec leaks into
        # every later test in the session
        monkeypatch.setenv(FAULTS_ENV_VAR, "")
        code = main(
            ["analyze", "--corpus", "paper", "--no-cache", "--no-simulate",
             "--jobs", "2", "--inject-faults", "crash:rate=1.0,times=1",
             "--format", "json"]
        )
        assert os.environ[FAULTS_ENV_VAR] == "crash:rate=1.0,times=1"
        report = json.loads(capsys.readouterr().out)
        # transient crashes: everything retried to success, exit stays 0
        assert code == 0
        assert report["stats"]["resilience"]["worker_crashes"] > 0
        assert report["stats"]["resilience"]["retries"] > 0

    def test_task_timeout_zero_disables_watchdog(self):
        from repro.driver.cli import _build_parser

        args = _build_parser().parse_args(
            ["analyze", "--corpus", "paper", "--task-timeout", "0"]
        )
        assert args.task_timeout == 0  # _cmd_analyze maps <=0 to None


class TestQuarantineCommand:
    def _write_record(self, tmp_path):
        from repro.adds.library import standard_source
        from repro.driver.faults import write_quarantine_record

        source = standard_source("ListNode") + "function f(p) { return p; }\n"
        return write_quarantine_record(
            tmp_path, "prog", source, ["f"], 3, 13, "opts"
        )

    def test_list_empty_directory(self, tmp_path, capsys):
        assert main(["quarantine", "--dir", str(tmp_path)]) == 0
        assert "no quarantine records" in capsys.readouterr().out

    def test_list_records(self, tmp_path, capsys):
        self._write_record(tmp_path)
        assert main(["quarantine", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "prog" in out and "killed 3 worker(s)" in out

    def test_replay_healthy_record_exits_zero(self, tmp_path, capsys):
        path = self._write_record(tmp_path)
        assert main(["quarantine", "--replay", str(path)]) == 0
        assert "f: ok" in capsys.readouterr().out

    def test_replay_missing_records_is_a_usage_error(self, tmp_path, capsys):
        assert main(["quarantine", "--replay", str(tmp_path)]) == 2


class TestOtherCommands:
    def test_corpus_listing(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "paper/barnes_hut" in out
        assert "stress/" in out
        assert "examples/list_sum" in out

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(["analyze", "--corpus", "paper", "--no-simulate",
              "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        assert "cached result(s)" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(cache_dir), "--clear"]) == 0
        assert not list(cache_dir.glob("*.json"))

    def test_cache_verify_detects_then_evicts(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(["analyze", "--corpus", "paper", "--no-simulate",
              "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        assert "0 corrupt" in capsys.readouterr().out
        victim = sorted(cache_dir.rglob("*.json"))
        victim = [p for p in victim if p.parent != cache_dir][0]
        victim.write_text("garbage")
        # detection without --evict leaves the file and exits 1
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        assert "corrupt:" in capsys.readouterr().out
        assert victim.exists()
        # --evict removes it and exits 0
        assert main(
            ["cache", "verify", "--cache-dir", str(cache_dir), "--evict"]
        ) == 0
        assert not victim.exists()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        """The acceptance command: a real subprocess through ``-m repro``."""
        env_path = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "analyze",
                "--corpus",
                "paper",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
            cwd=str(REPO_ROOT),
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "from cache" in proc.stdout
