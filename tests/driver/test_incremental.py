"""The staged engine's incremental guarantees: summary-digest firewalling
(early cutoff), soundness of the firewall (summary- and return-type-changing
edits must invalidate callers), line-relative artifact sharing across
offsets, and the per-worker LRU bound.

The acceptance property throughout: an incremental run's report is
**bit-identical** to the same analysis from scratch — incrementality may
never change an answer, only skip work.
"""

from collections import OrderedDict

from repro.driver.batch import BatchDriver
from repro.driver.corpus import CorpusItem
from repro.driver.pipeline import _CACHE_LIMIT, _bounded

TYPES = """
type ListNode [X]
{ int coef;
  int exp;
  ListNode *next is uniquely forward along X;
};
"""

BASE = TYPES + """
function leaf(p)
{ var s;
  s = 0;
  while p <> NULL
  { s = s + p->coef;
    p = p->next;
  }
  return s;
}

function caller(h)
{ var t;
  t = 0;
  while h <> NULL
  { t = t + leaf(h);
    h = h->next;
  }
  return t;
}

function unrelated(n)
{ var i;
  i = n + 1;
  return i;
}
"""


def _run(source, tmp_path, name="prog"):
    driver = BatchDriver(jobs=1, cache_dir=tmp_path, simulate=False)
    report = driver.analyze_corpus([CorpusItem(name=name, source=source)])
    return report


def _scratch(source, name="prog"):
    """The same analysis with no cache at all — the reference answer."""
    driver = BatchDriver(jobs=1, cache_dir=None, simulate=False)
    report = driver.analyze_corpus([CorpusItem(name=name, source=source)])
    return {p.name: p.functions for p in report.programs}


class TestEarlyCutoff:
    def test_summary_preserving_edit_firewalls_callers(self, tmp_path):
        cold = _run(BASE, tmp_path)
        assert cold.analyses_executed == 3
        assert cold.incremental["dirty"] == 3

        # a body edit that leaves leaf's effect summary, preservation
        # verdict, and return type untouched
        edited = BASE.replace("function leaf(p)\n{ var s;",
                              "function leaf(p)\n{ var s; var pad;")
        assert edited != BASE
        warm = _run(edited, tmp_path)
        inc = warm.incremental

        # exactly ONE fixpoint reruns: the edited leaf itself
        assert warm.analyses_executed == 1
        assert inc["recomputed"] == 1
        assert inc["dirty"] == 1
        assert inc["fixpoints_run"] == 1
        # caller is served from cache despite its callee's body changing —
        # that is the summary-digest firewall
        assert inc["reused"] == 2
        assert inc["firewalled"] == 1
        assert inc["summaries_recomputed"] == 1  # leaf's SCC only

        # and the firewalled report is bit-identical to a from-scratch run
        assert {p.name: p.functions for p in warm.programs} == _scratch(edited)

    def test_summary_changing_edit_invalidates_callers(self, tmp_path):
        _run(BASE, tmp_path)
        # leaf now writes a data field: its effect summary (hence artifact
        # digest) changes, so caller must re-analyze
        edited = BASE.replace("s = s + p->coef;",
                              "p->exp = 0;\n    s = s + p->coef;")
        warm = _run(edited, tmp_path)
        inc = warm.incremental

        assert inc["dirty"] == 1  # only leaf's body changed...
        assert inc["recomputed"] == 2  # ...but leaf AND caller rerun
        assert inc["firewalled"] == 0
        assert inc["reused"] == 1  # unrelated
        assert {p.name: p.functions for p in warm.programs} == _scratch(edited)

    def test_return_type_change_invalidates_callers(self, tmp_path):
        # identical *effect* summaries (allocate + return fresh) that differ
        # only in the record type returned: the caller's environment is
        # inferred from the callee's return type, so firewalling on effects
        # alone would serve a stale caller verdict
        two_types = TYPES + """
type TreeNode [Y]
{ int coef;
  int exp;
  TreeNode *next is uniquely forward along Y;
};

function mk()
{ var p;
  p = new ListNode;
  return p;
}

function use()
{ var q;
  q = mk();
  q->coef = 1;
  return q;
}
"""
        _run(two_types, tmp_path, name="rt")
        edited = two_types.replace("p = new ListNode;", "p = new TreeNode;")
        warm = _run(edited, tmp_path, name="rt")
        inc = warm.incremental

        assert inc["dirty"] == 1
        assert inc["recomputed"] == 2  # mk AND use — no stale firewall
        assert inc["firewalled"] == 0
        assert {p.name: p.functions for p in warm.programs} == _scratch(
            edited, name="rt"
        )


class TestLineRelativeSharing:
    def test_shifted_program_reuses_every_artifact(self, tmp_path):
        cold = _run(BASE, tmp_path, name="orig")
        # the same bytes four lines further down, as a *different* program
        shifted = "\n\n\n\n" + BASE
        warm = _run(shifted, tmp_path, name="shifted")

        # nothing re-runs: every stage key is offset-independent
        assert warm.analyses_executed == 0
        assert warm.incremental["recomputed"] == 0
        assert warm.incremental["fixpoints_run"] == 0
        assert warm.cache_hits == 3

        # but the probed reports carry correct *absolute* diagnostics
        assert {p.name: p.functions for p in warm.programs} == _scratch(
            shifted, name="shifted"
        )
        orig_fns = {p.name: p.functions for p in cold.programs}["orig"]
        warm_fns = {p.name: p.functions for p in warm.programs}["shifted"]
        for fn in ("leaf", "caller"):
            (orig_loop,) = orig_fns[fn]["loops"]
            (shift_loop,) = warm_fns[fn]["loops"]
            assert shift_loop["line"] == orig_loop["line"] + 4

    def test_edit_in_one_function_leaves_shifted_neighbors_cached(self, tmp_path):
        """Inserting a line in ``leaf`` shifts every function below it; the
        neighbors' artifacts must still hit (this was PR 7's cache-miss bug,
        worked around then by keying on the offset)."""
        _run(BASE, tmp_path)
        edited = BASE.replace("function leaf(p)\n{ var s;",
                              "function leaf(p)\n{ var s;\n  var pad;")
        assert edited.count("\n") == BASE.count("\n") + 1
        warm = _run(edited, tmp_path)
        assert warm.incremental["dirty"] == 1
        assert warm.incremental["reused"] == 2
        assert {p.name: p.functions for p in warm.programs} == _scratch(edited)


class TestBoundedLRU:
    def test_hit_refreshes_and_overflow_evicts_only_the_oldest(self):
        cache = OrderedDict()
        for i in range(_CACHE_LIMIT):
            _bounded(cache, i, lambda i=i: f"v{i}")
        # a hit must not recompute, and must refresh recency
        assert _bounded(cache, 0, lambda: "recomputed") == "v0"
        # one insert past the limit evicts exactly one entry — the coldest
        # (key 1), not the just-refreshed key 0 and not the whole cache
        _bounded(cache, "fresh", lambda: "vf")
        assert len(cache) == _CACHE_LIMIT
        assert 0 in cache
        assert 1 not in cache
        assert "fresh" in cache

    def test_steady_state_keeps_working_set_warm(self):
        # the pre-fix behavior cleared *all* entries on overflow, so a scan
        # over limit+1 keys thrashed every one of them; real LRU keeps the
        # most recent limit keys resident
        cache = OrderedDict()
        for i in range(_CACHE_LIMIT + 10):
            _bounded(cache, i, lambda i=i: i)
        assert len(cache) == _CACHE_LIMIT
        assert set(cache) == set(range(10, _CACHE_LIMIT + 10))
