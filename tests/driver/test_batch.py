"""Batch driver acceptance tests: caching, parallel fan-out, fidelity.

The headline guarantees:

* the driver's per-function reports match the single-function API
  **bit-for-bit** on the paper examples,
* a warm second run over the same corpus executes **zero** analyses
  (everything is served from the on-disk cache),
* a parallel run produces exactly the serial run's reports.
"""

import pytest

from repro.driver.batch import BatchDriver
from repro.driver.cache import function_digests
from repro.driver.callgraph import build_call_graph
from repro.driver.corpus import CorpusItem, corpus_named, paper_corpus
from repro.driver.pipeline import PipelineOptions, simulate_program
from repro.lang.parser import parse_program
from repro.pathmatrix import PathMatrixAnalysis


@pytest.fixture(scope="module")
def paper_items():
    return paper_corpus()


def _function_payloads(report):
    """Only the per-function dicts, for whole-run equality comparisons."""
    return {p.name: p.functions for p in report.programs}


class TestFidelity:
    def test_driver_matches_single_function_api_bit_for_bit(self, paper_items):
        driver = BatchDriver(jobs=1, cache_dir=None, simulate=False)
        batch = driver.analyze_corpus(paper_items)
        for item in paper_items:
            program = parse_program(item.source)
            analysis = PathMatrixAnalysis(program)
            functions = batch.program(item.name).functions
            assert set(functions) == {f.name for f in program.functions}
            for func in program.functions:
                direct = analysis.analyze_function(func.name)
                reported = functions[func.name]["analysis"]
                assert reported["error"] is None
                assert reported["exit_matrix"] == direct.final_matrix().to_table()
                assert reported["iterations"] == direct.iterations
                assert reported["blocks_transferred"] == direct.blocks_transferred
                assert reported["violations"] == [str(v) for v in direct.violations()]

    def test_bhl_loops_classified_parallelizable(self, paper_items):
        driver = BatchDriver(jobs=1, cache_dir=None, simulate=False)
        batch = driver.analyze_corpus(paper_items)
        functions = batch.program("paper/barnes_hut").functions
        for name in ("bh_force_pass", "bh_update_pass"):
            (loop,) = functions[name]["loops"]
            assert loop["classification"] == "doall-after-traversal"
            assert loop["transforms"]["strip_mine"]["applied"]


class TestCaching:
    def test_warm_run_executes_no_analyses(self, tmp_path, paper_items):
        cold = BatchDriver(jobs=1, cache_dir=tmp_path).analyze_corpus(paper_items)
        assert cold.analyses_executed > 0

        warm_driver = BatchDriver(jobs=1, cache_dir=tmp_path)
        warm = warm_driver.analyze_corpus(paper_items)
        # the acceptance criterion: strictly fewer analyses on the warm run —
        # in fact none at all, and every simulation is served from cache too
        assert warm.analyses_executed < cold.analyses_executed
        assert warm.analyses_executed == 0
        assert warm.cache_hits == cold.analyses_executed + cold.cache_hits
        assert warm.simulation_cache_hits == len(paper_items)
        assert _function_payloads(warm) == _function_payloads(cold)
        for item in paper_items:
            assert warm.program(item.name).simulation == cold.program(item.name).simulation

    def _digests(self, src):
        from repro.adds.library import standard_source

        program = parse_program(standard_source("ListNode") + src)
        return function_digests(
            program,
            build_call_graph(program),
            PipelineOptions().key(),
        )

    BASE = """
    function leaf(p) { return p->next; }
    function caller(p) { return leaf(p); }
    function unrelated(q) { q->coef = 1; return q; }
    """

    def test_summary_changing_edit_invalidates_the_caller(self):
        edited = self.BASE.replace(
            "function leaf(p) { return p->next; }",
            "function leaf(p) { p->exp = 0; return p->next; }",
        )
        before, after = self._digests(self.BASE), self._digests(edited)
        assert before["leaf"] != after["leaf"]
        assert before["caller"] != after["caller"]  # callee body changed
        assert before["unrelated"] == after["unrelated"]

    def test_summary_preserving_edit_still_invalidates_callers(self):
        """The *legacy* (parallel-path) keys are body-transitive: editing a
        callee invalidates its callers even when the effect summary is
        unchanged, because these keys carry no summary digest to firewall
        on.  (The staged inline engine does better — see
        tests/driver/test_incremental.py.)  Unrelated functions stay
        cached."""
        edited = self.BASE.replace("return p->next;", "return p->next->next;")
        before, after = self._digests(self.BASE), self._digests(edited)
        assert before["leaf"] != after["leaf"]  # its own AST changed
        assert before["caller"] != after["caller"]  # callee body changed
        assert before["unrelated"] == after["unrelated"]

    def test_identical_text_at_different_lines_shares_keys(self):
        """Cached payloads are stored line-relative (absolute lines are
        restored at probe time), so the same helper pasted into two files at
        different offsets shares one cache entry per function."""
        shifted = "\n\n\n\n" + self.BASE
        before, after = self._digests(self.BASE), self._digests(shifted)
        assert before == after

    def test_options_partition_the_cache(self, tmp_path, paper_items):
        item = [paper_items[0]]
        a = BatchDriver(jobs=1, cache_dir=tmp_path).analyze_corpus(item)
        b = BatchDriver(
            jobs=1,
            cache_dir=tmp_path,
            options=PipelineOptions(use_adds=False),
        ).analyze_corpus(item)
        # different options must not reuse each other's entries
        assert a.analyses_executed > 0 and b.analyses_executed > 0
        assert b.cache_hits == 0

    def test_disabled_cache_always_recomputes(self, paper_items):
        driver = BatchDriver(jobs=1, cache_dir=None)
        first = driver.analyze_corpus([paper_items[0]])
        second = driver.analyze_corpus([paper_items[0]])
        assert first.analyses_executed == second.analyses_executed > 0


class TestParallelExecution:
    def test_parallel_run_matches_serial(self, paper_items):
        serial = BatchDriver(jobs=1, cache_dir=None, simulate=False)
        parallel = BatchDriver(jobs=2, cache_dir=None, simulate=False)
        assert _function_payloads(parallel.analyze_corpus(paper_items)) == (
            _function_payloads(serial.analyze_corpus(paper_items))
        )

    @pytest.fixture(scope="class")
    def builtin_serial(self):
        items = corpus_named("builtin")
        return items, BatchDriver(jobs=1, cache_dir=None).analyze_corpus(items)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_full_corpus_bit_identical_under_both_start_methods(
        self, builtin_serial, start_method
    ):
        """The headline fidelity guarantee: over the whole built-in corpus a
        pooled run reproduces the serial reports bit for bit — including the
        simulation stage — whether workers inherit state (fork) or rebuild
        it from the shipped sources (spawn)."""
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        items, serial = builtin_serial
        parallel = BatchDriver(
            jobs=4, cache_dir=None, start_method=start_method
        ).analyze_corpus(items)
        assert not any(p.error for p in parallel.programs)
        assert parallel.function_count() >= 30
        assert _function_payloads(parallel) == _function_payloads(serial)
        for item in items:
            assert parallel.program(item.name).simulation == (
                serial.program(item.name).simulation
            ), item.name

    def test_work_stealing_still_lands_components_bottom_up(self, tmp_path):
        """With one slow program and one fast one sharing the pool, chunks
        complete in an order unrelated to submission; the per-function
        reports must still equal a serial run (callees settled first)."""
        items = [
            i
            for i in corpus_named("builtin")
            if i.name in ("stress/callweb_48", "examples/list_sum")
        ]
        assert len(items) == 2
        serial = BatchDriver(jobs=1, cache_dir=None, simulate=False).analyze_corpus(items)
        parallel = BatchDriver(jobs=3, cache_dir=None, simulate=False).analyze_corpus(items)
        assert _function_payloads(parallel) == _function_payloads(serial)


class TestSimulationStage:
    def test_polynomial_program_simulates_with_speedup(self, paper_items):
        item = next(i for i in paper_items if i.name == "paper/polynomial_scale")
        sim = simulate_program(item.source, PipelineOptions())
        assert sim["status"] == "simulated"
        assert sim["heaps_match"]
        assert sim["speedup"] > 1.0
        assert "scale" in sim["transformed_functions"]

    def test_program_without_entry_reports_no_entry(self, paper_items):
        item = next(i for i in paper_items if i.name == "paper/subtree_move")
        sim = simulate_program(item.source, PipelineOptions())
        assert sim["status"] == "no-entry"

    def test_program_without_parallel_loops(self):
        from repro.adds.library import standard_source

        source = standard_source("ListNode") + (
            "function main() { var p; p = new ListNode; p->coef = 1; return p; }"
        )
        sim = simulate_program(source, PipelineOptions())
        assert sim["status"] == "no-parallel-loops"


class TestRobustness:
    def test_parse_error_is_reported_not_raised(self, tmp_path):
        items = [CorpusItem(name="bad", source="function { nope")]
        batch = BatchDriver(jobs=1, cache_dir=tmp_path).analyze_corpus(items)
        report = batch.program("bad")
        assert report.error is not None and "parse" in report.error

    def test_bad_program_does_not_abort_the_batch(self, paper_items):
        items = [CorpusItem(name="bad", source="type T {")] + [paper_items[0]]
        batch = BatchDriver(jobs=1, cache_dir=None).analyze_corpus(items)
        assert batch.program("bad").error is not None
        assert batch.program(paper_items[0].name).functions
