"""Fault-injection harness + fault-tolerance policy tests.

Covers the spec grammar, the determinism of injection decisions, and — via
real multi-process batch runs with injected faults — every rung of the
driver's escalation ladder: retry with backoff, chunk bisection, sacrificial
verification, quarantine (with replayable records), and deadline timeouts.
The convergence tests pin the acceptance property: a run that survives
transient faults is bit-identical to a run that never saw them.
"""

import json
import os

import pytest

from repro.adds.library import standard_source
from repro.driver.batch import BatchDriver
from repro.driver.corpus import CorpusItem, paper_corpus
from repro.driver.executor import preferred_start_method
from repro.driver.faults import (
    FAULT_CRASH_EXIT,
    FAULTS_ENV_VAR,
    NO_FAULTS,
    FaultSpecError,
    load_quarantine_record,
    parse_fault_spec,
    replay_quarantine_record,
)

CHAIN_SRC = standard_source("ListNode") + """
function tiny(p) { return p; }
function mid(p) { p->coef = 1; return tiny(p); }
function big(h)
{ var p;
  p = h;
  while p <> NULL
  { p->coef = p->coef + 1;
    p = p->next;
  }
  return mid(h);
}
"""


class TestSpecGrammar:
    def test_empty_spec_is_no_faults(self):
        assert parse_fault_spec("") == NO_FAULTS
        assert not NO_FAULTS.enabled

    def test_full_clause_round_trip(self):
        plan = parse_fault_spec(
            "crash:rate=0.25,seed=7,times=2;hang:function=scale,seconds=9;"
            "slow:seconds=0.5;cache:rate=0.1,writes=3;io:rate=1.0,times=2"
        )
        assert plan.crash_rate == 0.25
        assert plan.crash_seed == 7
        assert plan.crash_times == 2
        assert plan.hang_function == "scale"
        assert plan.hang_seconds == 9.0
        assert plan.slow_seconds == 0.5
        assert plan.cache_corrupt_rate == 0.1
        assert plan.cache_corrupt_writes == 3
        assert plan.io_error_rate == 1.0
        assert plan.io_error_times == 2
        assert plan.enabled

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:rate=1",  # unknown kind
            "crash:",  # no parameters
            "crash:rate",  # no value
            "crash:seed=x",  # unconvertible
            "crash:rate=1.5",  # out of range
            "hang:rate=0.5",  # wrong key for kind
        ],
    )
    def test_nonsense_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = parse_fault_spec("  crash: rate = 0.5 ; ; slow: seconds = 1 ")
        assert plan.crash_rate == 0.5
        assert plan.slow_seconds == 1.0


class TestDeterminism:
    def test_decisions_are_pure_functions_of_spec_and_point(self):
        a = parse_fault_spec("crash:rate=0.5,seed=3")
        b = parse_fault_spec("crash:rate=0.5,seed=3")
        for name in ("alpha", "beta", "gamma", "delta"):
            assert a.should_crash(name, 0) == b.should_crash(name, 0)

    def test_rate_roughly_matches_over_many_points(self):
        plan = parse_fault_spec("crash:rate=0.3,seed=11")
        hits = sum(plan.should_crash(f"fn{i}", 0) for i in range(2000))
        assert 450 <= hits <= 750  # ~600 expected

    def test_times_makes_faults_transient(self):
        plan = parse_fault_spec("crash:rate=1.0,times=2")
        assert plan.should_crash("f", 0)
        assert plan.should_crash("f", 1)
        assert not plan.should_crash("f", 2)

    def test_named_function_overrides_rate(self):
        plan = parse_fault_spec("crash:function=mid")
        assert plan.should_crash("mid", 0)
        assert not plan.should_crash("tiny", 0)

    def test_seed_changes_the_victim_set(self):
        a = parse_fault_spec("crash:rate=0.5,seed=1")
        b = parse_fault_spec("crash:rate=0.5,seed=2")
        names = [f"fn{i}" for i in range(200)]
        assert [a.should_crash(n, 0) for n in names] != [
            b.should_crash(n, 0) for n in names
        ]


def _run_batch(items, faults, monkeypatch, **kwargs):
    if faults is None:
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(FAULTS_ENV_VAR, faults)
    driver = BatchDriver(cache_dir=None, **kwargs)
    return driver.analyze_corpus(items)


def _function_dicts(report):
    return {p.name: p.functions for p in report.programs}


class TestCrashRecovery:
    """Injected worker crashes exercised through real multi-process runs."""

    def _items(self):
        return [CorpusItem(name="chain", source=CHAIN_SRC)]

    @pytest.mark.parametrize(
        "start_method",
        sorted({preferred_start_method(), "spawn"}),
    )
    def test_transient_crash_converges_bit_identical(self, monkeypatch, start_method):
        """Satellite: a batch that succeeds after injected transient crashes
        must be bit-identical to an uninjected run — under fork AND spawn
        (the spawn path re-imports everything in the worker, so its crash
        and retry machinery is genuinely distinct)."""
        clean = _run_batch(
            self._items(), None, monkeypatch,
            jobs=2, simulate=False, start_method=start_method,
        )
        faulted = _run_batch(
            self._items(), "crash:rate=1.0,times=1", monkeypatch,
            jobs=2, simulate=False, start_method=start_method,
            retry_backoff_s=0.01,
        )
        assert faulted.resilience.worker_crashes > 0
        assert faulted.resilience.retries > 0
        assert not faulted.failed_functions()
        clean_dict = _function_dicts(clean)
        faulted_dict = _function_dicts(faulted)
        assert clean_dict == faulted_dict
        # bit-identical, not just structurally equal
        assert json.dumps(clean_dict, sort_keys=True) == json.dumps(
            faulted_dict, sort_keys=True
        )

    def test_poison_function_is_quarantined_with_record(self, monkeypatch, tmp_path):
        qdir = tmp_path / "quarantine"
        report = _run_batch(
            self._items(), "crash:function=mid,times=99", monkeypatch,
            jobs=2, simulate=False, max_retries=1, retry_backoff_s=0.01,
            quarantine_dir=qdir,
        )
        payload = report.program("chain").functions["mid"]
        assert payload["status"] == "quarantined"
        assert payload["summary"] is None
        assert "poison" in payload["fault"]
        assert report.resilience.quarantined == 1
        assert report.resilience.sacrificial_runs == 1
        # healthy functions completed despite sharing chunks with the poison
        assert report.program("chain").functions["tiny"].get("status") == "ok"
        assert report.program("chain").functions["big"].get("status") == "ok"
        # the record replays: without the fault env the analysis is healthy
        (record_path,) = sorted(qdir.glob("*.json"))
        record = load_quarantine_record(record_path)
        assert record["functions"] == ["mid"]
        assert record["worker_exitcode"] == FAULT_CRASH_EXIT
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert replay_quarantine_record(record_path) == {"mid": "ok"}

    def test_no_quarantine_marks_crashed(self, monkeypatch):
        report = _run_batch(
            self._items(), "crash:function=mid,times=99", monkeypatch,
            jobs=2, simulate=False, max_retries=1, retry_backoff_s=0.01,
            quarantine=False,
        )
        assert report.program("chain").functions["mid"]["status"] == "crashed"
        assert report.resilience.sacrificial_runs == 0
        assert report.resilience.quarantined == 0

    def test_sacrificial_run_rescues_a_flaky_function(self, monkeypatch):
        """A function whose crashes stop exactly when the retry budget runs
        out completes in the sacrificial subprocess — no quarantine."""
        report = _run_batch(
            self._items(), "crash:function=mid,times=2", monkeypatch,
            jobs=2, simulate=False, max_retries=1, retry_backoff_s=0.01,
        )
        assert report.program("chain").functions["mid"].get("status") == "ok"
        assert report.resilience.sacrificial_runs == 1
        assert report.resilience.quarantined == 0
        assert not report.failed_functions()


class TestDeadlines:
    def _items(self):
        return [CorpusItem(name="chain", source=CHAIN_SRC)]

    def test_hung_task_is_killed_and_marked_timeout(self, monkeypatch):
        report = _run_batch(
            self._items(), "hang:function=mid,times=99,seconds=600", monkeypatch,
            jobs=2, simulate=False, task_timeout=1.5, max_retries=1,
            retry_backoff_s=0.01,
        )
        payload = report.program("chain").functions["mid"]
        assert payload["status"] == "timeout"
        assert report.resilience.timeouts >= 2  # initial attempt + retry
        # chunk-mates of the hung function were not lost
        assert report.program("chain").functions["tiny"].get("status") == "ok"
        assert report.program("chain").functions["big"].get("status") == "ok"

    def test_transient_hang_is_survived_by_bisection_retry(self, monkeypatch):
        """A hang that fires only once costs a timeout event, then the
        re-dispatched task completes: no failure statuses."""
        report = _run_batch(
            self._items(), "hang:function=mid,times=1,seconds=600", monkeypatch,
            jobs=2, simulate=False, task_timeout=1.5, retry_backoff_s=0.01,
        )
        assert not report.failed_functions()
        assert report.resilience.timeouts >= 1


class TestSimulationFaults:
    def _items(self):
        # polynomial_scale has a main entry, so it actually simulates
        return [item for item in paper_corpus() if "polynomial" in item.name]

    def test_transient_simulate_crash_retries_to_success(self, monkeypatch):
        report = _run_batch(
            self._items(), "crash:function=@simulate,times=1", monkeypatch,
            jobs=2, retry_backoff_s=0.01,
        )
        sim = report.programs[0].simulation
        assert sim["status"] == "simulated"
        assert report.resilience.worker_crashes >= 1

    def test_permanent_simulate_crash_reports_crashed_status(self, monkeypatch):
        report = _run_batch(
            self._items(), "crash:function=@simulate,times=99", monkeypatch,
            jobs=2, max_retries=1, retry_backoff_s=0.01,
        )
        sim = report.programs[0].simulation
        assert sim["status"] == "crashed"
        assert "worker died" in sim["error"]
        # per-function analyses were unaffected
        assert not report.failed_functions()
