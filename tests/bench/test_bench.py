"""Tests for the experiment harness (tables, figures glue, ablations)."""

import pytest

from repro.bench import (
    PAPER_SPEEDUPS,
    PAPER_TIMES,
    compare_with_paper,
    format_speedup_table,
    format_times_table,
    loss_attribution,
    run_speedup_experiment,
    scheduling_ablation,
    subtree_parallelism_ablation,
    sync_cost_ablation,
)
from repro.bench.expected import paper_qualitative_claims, paper_speedup, paper_time
from repro.bench.tables import qualitative_checks


@pytest.fixture(scope="module")
def small_table():
    """A reduced version of the headline experiment (fast enough for CI)."""
    return run_speedup_experiment(ns=(64, 192), pe_counts=(4, 7), steps=1)


class TestExpectedValues:
    def test_paper_tables_are_consistent(self):
        for pes in (4, 7):
            for n in (128, 512, 1024):
                implied = PAPER_TIMES[1][n] / PAPER_TIMES[pes][n]
                assert implied == pytest.approx(PAPER_SPEEDUPS[pes][n], abs=0.06)

    def test_accessors(self):
        assert paper_time(1, 128) == 188.0
        assert paper_speedup(7, 1024) == 4.3
        assert len(paper_qualitative_claims()) >= 5


class TestSpeedupExperiment:
    def test_table_has_every_cell(self, small_table):
        assert set(small_table.cells) == {
            (n, p) for n in (64, 192) for p in (1, 4, 7)
        }

    def test_shape_claims_hold_on_small_workload(self, small_table):
        for n in (64, 192):
            assert small_table.speedup(n, 4) > 1.5
            assert small_table.speedup(n, 7) > small_table.speedup(n, 4)
            assert small_table.speedup(n, 7) < 7
        assert small_table.speedup(192, 4) >= small_table.speedup(64, 4) - 0.05

    def test_formatting(self, small_table):
        times = format_times_table(small_table)
        speedups = format_speedup_table(small_table)
        comparison = compare_with_paper(small_table)
        assert "seq" in times and "par(7)" in times
        assert "SPEEDUP" in speedups
        assert "shape checks" in comparison

    def test_calibration_scale_positive(self, small_table):
        assert small_table.calibration_scale(reference_n=64) > 0

    def test_qualitative_checks_structure(self, small_table):
        checks = qualitative_checks(small_table)
        assert all(isinstance(claim, str) and isinstance(ok, bool) for claim, ok in checks)
        core = [ok for claim, ok in checks if "beats sequential" in claim]
        assert core == [True]


class TestAblations:
    def test_loss_attribution_every_variant_helps(self):
        result = loss_attribution(n=192, pes=4, steps=1)
        assert result.baseline_speedup > 1.5
        for name, value in result.variants.items():
            assert value >= result.baseline_speedup - 1e-9, name
        combined = result.variants["all of the above + parallel tree build"]
        assert combined > result.baseline_speedup
        assert combined <= 4.0 + 1e-6
        assert "baseline" in result.render()

    def test_scheduling_ablation_dynamic_beats_static(self):
        result = scheduling_ablation(n=192, pes=7, steps=1)
        assert result.variants["dynamic"] >= result.baseline_speedup

    def test_sync_cost_monotone(self):
        result = sync_cost_ablation(n=192, pes=4, sync_costs=(0.0, 10.0, 100.0))
        assert (
            result.variants["sync=0"]
            >= result.variants["sync=10"]
            >= result.variants["sync=100"]
        )

    def test_subtree_parallelism_bounded_by_pe_count(self):
        result = subtree_parallelism_ablation(n=192, pes=4)
        for value in result.variants.values():
            assert value <= 4.0 + 1e-6
