"""Property-based tests (hypothesis) over the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.adds import check_heap_against_declaration, declaration
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import unparse
from repro.nbody import Particle, Vec3, build_tree, direct_forces
from repro.pathmatrix.paths import PathEntry, Relation
from repro.structures import BigNum, OneWayList, Polynomial, RangeTree2D, TwoWayList


# ---------------------------------------------------------------------------
# path-entry join algebra
# ---------------------------------------------------------------------------
relations = st.builds(
    Relation,
    kind=st.sampled_from(["alias", "path"]),
    field=st.sampled_from(["next", "left", "down"]),
    plus=st.booleans(),
    definite=st.booleans(),
)
entries = st.lists(relations, max_size=4).map(PathEntry)


class TestPathEntryAlgebra:
    @given(entries, entries)
    def test_join_is_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(entries)
    def test_join_is_idempotent(self, a):
        assert a.join(a) == a

    @given(entries, entries, entries)
    @settings(max_examples=60)
    def test_join_is_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(entries, entries)
    def test_join_never_loses_alias_possibility(self, a, b):
        """Soundness of the join: if either side allows aliasing, so does the join."""
        joined = a.join(b)
        if a.may_alias or b.may_alias:
            assert joined.may_alias

    @given(entries, entries)
    def test_join_never_invents_must_alias(self, a, b):
        joined = a.join(b)
        if joined.must_alias:
            assert a.must_alias and b.must_alias

    @given(entries)
    def test_weakened_entries_keep_relations_but_not_certainty(self, a):
        weak = a.weakened()
        assert all(not rel.definite for rel in weak.relations)
        # every original relation survives in weakened form
        assert all(rel.weakened() in weak.relations for rel in a.relations)
        assert weak.may_alias == a.may_alias


# ---------------------------------------------------------------------------
# data-structure invariants
# ---------------------------------------------------------------------------
class TestListInvariants:
    @given(st.lists(st.integers(-1000, 1000), max_size=30))
    @settings(max_examples=50)
    def test_one_way_list_round_trips_and_stays_valid(self, values):
        lst = OneWayList.from_iterable(values)
        assert lst.to_list() == values
        assert check_heap_against_declaration(lst.heap, declaration("OneWayList")) == []

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_reversal_is_an_involution(self, values):
        lst = OneWayList.from_iterable(values)
        lst.reverse_in_place()
        lst.reverse_in_place()
        assert lst.to_list() == values

    @given(st.lists(st.integers(-100, 100), max_size=25))
    @settings(max_examples=50)
    def test_two_way_list_backward_is_reverse_of_forward(self, values):
        lst = TwoWayList.from_iterable(values)
        assert lst.backward() == list(reversed(lst.forward()))
        assert check_heap_against_declaration(lst.heap, declaration("TwoWayList")) == []


class TestArithmeticStructures:
    @given(st.integers(0, 10**24), st.integers(0, 10**24))
    @settings(max_examples=60)
    def test_bignum_addition_matches_python(self, a, b):
        assert BigNum.from_int(a).add(BigNum.from_int(b)).to_int() == a + b

    @given(st.integers(0, 10**12), st.integers(0, 10**12))
    @settings(max_examples=40)
    def test_bignum_multiplication_matches_python(self, a, b):
        assert BigNum.from_int(a).multiply(BigNum.from_int(b)).to_int() == a * b

    @given(st.integers(0, 10**30))
    @settings(max_examples=50)
    def test_bignum_round_trip(self, a):
        assert BigNum.from_int(a).to_int() == a

    @given(
        st.dictionaries(st.integers(0, 12), st.integers(-9, 9), max_size=8),
        st.dictionaries(st.integers(0, 12), st.integers(-9, 9), max_size=8),
        st.integers(-4, 4),
    )
    @settings(max_examples=50)
    def test_polynomial_ring_laws_at_a_point(self, pd, qd, x):
        p = Polynomial.from_terms([(c, e) for e, c in pd.items()])
        q = Polynomial.from_terms([(c, e) for e, c in qd.items()])
        assert p.add(q).evaluate(x) == p.evaluate(x) + q.evaluate(x)
        assert p.multiply(q).evaluate(x) == p.evaluate(x) * q.evaluate(x)


class TestRangeTreeProperties:
    @given(
        st.sets(
            st.tuples(st.integers(0, 40), st.integers(0, 40)), min_size=1, max_size=20
        ),
        st.integers(0, 40),
        st.integers(0, 40),
        st.integers(0, 40),
        st.integers(0, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_rect_query_matches_brute_force(self, points, a, b, c, d):
        x1, x2 = sorted((a, b))
        y1, y2 = sorted((c, d))
        tree = RangeTree2D(points)
        expected = sorted(
            p for p in points if x1 <= p[0] <= x2 and y1 <= p[1] <= y2
        )
        assert tree.query_rect(x1, x2, y1, y2) == expected


class TestOctreeProperties:
    coords = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False, width=32)

    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=40, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_build_tree_invariants(self, positions):
        particles = [
            Particle(ident=i, position=Vec3(x, y, z))
            for i, (x, y, z) in enumerate(positions)
        ]
        root, _ = build_tree(particles)
        assert root.count_particles() == len(particles)
        assert root.check_invariants() == []

    @given(st.lists(st.tuples(coords, coords, coords), min_size=2, max_size=16, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_direct_forces_are_antisymmetric_in_total(self, positions):
        particles = [
            Particle(ident=i, position=Vec3(x, y, z))
            for i, (x, y, z) in enumerate(positions)
        ]
        direct_forces(particles)
        total = Vec3.zero()
        for p in particles:
            total = total + p.force
        assert total.norm() < 1e-6 * max(1.0, max(p.force.norm() for p in particles))


# ---------------------------------------------------------------------------
# language round trips
# ---------------------------------------------------------------------------
int_exprs = st.recursive(
    st.integers(-50, 50).map(lambda v: str(v) if v >= 0 else f"(0 - {abs(v)})"),
    lambda inner: st.tuples(inner, st.sampled_from(["+", "-", "*"]), inner).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    ),
    max_leaves=8,
)


class TestLanguageRoundTrips:
    @given(int_exprs)
    @settings(max_examples=60)
    def test_expression_unparse_reparse_is_stable(self, text):
        expr = parse_expression(text)
        again = parse_expression(unparse(expr))
        assert unparse(expr) == unparse(again)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_generated_list_programs_execute_consistently(self, values):
        from repro.lang.interpreter import run_program

        pushes = "\n".join(
            f"  p = new ListNode; p->coef = {v}; p->next = head; head = p;" for v in values
        )
        source = (
            "type ListNode [X] { int coef; int exp; ListNode *next is uniquely forward along X; };\n"
            "function main()\n{ var head; var p; var total;\n  head = NULL;\n"
            + pushes
            + "\n  total = 0;\n  p = head;\n  while p <> NULL { total = total + p->coef; p = p->next; }\n  return total;\n}"
        )
        program = parse_program(source)
        result, _ = run_program(program)
        assert result == sum(values)
        reparsed = parse_program(unparse(program))
        result2, _ = run_program(reparsed)
        assert result2 == result
