"""Every corpus program must behave identically under every transform.

Each ``examples/corpus/*.ptr`` file runs through the differential harness:
the reference interpreter, the machine simulator, and the strip-mined,
unrolled, and software-pipelined variants of the program.  A transform that
(correctly) refuses a loop simply drops out of the comparison; any variant
that *does* run must reproduce the reference's return value, printed output,
and final heap exactly.
"""

from pathlib import Path

import pytest

from repro.fuzz.executors import REFERENCE
from repro.fuzz.harness import PASS, run_source
from repro.fuzz.observation import OK

CORPUS_DIR = Path(__file__).resolve().parents[2] / "examples" / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.ptr"))

#: pinned reference results — a change here means the kernel's semantics
#: changed, which must be deliberate
EXPECTED_RESULTS = {
    "list_sum": 1056,
    "tree_insert": 108,
    "list_reverse": 1496,
    "tree_rotate": 913517,
    "dag_traverse": 132995,
}


def test_corpus_is_nonempty_and_fully_pinned():
    names = {path.stem for path in CORPUS}
    assert names == set(EXPECTED_RESULTS)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
class TestCorpusEquivalence:
    def test_reference_result_is_pinned(self, path):
        case = run_source(path.read_text())
        assert case.reference is not None and case.reference.status == OK
        assert case.reference.result == EXPECTED_RESULTS[path.stem]

    def test_all_variants_match_reference(self, path):
        case = run_source(path.read_text())
        assert case.status == PASS, case.summary()
        assert not case.divergences

    def test_loop_kernels_exercise_transforms(self, path):
        # the pointer-chasing kernels must actually produce transformed
        # variants (recursive-only programs legitimately produce none)
        case = run_source(path.read_text())
        ran = {name for name, status in case.executors.items() if status == OK}
        assert REFERENCE in ran
        if path.stem in ("list_sum", "dag_traverse"):
            assert {"strip-mine", "machine-sim", "unroll", "software-pipeline"} <= ran
        if path.stem == "list_reverse":
            # the reversal loop is sequential, but the checksum loop unrolls
            assert "unroll" in ran
