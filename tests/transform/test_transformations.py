"""Tests for the dependence test and the three transformations.

Every transformation test checks two things: the transformed program has the
structure the paper describes, and it is semantics preserving (same heap as
the original when interpreted).
"""

import pytest

from repro.adds.library import merged_into
from repro.lang.ast_nodes import Call, For, If, IntLit, ParallelFor, While
from repro.lang.interpreter import run_program
from repro.lang.pretty import unparse
from repro.nbody.toy_program import BHL1_FUNCTION, BHL2_FUNCTION, barnes_hut_toy_program
from repro.transform import (
    LoopClassification,
    TransformationReport,
    classify_loop,
    software_pipeline_loop,
    strip_mine_loop,
    unroll_loop,
)
from repro.transform.stripmine import TransformError


def coef_multiset(interpreter):
    return sorted(
        cell.fields["coef"] for cell in interpreter.heap if "coef" in cell.fields
    )


def patch_call(program, callee: str, extra_arg: int):
    """Append ``extra_arg`` to every call of ``callee`` (supplies the PEs count)."""
    for func in program.functions:
        for stmt in func.body.walk():
            if isinstance(stmt, Call) and stmt.func == callee:
                stmt.args.append(IntLit(extra_arg))


class TestClassifyLoop:
    def test_scale_loop_with_and_without_adds(self, scale_program):
        assert (
            classify_loop(scale_program, "scale").classification
            is LoopClassification.DOALL_AFTER_TRAVERSAL
        )
        assert (
            classify_loop(scale_program, "scale", use_adds=False).classification
            is LoopClassification.SEQUENTIAL
        )

    def test_barnes_hut_loops(self, bh_program):
        for fn in (BHL1_FUNCTION, BHL2_FUNCTION):
            assert classify_loop(bh_program, fn).parallelizable
            assert not classify_loop(bh_program, fn, use_adds=False).parallelizable

    def test_function_without_loops(self, scale_program):
        test = classify_loop(scale_program, "main")
        assert test.classification is LoopClassification.NO_TRAVERSAL

    def test_describe_lists_reasons(self, scale_program):
        text = classify_loop(scale_program, "scale").describe()
        assert "different node" in text


class TestStripMining:
    def test_transformed_structure_matches_paper(self, scale_program):
        result = strip_mine_loop(scale_program, "scale", pes_param="PEs")
        scale = result.program.function_named("scale")
        loop = next(s for s in scale.body.walk() if isinstance(s, While))
        kinds = [type(s) for s in loop.body.statements]
        assert kinds == [ParallelFor, For]  # parallel step then FOR1 skip-ahead
        proc = result.program.function_named(result.iteration_procedure)
        assert proc.is_procedure
        inner_kinds = [type(s) for s in proc.body.statements]
        assert inner_kinds == [For, If]  # FOR2 skip then guarded work
        assert "PEs" in {p.name for p in scale.params}

    def test_semantics_preserved_for_various_pe_counts(self, scale_program):
        _, original = run_program(scale_program)
        for pes in (1, 2, 3, 4, 7, 16):
            result = strip_mine_loop(scale_program, "scale", pes_param="PEs")
            patch_call(result.program, "scale", pes)
            _, transformed = run_program(result.program)
            assert coef_multiset(transformed) == coef_multiset(original), pes

    def test_refuses_unparallelizable_loop(self):
        source = """
        function reverse(head)
        { var p; var prev; var nxt;
          prev = NULL;
          p = head;
          while p <> NULL
          { nxt = p->next;
            p->next = prev;
            prev = p;
            p = nxt;
          }
          return prev;
        }
        """
        program = merged_into(source, "ListNode")
        with pytest.raises(TransformError):
            strip_mine_loop(program, "reverse")

    def test_unchecked_mode_still_transforms(self, scale_program):
        result = strip_mine_loop(scale_program, "scale", check_dependences=False)
        assert result.dependence is None
        assert result.program.function_named(result.iteration_procedure) is not None

    def test_free_variables_become_parameters(self, scale_program):
        result = strip_mine_loop(scale_program, "scale")
        proc = result.program.function_named(result.iteration_procedure)
        assert [p.name for p in proc.params][:2] == ["i", "p"]
        assert "c" in {p.name for p in proc.params}

    def test_barnes_hut_both_loops_transform_and_run(self, bh_program):
        _, original = run_program(bh_program)
        result = strip_mine_loop(bh_program, BHL1_FUNCTION)
        result = strip_mine_loop(result.program, BHL2_FUNCTION)
        patch_call(result.program, BHL1_FUNCTION, 4)
        patch_call(result.program, BHL2_FUNCTION, 4)
        _, transformed = run_program(result.program)
        orig_state = sorted(
            (round(c.fields.get("x", 0.0), 9), round(c.fields.get("force", 0.0), 9))
            for c in original.heap
        )
        new_state = sorted(
            (round(c.fields.get("x", 0.0), 9), round(c.fields.get("force", 0.0), 9))
            for c in transformed.heap
        )
        assert orig_state == new_state

    def test_original_program_is_untouched(self, scale_program):
        before = unparse(scale_program)
        strip_mine_loop(scale_program, "scale")
        assert unparse(scale_program) == before


class TestUnrolling:
    def test_unrolled_loop_has_guarded_copies(self, scale_program):
        result = unroll_loop(scale_program, "scale", factor=4)
        scale = result.program.function_named("scale")
        loop = next(s for s in scale.body.walk() if isinstance(s, While))
        guards = [s for s in loop.body.statements if isinstance(s, If)]
        assert len(guards) == 3

    @pytest.mark.parametrize("factor", [2, 3, 5])
    def test_semantics_preserved(self, scale_program, factor):
        _, original = run_program(scale_program)
        result = unroll_loop(scale_program, "scale", factor=factor)
        _, transformed = run_program(result.program)
        assert coef_multiset(transformed) == coef_multiset(original)

    def test_factor_below_two_rejected(self, scale_program):
        with pytest.raises(TransformError):
            unroll_loop(scale_program, "scale", factor=1)


class TestSoftwarePipelining:
    def test_pipelined_structure(self, scale_program):
        result = software_pipeline_loop(scale_program, "scale")
        scale = result.program.function_named("scale")
        text = unparse(scale)
        assert result.lookahead_var in text
        assert "while" in text

    def test_semantics_preserved(self, scale_program):
        _, original = run_program(scale_program)
        result = software_pipeline_loop(scale_program, "scale")
        _, transformed = run_program(result.program)
        assert coef_multiset(transformed) == coef_multiset(original)

    def test_single_element_list_handled(self):
        source = """
        function touch(head)
        { var p;
          p = head;
          while p <> NULL
          { p->coef = p->coef + 1;
            p = p->next;
          }
          return head;
        }
        function main()
        { var h;
          h = new ListNode;
          h->coef = 41;
          h = touch(h);
          return h;
        }
        """
        program = merged_into(source, "ListNode")
        result = software_pipeline_loop(program, "touch")
        out, interp = run_program(result.program)
        assert interp.heap.cell(out).fields["coef"] == 42

    def test_refuses_unparallelizable_loop(self, scale_program):
        assert (
            classify_loop(scale_program, "scale", use_adds=False).classification
            is LoopClassification.SEQUENTIAL
        )
        # pipelining checks dependences through the same classifier
        source = """
        function sum_into(head, acc)
        { var p;
          p = head;
          while p <> NULL
          { acc->coef = acc->coef + p->coef;
            p = p->next;
          }
          return acc;
        }
        """
        program = merged_into(source, "ListNode")
        with pytest.raises(TransformError):
            software_pipeline_loop(program, "sum_into")


class TestTransformationReport:
    def test_report_rendering(self, scale_program):
        result = strip_mine_loop(scale_program, "scale")
        report = TransformationReport(
            name="strip-mining",
            function_name="scale",
            original=scale_program,
            transformed=result.program,
            dependence=result.dependence,
            notes=result.notes,
        )
        text = report.render()
        assert "original" in text and "transformed" in text
        assert result.iteration_procedure in text
        assert "speculative traversability" in text
