"""Tests for the simulated multiprocessor: cost model, schedulers, simulator, executors."""

import pytest

from repro.machine import (
    IDEAL_MACHINE,
    SEQUENT_LIKE,
    DynamicScheduler,
    MachineConfig,
    MachineSimulator,
    ProcessingElement,
    SequentialBackend,
    SimulationTrace,
    StaticBlockScheduler,
    StaticInterleavedScheduler,
    ThreadPoolExecutorBackend,
    make_scheduler,
)


class TestCostModel:
    def test_with_pes_returns_new_config(self):
        m = SEQUENT_LIKE.with_pes(7)
        assert m.num_pes == 7
        assert SEQUENT_LIKE.num_pes == 4  # original unchanged

    def test_contention_factor_grows_with_pes(self):
        assert SEQUENT_LIKE.with_pes(7).contention_factor() > SEQUENT_LIKE.with_pes(
            4
        ).contention_factor() > 1.0

    def test_ideal_machine_has_no_overheads(self):
        assert IDEAL_MACHINE.sync_cost == 0.0
        assert IDEAL_MACHINE.contention_factor() == 1.0

    def test_describe_mentions_scheduling(self):
        assert "static" in SEQUENT_LIKE.describe()


class TestSchedulers:
    COSTS = [5.0, 1.0, 9.0, 2.0, 7.0, 3.0, 8.0]

    def test_interleaved_assignment(self):
        assignment = StaticInterleavedScheduler().assign(self.COSTS, 3)
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]

    def test_block_assignment_covers_everything_once(self):
        assignment = StaticBlockScheduler().assign(self.COSTS, 3)
        flat = sorted(i for tasks in assignment for i in tasks)
        assert flat == list(range(len(self.COSTS)))
        assert len(assignment) == 3

    def test_dynamic_balances_better_than_interleaved(self):
        loads = lambda assignment: [sum(self.COSTS[i] for i in tasks) for tasks in assignment]
        inter = max(loads(StaticInterleavedScheduler().assign(self.COSTS, 3)))
        dyn = max(loads(DynamicScheduler(sort_by_cost=True).assign(self.COSTS, 3)))
        assert dyn <= inter

    def test_factory(self):
        assert isinstance(make_scheduler("dynamic"), DynamicScheduler)
        with pytest.raises(ValueError):
            make_scheduler("banana")


class TestProcessingElement:
    def test_accounting(self):
        pe = ProcessingElement(0)
        pe.run_task(10.0)
        pe.wait(2.0)
        pe.synchronize(1.0)
        assert pe.total_time == 13.0
        assert pe.utilization() == pytest.approx(10.0 / 13.0)
        pe.reset()
        assert pe.total_time == 0.0


class TestSimulator:
    def test_ideal_machine_uniform_work_gives_linear_speedup(self):
        costs = [10.0] * 64
        sim = MachineSimulator(IDEAL_MACHINE.with_pes(4))
        trace = sim.simulate_stripmined_pass(costs)
        assert trace.speedup_against(sum(costs)) == pytest.approx(4.0)

    def test_overheads_reduce_speedup(self):
        costs = [10.0] * 64
        ideal = MachineSimulator(IDEAL_MACHINE.with_pes(4)).simulate_stripmined_pass(costs)
        real = MachineSimulator(SEQUENT_LIKE.with_pes(4)).simulate_stripmined_pass(costs)
        assert real.elapsed > ideal.elapsed

    def test_imbalanced_groups_cause_idle_time(self):
        costs = [1.0, 100.0, 1.0, 1.0]
        trace = MachineSimulator(IDEAL_MACHINE.with_pes(4)).simulate_stripmined_pass(costs)
        assert trace.idle_time > 0
        assert trace.elapsed == pytest.approx(100.0)

    def test_more_pes_never_slower_on_uniform_work(self):
        costs = [10.0] * 70
        e4 = MachineSimulator(IDEAL_MACHINE.with_pes(4)).simulate_stripmined_pass(costs).elapsed
        e7 = MachineSimulator(IDEAL_MACHINE.with_pes(7)).simulate_stripmined_pass(costs).elapsed
        assert e7 <= e4

    def test_sequential_prologue_is_charged(self):
        sim = MachineSimulator(IDEAL_MACHINE.with_pes(4))
        trace = sim.simulate_stripmined_pass([1.0] * 4, sequential_prologue=50.0)
        assert trace.sequential_time >= 50.0

    def test_doall_with_dynamic_scheduler_amortizes_sync(self):
        costs = [5.0] * 100
        machine = SEQUENT_LIKE.with_pes(4)
        stripmined = MachineSimulator(machine).simulate_stripmined_pass(costs)
        doall = MachineSimulator(machine).simulate_doall(costs, scheduler_name="dynamic")
        assert doall.elapsed < stripmined.elapsed  # one barrier instead of 25

    def test_trace_describe(self):
        trace = MachineSimulator(SEQUENT_LIKE).simulate_stripmined_pass([1.0] * 8)
        assert "PE0" in trace.describe()
        assert trace.parallel_steps == 2

    def test_speedup_of_empty_trace_is_infinite(self):
        trace = SimulationTrace(config=SEQUENT_LIKE)
        assert trace.speedup_against(100.0) == float("inf")


class TestExecutors:
    def test_sequential_backend_preserves_order(self):
        backend = SequentialBackend()
        assert backend.map_indices(lambda i: i * i, 5) == [0, 1, 4, 9, 16]

    def test_thread_backend_matches_sequential_results(self):
        backend = ThreadPoolExecutorBackend(num_workers=4)
        results = backend.map_indices(lambda i: i * i, 32)
        assert results == [i * i for i in range(32)]

    def test_thread_backend_uses_multiple_workers(self):
        backend = ThreadPoolExecutorBackend(num_workers=4)
        backend.run([(lambda i=i: i) for i in range(16)])
        assert len(backend.threads_observed) >= 1

    def test_stripmined_grouping(self):
        backend = ThreadPoolExecutorBackend(num_workers=3)
        results = backend.run_stripmined(lambda i: i + 1, 10)
        assert results == list(range(1, 11))


class TestInterpreterIntegration:
    def test_parallel_for_costs_are_charged_to_the_simulator(self):
        from repro.lang.parser import parse_program
        from repro.lang.interpreter import Interpreter

        program = parse_program(
            """
            function work(n)
            { var s; var j;
              s = 0;
              for j = 1 to n { s = s + j; }
              return s;
            }
            function main()
            { var total;
              total = 0;
              for i = 0 to 7 in parallel
              { total = total + work(50);
              }
              return total;
            }
            """
        )
        interp = Interpreter(program)
        simulator = MachineSimulator(IDEAL_MACHINE.with_pes(4))
        executor = simulator.attach_to_interpreter(interp)
        result = interp.call_function("main")
        assert result == 8 * sum(range(1, 51))
        assert executor.trace.parallel_steps == 1
        # 8 iterations of similar cost on 4 ideal PEs: roughly half the serial cost
        assert executor.trace.elapsed < executor.sequential_cost * 0.75
