"""End-to-end integration tests: the whole pipeline the paper describes.

declaration → analysis → abstraction validation → transformation → execution
on the simulated multiprocessor → speedup, on both the polynomial example and
the Barnes–Hut program.
"""

import pytest

from repro.adds import check_heap_against_declaration, declaration, program_adds_types
from repro.adds.wellformed import check_all
from repro.lang.ast_nodes import Call, IntLit
from repro.lang.interpreter import Interpreter, run_program
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.nbody import BHL1_FUNCTION, BHL2_FUNCTION, barnes_hut_toy_program
from repro.pathmatrix import PathMatrixAnalysis, analyze_loop_dependence
from repro.transform import classify_loop, strip_mine_loop


class TestPolynomialPipeline:
    def test_declaration_analysis_transformation_execution(self, scale_program):
        # 1. the declaration is well formed and carries real ADDS information
        adds_types = program_adds_types(scale_program)
        assert check_all(adds_types) == {}
        assert adds_types["ListNode"].has_adds_info()

        # 2. the analysis proves the loop parallelizable and the abstraction valid
        report = analyze_loop_dependence(scale_program, "scale")
        assert report.parallelizable and report.abstraction_valid

        # 3. the transformation applies and preserves semantics
        result = strip_mine_loop(scale_program, "scale", pes_param="PEs")
        for node in result.program.function_named("main").body.walk():
            if isinstance(node, Call) and node.func == "scale":
                node.args.append(IntLit(4))
        _, original = run_program(scale_program)

        interp = Interpreter(result.program)
        executor = MachineSimulator(SEQUENT_LIKE.with_pes(4)).attach_to_interpreter(interp)
        interp.call_function("main")
        assert sorted(c.fields["coef"] for c in interp.heap) == sorted(
            c.fields["coef"] for c in original.heap
        )

        # 4. the heap still satisfies the declaration after the parallel run
        assert check_heap_against_declaration(interp.heap, declaration("ListNode")) == []

        # 5. the simulated machine reports a genuine speedup for the parallel loops
        assert executor.trace.parallel_steps > 0
        assert executor.trace.elapsed < executor.sequential_cost


class TestBarnesHutPipeline:
    @pytest.fixture(scope="class")
    def transformed(self):
        program = barnes_hut_toy_program()
        result = strip_mine_loop(program, BHL1_FUNCTION)
        result = strip_mine_loop(result.program, BHL2_FUNCTION)
        for func in result.program.functions:
            for node in func.body.walk():
                if isinstance(node, Call) and node.func in (BHL1_FUNCTION, BHL2_FUNCTION):
                    node.args.append(IntLit(4))
        return result.program

    def test_analysis_gates_the_transformation(self):
        program = barnes_hut_toy_program()
        assert classify_loop(program, BHL1_FUNCTION).parallelizable
        assert not classify_loop(program, BHL1_FUNCTION, use_adds=False).parallelizable

    def test_whole_program_analysis_is_clean_where_the_paper_says_so(self):
        program = barnes_hut_toy_program()
        analysis = PathMatrixAnalysis(program)
        results = analysis.analyze_all()
        # the two parallel loops and the read-only force routine are violation-free
        for name in (BHL1_FUNCTION, BHL2_FUNCTION, "compute_force", "expand_box"):
            assert results[name].final_matrix().validation.is_valid(), name

    def test_transformed_program_runs_on_the_simulated_machine(self, transformed):
        _, original = run_program(barnes_hut_toy_program())
        interp = Interpreter(transformed)
        executor = MachineSimulator(SEQUENT_LIKE.with_pes(4)).attach_to_interpreter(interp)
        head = interp.call_function("main")
        assert head != 0
        key = lambda interp_: sorted(
            (round(c.fields.get("x", 0.0), 9), round(c.fields.get("force", 0.0), 9))
            for c in interp_.heap
        )
        assert key(interp) == key(original)
        # the octree declaration holds in the final heap of the parallel run
        assert check_heap_against_declaration(interp.heap, declaration("Octree")) == []
        # and the simulated parallel loops beat their sequential cost
        assert executor.trace.elapsed < executor.sequential_cost

    def test_speedup_scales_with_simulated_processors(self):
        program = barnes_hut_toy_program()
        result = strip_mine_loop(program, BHL1_FUNCTION)
        speedups = {}
        for pes in (2, 7):
            transformed = strip_mine_loop(result.program, BHL2_FUNCTION).program
            for func in transformed.functions:
                for node in func.body.walk():
                    if isinstance(node, Call) and node.func in (BHL1_FUNCTION, BHL2_FUNCTION):
                        node.args.append(IntLit(pes))
            interp = Interpreter(transformed)
            executor = MachineSimulator(SEQUENT_LIKE.with_pes(pes)).attach_to_interpreter(interp)
            interp.call_function("main")
            speedups[pes] = executor.sequential_cost / executor.trace.elapsed
        assert speedups[7] > speedups[2] > 1.0
