"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adds.library import merged_into
from repro.lang.parser import parse_program


#: the polynomial-scaling program of section 3.3.2, used across many tests
SCALE_SRC = """
function build(n)
{ var head; var p; var i;
  head = NULL;
  i = 0;
  while i < n
  { p = new ListNode;
    p->coef = i + 1;
    p->exp = i;
    p->next = head;
    head = p;
    i = i + 1;
  }
  return head;
}

function scale(head, c)
{ var p;
  p = head;
  while p <> NULL
  { p->coef = p->coef * c;
    p = p->next;
  }
  return head;
}

function main()
{ var h;
  h = build(8);
  h = scale(h, 3);
  return h;
}
"""


@pytest.fixture
def scale_program():
    """The ListNode declaration plus build/scale/main."""
    return merged_into(SCALE_SRC, "ListNode")


@pytest.fixture
def bh_program():
    """The toy-language Barnes-Hut program with the Octree ADDS declaration."""
    from repro.nbody.toy_program import barnes_hut_toy_program

    return barnes_hut_toy_program()


@pytest.fixture
def small_particles():
    """A small deterministic particle set."""
    from repro.nbody.datasets import uniform_cube

    return uniform_cube(48, seed=5)
