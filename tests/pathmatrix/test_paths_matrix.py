"""Unit tests for path-matrix entries (relations) and the PathMatrix container."""

import pytest

from repro.pathmatrix.paths import EMPTY_ENTRY, PathEntry, Relation
from repro.pathmatrix.matrix import PathMatrix


class TestRelations:
    def test_alias_rendering(self):
        assert str(Relation.alias()) == "="
        assert str(Relation.alias(definite=False)) == "=?"

    def test_path_rendering(self):
        assert str(Relation.path("next")) == "next"
        assert str(Relation.path("next", plus=True)) == "next+"
        assert str(Relation.path("next", plus=True, definite=False)) == "next+?"

    def test_weakened_is_idempotent(self):
        rel = Relation.path("next")
        assert rel.weakened().weakened() == rel.weakened()
        assert not rel.weakened().definite

    def test_extended_makes_plus(self):
        assert Relation.path("f").extended().plus
        assert Relation.alias().extended() == Relation.alias()


class TestPathEntry:
    def test_empty_entry_guarantees_no_alias(self):
        assert EMPTY_ENTRY.guarantees_not_alias()
        assert not EMPTY_ENTRY.may_alias

    def test_pure_path_entry_guarantees_no_alias(self):
        entry = PathEntry.single_path("next", plus=True)
        assert entry.guarantees_not_alias()
        assert entry.has_path
        assert entry.path_fields() == {"next"}

    def test_alias_entries(self):
        assert PathEntry.definite_alias().must_alias
        assert PathEntry.possible_alias().may_alias
        assert not PathEntry.possible_alias().must_alias

    def test_join_of_identical_entries_is_unchanged(self):
        entry = PathEntry.single_path("next")
        assert entry.join(entry) == entry

    def test_join_weakens_one_sided_relations(self):
        joined = PathEntry.definite_alias().join(EMPTY_ENTRY)
        assert joined.may_alias and not joined.must_alias

    def test_join_keeps_shared_definite_relations_definite(self):
        a = PathEntry([Relation.path("next"), Relation.alias()])
        b = PathEntry([Relation.path("next")])
        joined = a.join(b)
        assert Relation.path("next") in joined.relations  # still definite
        assert joined.may_alias and not joined.must_alias

    def test_join_is_commutative_and_idempotent(self):
        a = PathEntry([Relation.path("next", plus=True), Relation.alias(definite=False)])
        b = PathEntry([Relation.path("left")])
        assert a.join(b) == b.join(a)
        assert a.join(a) == a

    def test_union_and_add(self):
        entry = EMPTY_ENTRY.add(Relation.path("f")).union(PathEntry.possible_alias())
        assert entry.has_path and entry.may_alias

    def test_str_of_entry_sorted(self):
        entry = PathEntry([Relation.alias(), Relation.path("next", plus=True)])
        assert str(entry) in ("=,next+", "next+,=")


class TestPathMatrix:
    def test_diagonal_is_definite_alias(self):
        pm = PathMatrix(["a", "b"])
        assert pm.must_alias("a", "a")
        assert pm.get("a", "a").must_alias

    def test_nil_variable_has_no_relations(self):
        pm = PathMatrix(["a", "b"])
        pm.set("a", "b", PathEntry.definite_alias())
        pm.set_nil("a")
        assert not pm.may_alias("a", "b")
        assert not pm.may_alias("a", "a")
        assert pm.is_nil("a")

    def test_copy_variable_duplicates_relations(self):
        pm = PathMatrix(["head", "p", "q"])
        pm.set("head", "q", PathEntry.single_path("next", plus=True))
        pm.copy_variable("p", "head")
        assert pm.must_alias("p", "head")
        assert pm.get("p", "q").path_fields() == {"next"}

    def test_copy_of_nil_is_nil(self):
        pm = PathMatrix(["a", "b"])
        pm.set_nil("a")
        pm.copy_variable("b", "a")
        assert pm.is_nil("b")

    def test_fresh_variable_is_unrelated(self):
        pm = PathMatrix.conservative(["a", "b"])
        pm.set_fresh("a")
        assert not pm.may_alias("a", "b")

    def test_conservative_matrix_all_possible_aliases(self):
        pm = PathMatrix.conservative(["x", "y", "z"])
        assert pm.may_alias("x", "y") and pm.may_alias("y", "z")
        assert not pm.must_alias("x", "y")

    def test_join_intersects_nil_sets(self):
        a = PathMatrix(["p", "q"])
        a.set_nil("p")
        b = PathMatrix(["p", "q"])
        b.set("p", "q", PathEntry.definite_alias())
        joined = a.join(b)
        assert not joined.is_nil("p")
        assert joined.may_alias("p", "q")
        assert not joined.must_alias("p", "q")

    def test_join_of_equivalent_matrices_is_equivalent(self):
        a = PathMatrix(["p", "q"])
        a.set("p", "q", PathEntry.single_path("next"))
        b = a.copy()
        assert a.join(b).equivalent(a)

    def test_unknown_variables_are_conservative(self):
        pm = PathMatrix(["a"])
        assert pm.may_alias("a", "never_seen")

    def test_to_table_renders_all_variables(self):
        pm = PathMatrix(["head", "p"])
        pm.set("head", "p", PathEntry.single_path("next", plus=True))
        table = pm.to_table()
        assert "head" in table and "next+" in table

    def test_remove_variable(self):
        pm = PathMatrix(["a", "b"])
        pm.set("a", "b", PathEntry.definite_alias())
        pm.remove_variable("b")
        assert "b" not in pm.variables
        assert list(pm.entries()) == []

    def test_pointers_reaching(self):
        pm = PathMatrix(["head", "mid", "p"])
        pm.set("head", "p", PathEntry.single_path("next", plus=True))
        pm.set("mid", "p", PathEntry.single_path("next"))
        assert set(pm.pointers_reaching("p")) == {"head", "mid"}


class TestMustAliasRegression:
    """must_alias must mirror may_alias's handling of unknown/nil operands.

    Regression for the seed bug where must_alias never checked nil_vars or
    matrix membership: it claimed ``must_alias(x, x)`` for variables the
    matrix had never seen, and for variables known to be NULL.
    """

    def test_untracked_variable_is_not_must_alias_with_itself(self):
        pm = PathMatrix(["a"])
        assert not pm.must_alias("never_seen", "never_seen")
        # may_alias stays conservative for unknowns
        assert pm.may_alias("a", "never_seen")

    def test_untracked_variable_is_not_must_alias_with_tracked(self):
        pm = PathMatrix(["a"])
        assert not pm.must_alias("a", "never_seen")
        assert not pm.must_alias("never_seen", "a")

    def test_nil_variable_is_not_must_alias(self):
        pm = PathMatrix(["a", "b"])
        pm.set("a", "b", PathEntry.definite_alias())
        pm.set_nil("a")
        assert not pm.must_alias("a", "b")
        assert not pm.must_alias("a", "a")

    def test_tracked_self_alias_still_holds(self):
        pm = PathMatrix(["a"])
        assert pm.must_alias("a", "a")

    def test_definite_alias_pair_still_must_alias(self):
        pm = PathMatrix(["a", "b"])
        pm.set("a", "b", PathEntry.definite_alias())
        assert pm.must_alias("a", "b")
        assert pm.must_alias("b", "a")


class TestInterning:
    """The interning invariants the performance layer relies on."""

    def test_equal_entries_are_identical_objects(self):
        a = PathEntry([Relation.path("next", plus=True)])
        b = PathEntry([Relation.path("next", plus=True)])
        assert a is b

    def test_empty_entry_is_canonical(self):
        assert PathEntry() is PathEntry.empty()

    def test_relation_constructors_are_interned(self):
        assert Relation.alias() is Relation.alias()
        assert Relation.path("next") is Relation.path("next")
        assert Relation.path("next").weakened() is Relation.path("next", definite=False)

    def test_join_returns_interned_entry(self):
        a = PathEntry([Relation.path("next")])
        b = PathEntry([Relation.alias()])
        joined1 = a.join(b)
        joined2 = a.join(b)
        assert joined1 is joined2

    def test_matrix_copy_shares_interned_entries(self):
        pm = PathMatrix(["a", "b"])
        pm.set("a", "b", PathEntry.single_path("next"))
        clone = pm.copy()
        assert clone.get("a", "b") is pm.get("a", "b")
        clone.set("a", "b", PathEntry.definite_alias())
        assert pm.get("a", "b") == PathEntry.single_path("next")
