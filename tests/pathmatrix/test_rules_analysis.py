"""Tests for the pointer transfer rules and the dataflow/loop analyses."""

import pytest

from repro.adds.library import merged_into
from repro.lang.parser import parse_program
from repro.pathmatrix import (
    PathMatrixAnalysis,
    analyze_function,
    analyze_loop_dependence,
)
from repro.pathmatrix.interproc import summarize_program


def analyze_last_matrix(source: str, function: str = "f", use_adds: bool = True,
                        types: tuple[str, ...] = ("ListNode",)):
    program = merged_into(source, *types)
    result = PathMatrixAnalysis(program, use_adds=use_adds).analyze_function(function)
    return result.final_matrix(), result


class TestBasicRules:
    def test_copy_creates_definite_alias(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; b = a; b->coef = 1; return b; }"
        )
        assert pm.must_alias("a", "b")

    def test_null_assignment_kills_relations(self):
        pm, _ = analyze_last_matrix("function f(a) { var b; b = a; b = NULL; return b; }")
        assert pm.is_nil("b")
        assert not pm.may_alias("a", "b")

    def test_allocation_is_unrelated_to_everything(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; a->coef = 0; b = new ListNode; return b; }"
        )
        assert not pm.may_alias("a", "b")

    def test_field_load_from_acyclic_field_excludes_alias(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; b = a->next; return b; }"
        )
        assert not pm.may_alias("a", "b")
        assert pm.get("a", "b").path_fields() == {"next"}

    def test_field_load_without_adds_is_conservative(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; b = a->next; return b; }", use_adds=False
        )
        assert pm.may_alias("a", "b")

    def test_two_step_traversal_gives_plus_path(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; b = a->next; b = b->next; return b; }"
        )
        entry = pm.get("a", "b")
        assert any(rel.plus for rel in entry.paths())
        assert not pm.may_alias("a", "b")

    def test_parameters_of_same_type_may_alias_initially(self):
        pm, _ = analyze_last_matrix("function f(a, b) { a->coef = 1; b->coef = 2; return a; }")
        assert pm.may_alias("a", "b")

    def test_store_records_path_fact(self):
        pm, _ = analyze_last_matrix(
            "function f(a) { var b; b = new ListNode; a->next = b; return a; }"
        )
        assert "next" in pm.get("a", "b").path_fields()


class TestAbstractionValidation:
    def test_subtree_move_breaks_then_repairs(self):
        source = """
        procedure move(p1, p2)
        { p1->left = p2->left;
          p2->left = NULL;
        }
        """
        program = merged_into(source, "BinTree")
        analysis = PathMatrixAnalysis(program)
        func = program.function_named("move")
        ctx = analysis._context_for(func)
        pm = analysis.initial_matrix(func, ctx)
        from repro.pathmatrix.rules import apply_statement

        pm1 = apply_statement(pm, func.body.statements[0], ctx)
        assert not pm1.validation.is_valid_for("BinTree")
        assert any(v.kind == "sharing" for v in pm1.validation.violations)
        pm2 = apply_statement(pm1, func.body.statements[1], ctx)
        assert pm2.validation.is_valid_for("BinTree")

    def test_unrepaired_sharing_is_reported_at_exit(self):
        source = "procedure share(p1, p2) { p1->left = p2->left; }"
        program = merged_into(source, "BinTree")
        result = analyze_function(program, "share")
        assert not result.final_matrix().validation.is_valid_for("BinTree")

    def test_cycle_creation_is_flagged(self):
        source = """
        procedure close(p)
        { var q;
          q = p->next;
          q->next = p;
        }
        """
        program = merged_into(source, "ListNode")
        result = analyze_function(program, "close")
        assert any(v.kind == "cycle" for v in result.final_matrix().validation.violations)

    def test_clean_list_construction_stays_valid(self, scale_program):
        result = analyze_function(scale_program, "build")
        assert result.final_matrix().validation.is_valid()

    def test_toy_barnes_hut_expand_box_preserves_abstraction(self, bh_program):
        analysis = PathMatrixAnalysis(bh_program)
        assert analysis.summaries["expand_box"].preserves_abstraction
        assert analysis.summaries["detach_tree"].preserves_abstraction

    def test_insert_particle_only_flags_the_possible_self_insertion(self, bh_program):
        """insert_particle(p, root) is analyzed without knowing that p is not
        already part of the tree, so a single conservative possible-cycle
        violation remains at its exit (the paper makes the same "assume the
        declaration is valid when BHL1 is reached" argument rather than
        proving it context-insensitively)."""
        result = analyze_function(bh_program, "insert_particle")
        violations = result.violations()
        assert len(violations) <= 2
        assert all(v.kind == "cycle" for v in violations)


class TestInterproceduralSummaries:
    def test_compute_force_is_read_only(self, bh_program):
        summaries = summarize_program(bh_program)
        assert summaries["compute_force"].is_read_only
        assert not summaries["compute_force"].rearranges_shape

    def test_compute_new_vel_pos_writes_only_data_fields(self, bh_program):
        summaries = summarize_program(bh_program)
        summary = summaries["compute_new_vel_pos"]
        assert summary.data_fields_written == {"vx", "x"}
        assert not summary.pointer_fields_written
        assert 0 in summary.written_params
        assert 0 in summary.pointer_params and 1 not in summary.pointer_params

    def test_build_tree_rearranges_shape_transitively(self, bh_program):
        summaries = summarize_program(bh_program)
        assert summaries["build_tree"].rearranges_shape
        assert "subtrees" in summaries["build_tree"].pointer_fields_written

    def test_allocation_and_return_classification(self, scale_program):
        summaries = summarize_program(scale_program)
        assert summaries["build"].allocates
        assert summaries["scale"].may_return_params == {0}

    def test_fields_read_propagate_to_callers(self, bh_program):
        summaries = summarize_program(bh_program)
        assert "mass" in summaries["bh_force_pass"].fields_read


class TestLoopDependence:
    def test_scale_loop_is_parallelizable_with_adds(self, scale_program):
        report = analyze_loop_dependence(scale_program, "scale")
        assert report.parallelizable
        assert report.induction_vars == {"p": "next"}
        assert "p" in report.independent_vars

    def test_scale_loop_is_not_parallelizable_without_adds(self, scale_program):
        report = analyze_loop_dependence(scale_program, "scale", use_adds=False)
        assert not report.parallelizable
        assert report.carried_dependences

    def test_accumulation_loop_reports_invariant_conflict(self):
        source = """
        function total(head, acc)
        { var p;
          p = head;
          while p <> NULL
          { acc->coef = acc->coef + p->coef;
            p = p->next;
          }
          return acc;
        }
        """
        program = merged_into(source, "ListNode")
        report = analyze_loop_dependence(program, "total")
        # writing through the loop-invariant acc every iteration is a genuine
        # loop-carried dependence
        assert not report.parallelizable

    def test_shape_changing_loop_is_not_parallelizable(self):
        source = """
        function reverse(head)
        { var p; var prev; var nxt;
          prev = NULL;
          p = head;
          while p <> NULL
          { nxt = p->next;
            p->next = prev;
            prev = p;
            p = nxt;
          }
          return prev;
        }
        """
        program = merged_into(source, "ListNode")
        report = analyze_loop_dependence(program, "reverse")
        assert not report.parallelizable

    def test_report_describe_is_printable(self, scale_program):
        text = analyze_loop_dependence(scale_program, "scale").describe()
        assert "parallelizable" in text

    def test_missing_loop_raises(self, scale_program):
        with pytest.raises(ValueError):
            analyze_loop_dependence(scale_program, "main")

    def test_fixed_point_terminates_quickly(self, bh_program):
        analysis = PathMatrixAnalysis(bh_program)
        for func in bh_program.functions:
            result = analysis.analyze_function(func.name)
            assert result.iterations < 30
