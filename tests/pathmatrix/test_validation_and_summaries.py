"""Additional coverage for the validation state, violations, and summaries."""

import pytest

from repro.adds.library import merged_into
from repro.pathmatrix import analyze_function
from repro.pathmatrix.interproc import FunctionSummary, summarize_program
from repro.pathmatrix.validation import ValidationState, Violation


class TestViolationObjects:
    def test_describe_per_kind(self):
        sharing = Violation("sharing", "BinTree", "left", new_parent="p1", old_parent="p2", line=3)
        cycle = Violation("cycle", "ListNode", "next", new_parent="p")
        unknown = Violation("unknown_store", "Octree", "subtrees", new_parent="q")
        assert "share" in sharing.describe()
        assert "cycle" in cycle.describe()
        assert "unbounded" in unknown.describe()
        assert "(line 3)" in str(sharing)

    def test_state_add_and_repair(self):
        state = ValidationState()
        v = Violation("sharing", "BinTree", "left", new_parent="a", old_parent="b")
        state.add(v)
        assert not state.is_valid()
        assert not state.is_valid_for("BinTree")
        assert state.is_valid_for("Octree")
        # overwriting an unrelated parent's edge does not repair it
        state.repair_parent_edge(["c"], "left")
        assert not state.is_valid()
        # overwriting the old parent's edge does
        state.repair_parent_edge(["b"], "left")
        assert state.is_valid()

    def test_join_keeps_violations_from_either_side(self):
        a = ValidationState([Violation("cycle", "T", "f", new_parent="x")])
        b = ValidationState()
        joined = a.join(b)
        assert len(joined) == 1
        assert not joined.equivalent(b)
        assert "cycle" in str(joined)
        assert str(b) == "valid"


def _step_through(source: str, function: str):
    """Apply ``function``'s top-level statements one by one, yielding the
    matrix after each (the paper's statement-level validation trace)."""
    from repro.pathmatrix import PathMatrixAnalysis, apply_statement

    program = merged_into(source, "BinTree")
    analysis = PathMatrixAnalysis(program)
    func = program.function_named(function)
    assert func is not None
    ctx = analysis._context_for(func)
    pm = analysis.initial_matrix(func, ctx)
    states = []
    for stmt in func.body.statements:
        pm = apply_statement(pm, stmt, ctx)
        states.append(pm)
    return program, states


class TestAbstractionRepairLifecycle:
    """Section 3.3.1: temporary breaks are repaired — unless the parent
    pointer variable was reassigned in between (the repair is name-keyed)."""

    def test_subtree_move_breaks_then_repairs(self):
        source = """
        procedure move(p1, p2)
        { p1->left = p2->left;
          p2->left = NULL;
        }
        """
        program, states = _step_through(source, "move")
        assert not states[0].validation.is_valid_for("BinTree")
        assert any(v.kind == "sharing" for v in states[0].validation.violations)
        assert states[1].validation.is_valid_for("BinTree")
        # and the whole-function fixpoint agrees
        result = analyze_function(program, "move")
        assert result.final_matrix().validation.is_valid_for("BinTree")

    def test_reassigned_parent_does_not_repair(self):
        """Nulling through the *new* node of a reassigned variable must not
        repair a violation recorded against the variable's old node."""
        source = """
        procedure move(p1, p2, p3)
        { p1->left = p2->left;
          p2 = p3;
          p2->left = NULL;
        }
        """
        program, states = _step_through(source, "move")
        assert not states[0].validation.is_valid_for("BinTree")
        # the reassignment keeps the violation outstanding, under a stale key
        assert not states[1].validation.is_valid_for("BinTree")
        # ... and the null store through the new node does not repair it
        assert not states[2].validation.is_valid_for("BinTree")
        result = analyze_function(program, "move")
        assert not result.final_matrix().validation.is_valid_for("BinTree")

    def test_repair_through_definite_alias_of_old_parent(self):
        source = """
        procedure move(p1, p2)
        { var q;
          q = p2;
          p1->left = p2->left;
          q->left = NULL;
        }
        """
        # statements: [var q] [q = p2] [break] [repair-through-q]
        program, states = _step_through(source, "move")
        assert not states[2].validation.is_valid_for("BinTree")
        assert states[3].validation.is_valid_for("BinTree")

    def test_violation_survives_reassignment_via_surviving_alias(self):
        """When another variable still names the old parent node, the
        violation is handed to it and remains repairable through it."""
        source = """
        procedure move(p1, p2, p3)
        { var q;
          q = p2;
          p1->left = p2->left;
          p2 = p3;
          q->left = NULL;
        }
        """
        # statements: [var q] [q = p2] [break] [p2 = p3] [repair-through-q]
        program, states = _step_through(source, "move")
        assert not states[2].validation.is_valid_for("BinTree")
        assert not states[3].validation.is_valid_for("BinTree")
        assert any(
            v.old_parent == "q" for v in states[3].validation.violations
        ), "violation should be re-keyed to the surviving alias"
        assert states[4].validation.is_valid_for("BinTree")

    def test_retarget_variable_unit_behaviour(self):
        state = ValidationState(
            [Violation("sharing", "BinTree", "left", new_parent="a", old_parent="b")]
        )
        state.retarget_variable("b", replacement=None)
        # the stale key can never be repaired by a source-level variable name
        state.repair_parent_edge(["b"], "left")
        assert not state.is_valid()
        (v,) = state.violations
        assert v.old_parent.startswith("b") and v.old_parent != "b"
        # with a replacement, the violation follows the surviving name
        state2 = ValidationState(
            [Violation("cycle", "BinTree", "left", new_parent="x")]
        )
        state2.retarget_variable("x", replacement="y")
        state2.repair_parent_edge(["y"], "left")
        assert state2.is_valid()


class TestSummaryEdgeCases:
    def test_returns_null_function(self):
        program = merged_into("function nothing(p) { p->coef = 1; return NULL; }", "ListNode")
        summary = summarize_program(program)["nothing"]
        assert summary.returns_null
        assert not summary.returns_fresh

    def test_locally_fresh_return_is_fresh(self):
        program = merged_into(
            "function make() { var n; n = new ListNode; n->coef = 1; return n; }",
            "ListNode",
        )
        assert summarize_program(program)["make"].returns_fresh

    def test_mutual_recursion_terminates_and_propagates(self):
        source = """
        function even(p, n) { if n == 0 then return p; p->coef = n; return odd(p, n - 1); }
        function odd(p, n) { if n == 0 then return NULL; return even(p->next, n - 1); }
        """
        program = merged_into(source, "ListNode")
        summaries = summarize_program(program)
        assert "coef" in summaries["odd"].data_fields_written  # via even
        assert summaries["even"].callees == {"odd"}

    def test_describe_renders(self):
        program = merged_into("function f(p) { p->coef = 1; return p; }", "ListNode")
        text = summarize_program(program)["f"].describe()
        assert "data fields written" in text and "coef" in text

    def test_summary_is_read_only_flag(self):
        summary = FunctionSummary(name="x")
        assert summary.is_read_only
        summary.data_fields_written.add("v")
        assert not summary.is_read_only


class TestValidationThroughCalls:
    def test_call_to_unanalyzable_shape_changer_invalidates(self):
        source = """
        procedure mangle(p)
        { p->next = p;
        }
        function driver(head)
        { mangle(head);
          return head;
        }
        """
        program = merged_into(source, "ListNode")
        result = analyze_function(program, "mangle")
        assert not result.final_matrix().validation.is_valid_for("ListNode")
        driver = analyze_function(program, "driver")
        # the callee does not preserve the abstraction, so the call site
        # leaves the caller's abstraction invalid too
        assert not driver.final_matrix().validation.is_valid_for("ListNode")

    def test_call_to_clean_builder_keeps_abstraction_valid(self, scale_program):
        result = analyze_function(scale_program, "main")
        assert result.final_matrix().validation.is_valid_for("ListNode")
