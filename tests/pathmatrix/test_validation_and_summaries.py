"""Additional coverage for the validation state, violations, and summaries."""

import pytest

from repro.adds.library import merged_into
from repro.pathmatrix import analyze_function
from repro.pathmatrix.interproc import FunctionSummary, summarize_program
from repro.pathmatrix.validation import ValidationState, Violation


class TestViolationObjects:
    def test_describe_per_kind(self):
        sharing = Violation("sharing", "BinTree", "left", new_parent="p1", old_parent="p2", line=3)
        cycle = Violation("cycle", "ListNode", "next", new_parent="p")
        unknown = Violation("unknown_store", "Octree", "subtrees", new_parent="q")
        assert "share" in sharing.describe()
        assert "cycle" in cycle.describe()
        assert "unbounded" in unknown.describe()
        assert "(line 3)" in str(sharing)

    def test_state_add_and_repair(self):
        state = ValidationState()
        v = Violation("sharing", "BinTree", "left", new_parent="a", old_parent="b")
        state.add(v)
        assert not state.is_valid()
        assert not state.is_valid_for("BinTree")
        assert state.is_valid_for("Octree")
        # overwriting an unrelated parent's edge does not repair it
        state.repair_parent_edge(["c"], "left")
        assert not state.is_valid()
        # overwriting the old parent's edge does
        state.repair_parent_edge(["b"], "left")
        assert state.is_valid()

    def test_join_keeps_violations_from_either_side(self):
        a = ValidationState([Violation("cycle", "T", "f", new_parent="x")])
        b = ValidationState()
        joined = a.join(b)
        assert len(joined) == 1
        assert not joined.equivalent(b)
        assert "cycle" in str(joined)
        assert str(b) == "valid"


class TestSummaryEdgeCases:
    def test_returns_null_function(self):
        program = merged_into("function nothing(p) { p->coef = 1; return NULL; }", "ListNode")
        summary = summarize_program(program)["nothing"]
        assert summary.returns_null
        assert not summary.returns_fresh

    def test_locally_fresh_return_is_fresh(self):
        program = merged_into(
            "function make() { var n; n = new ListNode; n->coef = 1; return n; }",
            "ListNode",
        )
        assert summarize_program(program)["make"].returns_fresh

    def test_mutual_recursion_terminates_and_propagates(self):
        source = """
        function even(p, n) { if n == 0 then return p; p->coef = n; return odd(p, n - 1); }
        function odd(p, n) { if n == 0 then return NULL; return even(p->next, n - 1); }
        """
        program = merged_into(source, "ListNode")
        summaries = summarize_program(program)
        assert "coef" in summaries["odd"].data_fields_written  # via even
        assert summaries["even"].callees == {"odd"}

    def test_describe_renders(self):
        program = merged_into("function f(p) { p->coef = 1; return p; }", "ListNode")
        text = summarize_program(program)["f"].describe()
        assert "data fields written" in text and "coef" in text

    def test_summary_is_read_only_flag(self):
        summary = FunctionSummary(name="x")
        assert summary.is_read_only
        summary.data_fields_written.add("v")
        assert not summary.is_read_only


class TestValidationThroughCalls:
    def test_call_to_unanalyzable_shape_changer_invalidates(self):
        source = """
        procedure mangle(p)
        { p->next = p;
        }
        function driver(head)
        { mangle(head);
          return head;
        }
        """
        program = merged_into(source, "ListNode")
        result = analyze_function(program, "mangle")
        assert not result.final_matrix().validation.is_valid_for("ListNode")
        driver = analyze_function(program, "driver")
        # the callee does not preserve the abstraction, so the call site
        # leaves the caller's abstraction invalid too
        assert not driver.final_matrix().validation.is_valid_for("ListNode")

    def test_call_to_clean_builder_keeps_abstraction_valid(self, scale_program):
        result = analyze_function(scale_program, "main")
        assert result.final_matrix().validation.is_valid_for("ListNode")
