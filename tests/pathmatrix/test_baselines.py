"""Tests for the conservative and k-limited baseline analyses, and the alias oracle."""

import pytest

from repro.adds.library import merged_into
from repro.pathmatrix import (
    AliasAnswer,
    AliasOracle,
    ConservativeOracle,
    KLimitedAnalysis,
    KLimitedOracle,
    analyze_loop_dependence,
)
from repro.pathmatrix.alias import AccessPath
from repro.pathmatrix.baseline import conservative_matrix, conservative_matrix_for
from repro.pathmatrix.klimited import SUMMARY, StorageGraph


class TestConservativeBaseline:
    def test_everything_may_alias(self):
        oracle = ConservativeOracle(["a", "b", "c"])
        assert oracle.may_alias("a", "b")
        assert oracle.alias("a", "a") is AliasAnswer.MUST
        assert oracle.precision_score() == 0.0
        assert oracle.not_aliased_pairs() == []

    def test_distinct_fields_never_conflict(self):
        oracle = ConservativeOracle()
        assert not oracle.may_conflict(AccessPath("a", "coef"), AccessPath("b", "next"))
        assert oracle.may_conflict(AccessPath("a", "coef"), AccessPath("b", "coef"))
        assert oracle.may_conflict(AccessPath("a", "*"), AccessPath("b", "coef"))

    def test_conservative_matrix_matches_paper_shape(self, scale_program):
        pm = conservative_matrix_for(scale_program, "scale")
        assert pm.may_alias("head", "p")
        assert not pm.must_alias("head", "p")

    def test_plain_variables_do_not_conflict_with_heap(self):
        oracle = ConservativeOracle()
        assert not oracle.may_conflict(AccessPath("a"), AccessPath("b", "coef"))
        assert oracle.access_conflict(AccessPath("a"), AccessPath("a")) is AliasAnswer.MUST


class TestAliasOracle:
    def test_oracle_over_loop_matrix(self, scale_program):
        report = analyze_loop_dependence(scale_program, "scale")
        oracle = AliasOracle(report.matrix_after_body)
        assert oracle.alias("p", "p'") is AliasAnswer.NO
        assert not oracle.may_conflict(
            AccessPath("p", "coef"), AccessPath("p'", "coef")
        )
        assert oracle.precision_score() > 0.0
        assert ("p", "p'") in [tuple(sorted(x)) for x in oracle.not_aliased_pairs()] or (
            "p'", "p"
        ) in oracle.not_aliased_pairs()

    def test_unknown_variable_is_conservative(self, scale_program):
        report = analyze_loop_dependence(scale_program, "scale")
        oracle = AliasOracle(report.matrix_after_body)
        assert oracle.alias("p", "something_else") is AliasAnswer.MAY


class TestStorageGraph:
    def test_basic_var_tracking(self):
        g = StorageGraph(k=2)
        g.set_var("a", frozenset({"alloc@1:T"}))
        g.set_var("b", frozenset({"alloc@1:T"}))
        g.set_var("c", frozenset({"alloc@2:T"}))
        assert g.may_alias("a", "b")
        assert g.must_alias("a", "b")
        assert not g.may_alias("a", "c")

    def test_summary_nodes_force_may_alias(self):
        g = StorageGraph(k=1)
        g.set_var("a", frozenset({SUMMARY}))
        g.set_var("b", frozenset({SUMMARY}))
        assert g.may_alias("a", "b")
        assert not g.must_alias("a", "b")

    def test_limit_merges_deep_nodes(self):
        g = StorageGraph(k=1)
        g.set_var("a", frozenset({"n0"}))
        g.edges[("n0", "next")] = frozenset({"n1"})
        g.edges[("n1", "next")] = frozenset({"n2"})
        g.limit()
        # n1 is at depth 1 (kept), n2 at depth 2 (merged into the summary)
        assert g.edges[("n1", "next")] == frozenset({SUMMARY})

    def test_join_unions_targets(self):
        a = StorageGraph(k=2)
        a.set_var("p", frozenset({"x"}))
        b = StorageGraph(k=2)
        b.set_var("p", frozenset({"y"}))
        joined = a.join(b)
        assert joined.var_targets["p"] == frozenset({"x", "y"})


class TestKLimitedAnalysis:
    def test_cannot_prove_list_traversal_independent(self, scale_program):
        analysis = KLimitedAnalysis(scale_program, k=2)
        assert not analysis.loop_traversal_independent("scale")

    def test_cannot_prove_even_with_larger_k(self, scale_program):
        # larger k delays but does not remove the summary-node merging,
        # because the list length is unbounded at analysis time
        analysis = KLimitedAnalysis(scale_program, k=4)
        assert not analysis.loop_traversal_independent("scale")

    def test_distinguishes_fresh_allocations_in_straight_line_code(self):
        program = merged_into(
            """
            function f()
            { var a; var b;
              a = new ListNode;
              b = new ListNode;
              a->next = b;
              return a;
            }
            """,
            "ListNode",
        )
        analysis = KLimitedAnalysis(program, k=2)
        state = analysis.final_state("f")
        assert not state.may_alias("a", "b")
        oracle = KLimitedOracle(state)
        assert oracle.alias("a", "b") is AliasAnswer.NO
        assert oracle.precision_score() > 0.0

    def test_oracle_field_conflicts(self, scale_program):
        analysis = KLimitedAnalysis(scale_program, k=2)
        oracle = KLimitedOracle(analysis.state_before_loop("scale"))
        # distinct fields never conflict even under the summary node
        assert not oracle.may_conflict(AccessPath("p", "coef"), AccessPath("head", "next"))

    def test_barnes_hut_loops_not_parallelizable_by_klimited(self, bh_program):
        analysis = KLimitedAnalysis(bh_program, k=2)
        assert not analysis.loop_traversal_independent("bh_force_pass")
