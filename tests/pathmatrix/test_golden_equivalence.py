"""Golden equivalence: the worklist engine must reproduce the seed engine.

The worklist solver skips work; it must never change answers.  These tests
run both fixpoint engines over every paper example program, the generated
stress programs, and a population of randomly generated small CFGs, and
assert the resulting matrices are ``equivalent()`` at every program point —
including identical may/must-alias answers and validation states.
"""

from __future__ import annotations

import pytest

from repro.adds.library import merged_into
from repro.bench.figures import POLYNOMIAL_SCALE_SRC, SUBTREE_MOVE_SRC
from repro.bench.stress import deep_program, random_program, wide_program
from repro.nbody.toy_program import barnes_hut_toy_program
from repro.pathmatrix import PathMatrixAnalysis, baseline_roundrobin


def assert_solvers_agree(program, function_name: str, use_adds: bool = True):
    analysis = PathMatrixAnalysis(program, use_adds=use_adds)
    rr = analysis.analyze_function(function_name, solver="roundrobin")
    wl = analysis.analyze_function(function_name, solver="worklist")

    assert set(rr.entry_matrices) == set(wl.entry_matrices), function_name
    assert set(rr.exit_matrices) == set(wl.exit_matrices), function_name
    for which, rr_side, wl_side in (
        ("entry", rr.entry_matrices, wl.entry_matrices),
        ("exit", rr.exit_matrices, wl.exit_matrices),
    ):
        for idx, rr_pm in rr_side.items():
            wl_pm = wl_side[idx]
            assert rr_pm.equivalent(wl_pm), (
                f"{function_name}: {which} matrix of block {idx} differs"
            )

    # identical alias answers and validation state at the exit point
    rr_final, wl_final = rr.final_matrix(), wl.final_matrix()
    variables = sorted(set(rr_final.variables) | {"<unknown>"})
    for a in variables:
        for b in variables:
            assert rr_final.may_alias(a, b) == wl_final.may_alias(a, b), (a, b)
            assert rr_final.must_alias(a, b) == wl_final.must_alias(a, b), (a, b)
    assert rr_final.validation.equivalent(wl_final.validation)
    assert sorted(map(str, rr.violations())) == sorted(map(str, wl.violations()))
    return rr, wl


class TestPaperExamplePrograms:
    def test_polynomial_scaling_loop(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        assert_solvers_agree(program, "scale")

    def test_polynomial_scaling_loop_without_adds(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        assert_solvers_agree(program, "scale", use_adds=False)

    def test_subtree_move(self):
        program = merged_into(SUBTREE_MOVE_SRC, "BinTree")
        assert_solvers_agree(program, "move_subtree")

    def test_every_barnes_hut_function(self):
        program = barnes_hut_toy_program()
        for func in program.functions:
            assert_solvers_agree(program, func.name)


class TestStressPrograms:
    def test_wide_program(self):
        assert_solvers_agree(wide_program(30), "stress")

    def test_deep_program(self):
        assert_solvers_agree(deep_program(4, 4, 12), "deep")


class TestRandomPrograms:
    """Property-style sweep over randomly generated small CFGs."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_program_equivalence(self, seed):
        program = random_program(seed)
        assert_solvers_agree(program, "chaos")

    @pytest.mark.parametrize("seed", range(10))
    def test_random_program_equivalence_without_adds(self, seed):
        program = random_program(seed, num_statements=10)
        assert_solvers_agree(program, "chaos", use_adds=False)


class TestWorkAccounting:
    """The satellite requirement: solver effort is observable and ordered."""

    ACYCLIC_SRC = """
    function straight(a, b)
    { var p; var q;
      p = a;
      q = p->next;
      if a <> NULL
      { p = q->next; }
      else
      { p = b; }
      p->coef = 1;
      return p;
    }
    """

    def test_worklist_strictly_less_work_on_acyclic_cfg(self):
        program = merged_into(self.ACYCLIC_SRC, "ListNode")
        analysis = PathMatrixAnalysis(program)
        rr = analysis.analyze_function("straight", solver="roundrobin")
        wl = analysis.analyze_function("straight", solver="worklist")
        assert rr.blocks_transferred > 0 and wl.blocks_transferred > 0
        assert wl.blocks_transferred < rr.blocks_transferred
        assert wl.iterations <= rr.iterations

    def test_worklist_never_more_transfers_with_loops(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        analysis = PathMatrixAnalysis(program)
        rr = analysis.analyze_function("scale", solver="roundrobin")
        wl = analysis.analyze_function("scale", solver="worklist")
        assert wl.blocks_transferred <= rr.blocks_transferred

    def test_solver_is_recorded_on_results(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        analysis = PathMatrixAnalysis(program)
        assert analysis.analyze_function("scale").solver == "worklist"
        assert (
            analysis.analyze_function("scale", solver="roundrobin").solver
            == "roundrobin"
        )

    def test_unknown_solver_rejected(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        with pytest.raises(ValueError):
            PathMatrixAnalysis(program).analyze_function("scale", solver="magic")

    def test_baseline_roundrobin_convenience(self):
        program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
        result = baseline_roundrobin(program, "scale")
        assert result.solver == "roundrobin"
        assert result.iterations >= 1
