"""Pickling guarantees for the analysis value types.

The batch driver fans function analyses out across a ``multiprocessing``
pool and memoizes results on disk, so matrices, entries, and whole
:class:`AnalysisResult` objects must survive a pickle round-trip — and the
interned singletons (``EMPTY_ENTRY`` above all) must come back *as the
canonical objects*, not as corrupted or duplicate instances.
"""

import pickle

from repro.adds.library import merged_into
from repro.pathmatrix import (
    EMPTY_ENTRY,
    PathEntry,
    PathMatrix,
    PathMatrixAnalysis,
    Relation,
    summarize_program,
)
from repro.pathmatrix.interproc import FunctionSummary


class TestEntryInterning:
    def test_empty_entry_round_trips_to_the_singleton(self):
        restored = pickle.loads(pickle.dumps(EMPTY_ENTRY))
        assert restored is EMPTY_ENTRY
        # the singleton must be untouched by the round-trip
        assert EMPTY_ENTRY.is_empty()

    def test_nonempty_entries_reintern(self):
        entry = PathEntry([Relation.path("next", plus=True), Relation.alias(False)])
        restored = pickle.loads(pickle.dumps(entry))
        assert restored is entry

    def test_relations_reintern(self):
        rel = Relation.path("left", plus=False, definite=False)
        assert pickle.loads(pickle.dumps(rel)) is Relation.make(
            "path", "left", False, False
        )


class TestMatrixAndResultPickling:
    def _analyze(self, scale_program):
        return PathMatrixAnalysis(scale_program).analyze_function("scale")

    def test_matrix_round_trip_preserves_facts(self, scale_program):
        result = self._analyze(scale_program)
        pm = result.final_matrix()
        restored = pickle.loads(pickle.dumps(pm))
        assert isinstance(restored, PathMatrix)
        assert restored.equivalent(pm)
        assert restored.to_table() == pm.to_table()

    def test_analysis_result_round_trip(self, scale_program):
        result = self._analyze(scale_program)
        restored = pickle.loads(pickle.dumps(result))
        assert restored.function == "scale"
        assert restored.iterations == result.iterations
        assert restored.final_matrix().to_table() == result.final_matrix().to_table()
        # the restored context must still drive a fresh analysis correctly
        assert restored.ctx.pointer_vars == result.ctx.pointer_vars

    def test_restored_context_caches_are_reset(self, scale_program):
        result = self._analyze(scale_program)
        restored = pickle.loads(pickle.dumps(result))
        # id()-keyed caches must not leak across the process boundary
        assert restored.ctx._relevance == {}
        assert restored.ctx._temp_names == {}


class TestSummaryExportImport:
    def test_round_trip_is_lossless(self):
        program = merged_into(
            "function f(p, n) { p->coef = n; p->next = NULL; return p; }", "ListNode"
        )
        summary = summarize_program(program)["f"]
        clone = FunctionSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert clone.digest() == summary.digest()

    def test_digest_tracks_content(self):
        a = FunctionSummary(name="f")
        b = FunctionSummary(name="f")
        assert a.digest() == b.digest()
        b.data_fields_written.add("coef")
        assert a.digest() != b.digest()
