"""The paper's worked analysis examples, as acceptance tests (experiments E3–E6)."""

import pytest

from repro.bench.figures import (
    bhl1_pathmatrix_figure,
    polynomial_pathmatrix_figure,
    precision_comparison,
    validation_trace_figure,
)


class TestSection332PolynomialExample:
    """Section 3.3.2: alias analysis of the coefficient-scaling loop."""

    @pytest.fixture(scope="class")
    def figure(self):
        return polynomial_pathmatrix_figure()

    def test_all_paper_claims_hold(self, figure):
        failing = [claim for claim, ok in figure.claims.items() if not ok]
        assert not failing, f"claims not reproduced: {failing}"

    def test_conservative_matrix_marks_head_p_as_potential_aliases(self, figure):
        assert figure.conservative.may_alias("head", "p")

    def test_adds_matrix_proves_iterations_touch_distinct_nodes(self, figure):
        after = figure.with_adds_after_body
        assert not after.may_alias("p", "p'")
        assert any(rel.field == "next" for rel in after.get("p'", "p").paths())

    def test_render_produces_both_matrices(self, figure):
        text = figure.render()
        assert "conservative" in text
        assert "next" in text
        assert "[ok]" in text and "[FAIL]" not in text


class TestSection432BarnesHutExample:
    """Section 4.3.2: the path matrix for BHL1."""

    @pytest.fixture(scope="class")
    def figure(self):
        return bhl1_pathmatrix_figure()

    def test_all_paper_claims_hold(self, figure):
        failing = [claim for claim, ok in figure.claims.items() if not ok]
        assert not failing, f"claims not reproduced: {failing}"

    def test_root_is_still_a_possible_alias(self, figure):
        """The paper: root is a possible alias with all other pointer
        variables — harmless because compute_force uses it read-only."""
        assert figure.with_adds_after_body.may_alias("root", "p")

    def test_traversal_variable_pairs_are_independent(self, figure):
        after = figure.with_adds_after_body
        assert not after.may_alias("p", "p'")


class TestSection21PrecisionComparison:
    """Figures 1/2 behaviourally: ADDS+GPM vs the prior approaches."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return precision_comparison()

    def test_only_adds_gpm_proves_traversal_independence(self, comparison):
        assert comparison.row("ADDS + GPM").proves_traversal_independent
        assert not comparison.row("conservative").proves_traversal_independent
        assert not comparison.row("k-limited (k=2)").proves_traversal_independent

    def test_adds_gpm_is_strictly_more_precise(self, comparison):
        adds = comparison.row("ADDS + GPM")
        assert adds.precision_score > comparison.row("conservative").precision_score
        assert adds.precision_score >= comparison.row("k-limited (k=2)").precision_score
        assert adds.non_alias_pairs >= 1

    def test_render_lists_all_three_analyses(self, comparison):
        text = comparison.render()
        for name in ("conservative", "k-limited", "ADDS + GPM"):
            assert name in text


class TestSection331ValidationExample:
    """Section 3.3.1: the subtree move temporarily breaks the abstraction."""

    @pytest.fixture(scope="class")
    def trace(self):
        return validation_trace_figure()

    def test_broken_after_first_statement(self, trace):
        assert trace.valid_after[0] is False
        assert any("sharing" in v for v in trace.violations_after[0])

    def test_valid_again_after_second_statement(self, trace):
        assert trace.valid_after[1] is True
        assert trace.violations_after[1] == []

    def test_trace_renders(self, trace):
        text = trace.render()
        assert "BROKEN" in text and "valid" in text
