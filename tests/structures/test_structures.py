"""Tests for the pointer data-structure library (section 3's examples)."""

import random

import pytest

from repro.adds import check_heap_against_declaration, declaration
from repro.structures import (
    BigNum,
    BinarySearchTree,
    OneWayList,
    OrthogonalListMatrix,
    PointRegionQuadTree,
    Polynomial,
    RangeTree2D,
    TwoWayList,
)


class TestOneWayList:
    def test_push_front_and_append(self):
        lst = OneWayList()
        lst.append(1)
        lst.push_front(0)
        lst.append(2)
        assert lst.to_list() == [0, 1, 2]
        assert len(lst) == 3

    def test_insert_and_delete_after(self):
        lst = OneWayList.from_iterable([1, 3])
        refs = list(lst.refs())
        lst.insert_after(refs[0], 2)
        assert lst.to_list() == [1, 2, 3]
        lst.delete_after(refs[0])
        assert lst.to_list() == [1, 3]

    def test_map_in_place_is_the_scaling_loop(self):
        lst = OneWayList.from_iterable([451, 10, 4])
        lst.map_in_place(lambda v: v * 3)
        assert lst.to_list() == [1353, 30, 12]


class TestTwoWayList:
    def test_forward_backward_consistency(self):
        values = list(range(10))
        lst = TwoWayList.from_iterable(values)
        assert lst.forward() == values
        assert lst.backward() == list(reversed(values))

    def test_insert_after_updates_both_directions(self):
        lst = TwoWayList.from_iterable([1, 3])
        lst.insert_after(list(lst.forward_refs())[0], 2)
        assert lst.forward() == [1, 2, 3]
        assert lst.backward() == [3, 2, 1]
        assert check_heap_against_declaration(lst.heap, declaration("TwoWayList")) == []

    def test_remove_head_and_tail(self):
        lst = TwoWayList.from_iterable([1, 2, 3])
        refs = list(lst.forward_refs())
        lst.remove(refs[0])
        lst.remove(refs[-1])
        assert lst.forward() == [2]
        assert lst.backward() == [2]


class TestBigNum:
    def test_paper_example_chunking(self):
        num = BigNum.from_int(3_298_991)
        assert num.chunks() == [991, 298, 3]  # reverse order, 3 digits per node
        assert num.to_int() == 3_298_991

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 999), (123456, 789), (10**12, 10**9 + 7)])
    def test_add_matches_python(self, a, b):
        assert BigNum.from_int(a).add(BigNum.from_int(b)).to_int() == a + b

    @pytest.mark.parametrize("a,b", [(0, 5), (999, 999), (123456789, 987654321)])
    def test_multiply_matches_python(self, a, b):
        assert BigNum.from_int(a).multiply(BigNum.from_int(b)).to_int() == a * b

    def test_compare(self):
        assert BigNum.from_int(100).compare(BigNum.from_int(200)) == -1
        assert BigNum.from_int(5000).compare(BigNum.from_int(5000)) == 0
        assert BigNum.from_int(10**9).compare(BigNum.from_int(10**6)) == 1
        assert BigNum.from_int(42) == BigNum.from_int(42)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BigNum.from_int(-1)

    def test_nodes_form_valid_one_way_list(self):
        num = BigNum.from_int(98765432101234)
        assert check_heap_against_declaration(num.heap, declaration("OneWayList")) == []


class TestPolynomial:
    def test_paper_example(self):
        poly = Polynomial.from_terms([(451, 31), (10, 13), (4, 0)])
        assert poly.terms() == [(451, 31), (10, 13), (4, 0)]
        assert poly.degree() == 31
        assert poly.evaluate(1) == 465

    def test_scale_in_place(self):
        poly = Polynomial.from_terms([(2, 3), (5, 1)])
        poly.scale_in_place(4)
        assert poly.to_dict() == {3: 8, 1: 20}

    def test_add_and_multiply(self):
        p = Polynomial.from_terms([(1, 2), (1, 0)])       # x^2 + 1
        q = Polynomial.from_terms([(1, 1), (-1, 0)])      # x - 1
        assert p.add(q).to_dict() == {2: 1, 1: 1}          # x^2 + x (constants cancel... )
        product = p.multiply(q)
        # (x^2+1)(x-1) = x^3 - x^2 + x - 1
        assert product.to_dict() == {3: 1, 2: -1, 1: 1, 0: -1}

    def test_derivative(self):
        poly = Polynomial.from_terms([(3, 4), (2, 1), (7, 0)])
        assert poly.derivative().to_dict() == {3: 12, 0: 2}

    def test_zero_coefficients_dropped(self):
        poly = Polynomial.from_terms([(0, 5), (3, 2), (-3, 2)])
        assert poly.terms() == []
        assert poly.evaluate(10) == 0

    def test_evaluation_matches_horner(self):
        rng = random.Random(0)
        terms = [(rng.randint(-5, 5), e) for e in range(8)]
        poly = Polynomial.from_terms(terms)
        x = 3
        assert poly.evaluate(x) == sum(c * x ** e for c, e in terms)


class TestBinarySearchTree:
    def test_insert_contains_inorder(self):
        values = [50, 30, 70, 20, 40, 60, 80, 35]
        tree = BinarySearchTree.from_iterable(values)
        assert tree.in_order() == sorted(values)
        assert all(tree.contains(v) for v in values)
        assert not tree.contains(999)
        assert tree.size() == len(values)
        assert tree.height() >= 3

    def test_move_left_subtree_preserves_validity(self):
        tree = BinarySearchTree.from_iterable([8, 3, 10, 1, 6])
        node3 = [r for r in tree.refs() if tree.heap.load(r, "data") == 3][0]
        node10 = [r for r in tree.refs() if tree.heap.load(r, "data") == 10][0]
        tree.move_left_subtree(node10, node3)
        assert check_heap_against_declaration(tree.heap, declaration("BinTree")) == []


class TestOrthogonalList:
    def test_dense_round_trip(self):
        dense = [[0, 2, 0, 1], [3, 0, 0, 0], [0, 0, 4, 5]]
        matrix = OrthogonalListMatrix.from_dense(dense)
        assert matrix.to_dense() == dense
        assert matrix.nonzero_count() == 5

    def test_get_set_and_update(self):
        m = OrthogonalListMatrix(3, 3)
        m.set(1, 1, 7)
        m.set(1, 1, 9)
        assert m.get(1, 1) == 9
        assert m.get(0, 0) == 0
        with pytest.raises(IndexError):
            m.get(5, 0)

    def test_row_and_column_traversals_are_sorted(self):
        m = OrthogonalListMatrix(4, 4)
        for r, c, v in [(2, 3, 1), (2, 0, 2), (2, 1, 3), (0, 1, 9), (3, 1, 8)]:
            m.set(r, c, v)
        assert m.row_values(2) == [2, 3, 1]          # by increasing column
        assert m.col_values(1) == [9, 3, 8]          # by increasing row

    def test_matvec_matches_dense(self):
        rng = random.Random(3)
        dense = [[rng.randint(0, 5) if rng.random() < 0.4 else 0 for _ in range(6)] for _ in range(5)]
        m = OrthogonalListMatrix.from_dense(dense)
        vec = [rng.randint(-2, 2) for _ in range(6)]
        expected = [sum(dense[r][c] * vec[c] for c in range(6)) for r in range(5)]
        assert m.matvec(vec) == expected

    def test_scale_row_in_place(self):
        m = OrthogonalListMatrix.from_dense([[1, 2], [3, 4]])
        m.scale_row_in_place(0, 10)
        assert m.to_dense() == [[10, 20], [3, 4]]

    def test_shape_remains_valid_after_updates(self):
        m = OrthogonalListMatrix.from_dense([[1, 0], [0, 2]])
        m.set(0, 1, 5)
        m.set(1, 0, 6)
        assert check_heap_against_declaration(m.heap, declaration("OrthList")) == []


class TestRangeTree:
    POINTS = [(1, 9), (2, 4), (3, 7), (5, 1), (6, 6), (8, 3), (9, 8), (10, 2)]

    def test_rectangle_queries_match_brute_force(self):
        tree = RangeTree2D(self.POINTS)
        rng = random.Random(1)
        for _ in range(20):
            x1, x2 = sorted((rng.randint(0, 11), rng.randint(0, 11)))
            y1, y2 = sorted((rng.randint(0, 10), rng.randint(0, 10)))
            expected = sorted(
                p for p in self.POINTS if x1 <= p[0] <= x2 and y1 <= p[1] <= y2
            )
            assert tree.query_rect(x1, x2, y1, y2) == expected

    def test_x_interval_query(self):
        tree = RangeTree2D(self.POINTS)
        assert tree.query_x(3, 8) == [(3, 7), (5, 1), (6, 6), (8, 3)]

    def test_leaf_list_is_in_x_order(self):
        tree = RangeTree2D(self.POINTS)
        assert tree.primary_leaf_points() == sorted(self.POINTS)

    def test_single_point_tree(self):
        tree = RangeTree2D([(4, 4)])
        assert tree.query_rect(0, 10, 0, 10) == [(4, 4)]
        assert tree.query_rect(5, 10, 0, 10) == []


class TestQuadTree:
    def test_insert_and_count(self):
        qt = PointRegionQuadTree.from_points([(0.1, 0.1), (-0.4, 0.6), (0.8, -0.2)])
        assert qt.count == 3
        assert len(qt.leaf_points()) == 3
        assert qt.total_mass() == pytest.approx(3.0)

    def test_rectangle_filter(self):
        points = [(0.1, 0.1), (-0.4, 0.6), (0.8, -0.2), (0.3, 0.3)]
        qt = PointRegionQuadTree.from_points(points)
        inside = qt.points_in_rect(0.0, 0.5, 0.0, 0.5)
        assert sorted(inside) == [(0.1, 0.1), (0.3, 0.3)]

    def test_close_points_deepen_the_tree(self):
        qt = PointRegionQuadTree.from_points([(0.100, 0.100), (0.101, 0.101)])
        assert qt.depth() > 2
        assert check_heap_against_declaration(qt.heap, declaration("QuadTree")) == []
