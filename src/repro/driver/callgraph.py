"""Call graphs, strongly connected components, and bottom-up schedules.

The paper validates Barnes–Hut *bottom-up over its call graph*: leaf helpers
first, then their callers, so every call site is analyzed with its callees'
summaries already settled.  The batch driver generalizes that discipline to
arbitrary programs: functions are grouped into strongly connected components
(mutual recursion analyzes as a unit), the condensation is scheduled
bottom-up, and components with no ordering constraint between them land in
the same *wave* — the unit of parallel fan-out across the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import Call, Program, iter_statements


@dataclass
class CallGraph:
    """Who calls whom, restricted to functions defined in the program."""

    functions: list[str]
    #: caller -> set of defined callees
    edges: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, name: str) -> set[str]:
        return self.edges.get(name, set())

    def transitive_callees(self, name: str) -> set[str]:
        """Every defined function reachable from ``name`` (excluding itself
        unless it is recursive)."""
        seen: set[str] = set()
        stack = list(self.callees(name))
        while stack:
            callee = stack.pop()
            if callee in seen:
                continue
            seen.add(callee)
            stack.extend(self.callees(callee))
        return seen


def build_call_graph(program: Program) -> CallGraph:
    """The defined-functions call graph of ``program`` (builtins excluded)."""
    defined = {f.name for f in program.functions}
    graph = CallGraph(functions=[f.name for f in program.functions])
    for func in program.functions:
        callees: set[str] = set()
        for stmt in iter_statements(func.body):
            for node in stmt.walk():
                if isinstance(node, Call) and node.func in defined:
                    callees.add(node.func)
        graph.edges[func.name] = callees
    return graph


def strongly_connected_components(graph: CallGraph) -> list[list[str]]:
    """Tarjan's SCCs, iteratively (stress programs nest deeply), emitted
    bottom-up: every component appears before any component that calls it."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in graph.functions:
        if root in index_of:
            continue
        # explicit DFS machine: (node, iterator over its callees)
        work = [(root, iter(sorted(graph.callees(root))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for callee in it:
                if callee not in index_of:
                    index_of[callee] = lowlink[callee] = counter
                    counter += 1
                    stack.append(callee)
                    on_stack.add(callee)
                    work.append((callee, iter(sorted(graph.callees(callee)))))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[callee])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


@dataclass
class Condensation:
    """The SCC condensation of a call graph, ready for dependency-counting.

    The persistent-worker executor schedules *components*, not waves: a
    component becomes runnable the moment its callee components have landed
    (``blockers`` hits zero), so only true call-graph edges ever delay work —
    there is no barrier on unrelated components that happen to share a depth.
    """

    #: components bottom-up (every component before any component calling it)
    sccs: list[list[str]]
    #: function name -> index into ``sccs``
    component_of: dict[str, int] = field(default_factory=dict)
    #: component -> distinct callee components (excluding itself)
    callee_components: dict[int, set[int]] = field(default_factory=dict)
    #: component -> components waiting on it (the reverse edges)
    dependents: dict[int, set[int]] = field(default_factory=dict)

    def initial_blockers(self) -> dict[int, int]:
        """Per-component count of not-yet-landed callee components.

        The scheduler decrements a dependent's count as each component
        lands; zero means runnable.  Returned fresh so one condensation can
        drive many runs.
        """
        return {i: len(self.callee_components[i]) for i in range(len(self.sccs))}

    def bottom_up_depth(self) -> dict[int, int]:
        """Longest callee-chain length per component (0 for leaves)."""
        depth: dict[int, int] = {}
        for i in range(len(self.sccs)):  # bottom-up, so callee depths exist
            callees = self.callee_components[i]
            depth[i] = 1 + max((depth[c] for c in callees), default=-1)
        return depth

    def waves(self) -> list[list[list[str]]]:
        """Components grouped by bottom-up depth (the reports' schedule view)."""
        depth = self.bottom_up_depth()
        waves: list[list[list[str]]] = []
        for i, scc in enumerate(self.sccs):
            d = depth[i]
            while len(waves) <= d:
                waves.append([])
            waves[d].append(scc)
        return waves


def condense(graph: CallGraph) -> Condensation:
    """Build the bottom-up SCC condensation with dependency edges."""
    sccs = strongly_connected_components(graph)
    cond = Condensation(sccs=sccs)
    for i, scc in enumerate(sccs):
        for name in scc:
            cond.component_of[name] = i
    for i, scc in enumerate(sccs):
        callees = {
            cond.component_of[callee]
            for name in scc
            for callee in graph.callees(name)
        }
        callees.discard(i)
        cond.callee_components[i] = callees
        cond.dependents.setdefault(i, set())
        for c in callees:
            cond.dependents.setdefault(c, set()).add(i)
    return cond


def bottom_up_waves(graph: CallGraph) -> list[list[list[str]]]:
    """Group SCCs into waves: wave ``k`` holds the components whose callees
    all live in waves ``< k``.  Components within one wave are independent
    of each other and may be analyzed in parallel.  (The executor schedules
    by ready-count, not by wave; waves remain the human-readable schedule
    the reports show.)"""
    return condense(graph).waves()
