"""Call graphs, strongly connected components, and bottom-up schedules.

The paper validates Barnes–Hut *bottom-up over its call graph*: leaf helpers
first, then their callers, so every call site is analyzed with its callees'
summaries already settled.  The batch driver generalizes that discipline to
arbitrary programs: functions are grouped into strongly connected components
(mutual recursion analyzes as a unit), the condensation is scheduled
bottom-up, and components with no ordering constraint between them land in
the same *wave* — the unit of parallel fan-out across the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import Call, Program, iter_statements


@dataclass
class CallGraph:
    """Who calls whom, restricted to functions defined in the program."""

    functions: list[str]
    #: caller -> set of defined callees
    edges: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, name: str) -> set[str]:
        return self.edges.get(name, set())

    def transitive_callees(self, name: str) -> set[str]:
        """Every defined function reachable from ``name`` (excluding itself
        unless it is recursive)."""
        seen: set[str] = set()
        stack = list(self.callees(name))
        while stack:
            callee = stack.pop()
            if callee in seen:
                continue
            seen.add(callee)
            stack.extend(self.callees(callee))
        return seen


def build_call_graph(program: Program) -> CallGraph:
    """The defined-functions call graph of ``program`` (builtins excluded)."""
    defined = {f.name for f in program.functions}
    graph = CallGraph(functions=[f.name for f in program.functions])
    for func in program.functions:
        callees: set[str] = set()
        for stmt in iter_statements(func.body):
            for node in stmt.walk():
                if isinstance(node, Call) and node.func in defined:
                    callees.add(node.func)
        graph.edges[func.name] = callees
    return graph


def strongly_connected_components(graph: CallGraph) -> list[list[str]]:
    """Tarjan's SCCs, iteratively (stress programs nest deeply), emitted
    bottom-up: every component appears before any component that calls it."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in graph.functions:
        if root in index_of:
            continue
        # explicit DFS machine: (node, iterator over its callees)
        work = [(root, iter(sorted(graph.callees(root))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for callee in it:
                if callee not in index_of:
                    index_of[callee] = lowlink[callee] = counter
                    counter += 1
                    stack.append(callee)
                    on_stack.add(callee)
                    work.append((callee, iter(sorted(graph.callees(callee)))))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[callee])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def bottom_up_waves(graph: CallGraph) -> list[list[list[str]]]:
    """Group SCCs into waves: wave ``k`` holds the components whose callees
    all live in waves ``< k``.  Components within one wave are independent
    of each other and may be analyzed in parallel."""
    sccs = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for name in scc:
            component_of[name] = i

    depth: dict[int, int] = {}
    for i, scc in enumerate(sccs):  # bottom-up, so callee depths are ready
        callee_depths = [
            depth[component_of[callee]]
            for name in scc
            for callee in graph.callees(name)
            if component_of[callee] != i
        ]
        depth[i] = 1 + max(callee_depths, default=-1)

    waves: list[list[list[str]]] = []
    for i, scc in enumerate(sccs):
        d = depth[i]
        while len(waves) <= d:
            waves.append([])
        waves[d].append(scc)
    return waves
