"""On-disk memoization of per-function analysis results.

A function's cached report is keyed by a content hash of everything that can
influence it: the analysis version and options, the program's type
declarations (ADDS information changes verdicts), the function's own
unparsed AST, and — per the bottom-up interprocedural discipline — the
unparsed bodies of every transitive callee.  (Callee *bodies*, not just
their side-effect summaries: derived verdicts such as abstraction
preservation are settled by later analysis passes over the body, and the
summaries themselves are a function of the hashed bodies and types anyway.)
Editing a leaf invalidates its whole caller chain; editing an unrelated
function invalidates nothing else.

Entries are stored wrapped with a SHA-256 checksum of the canonical-JSON
payload.  A truncated, garbled, or bit-flipped file — crashed writer, bad
sector, an overeager ``sed`` — is therefore *detected* at read time, evicted
from disk, and counted, and the function is simply re-analyzed; it can never
feed a corrupt report into a batch.  Reads that raise :class:`OSError`
(flaky network filesystems) are retried once before being treated as a
miss.  ``verify()`` audits the whole directory on demand (the ``repro cache
verify`` subcommand).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.lang.ast_nodes import Program
from repro.lang.pretty import unparse

from repro.driver.callgraph import CallGraph
from repro.driver.faults import active_plan

#: bump when the per-function report schema or analysis semantics change
#: (2: parallel-for gained the sequential for's step/descending/re-read
#: semantics, so cached simulation reports from version 1 may be stale)
CACHE_VERSION = 5  # v5: per-function status field + checksummed entries


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def program_digest(source: str, options_key: str) -> str:
    """Cache key for whole-program stages (the simulation report)."""
    return _sha("program", str(CACHE_VERSION), options_key, source)


def function_digests(
    program: Program,
    graph: CallGraph,
    options_key: str,
) -> dict[str, str]:
    """Per-function cache keys: own AST hash + transitive callee body hashes."""
    types_src = "\n".join(unparse(t) for t in program.types)
    unparsed = {f.name: unparse(f) for f in program.functions}
    body_digests = {name: _sha("body", src) for name, src in unparsed.items()}
    digests: dict[str, str] = {}
    for func in program.functions:
        callees = sorted(graph.transitive_callees(func.name))
        callee_part = ";".join(
            f"{c}:{body_digests.get(c, '?')}" for c in callees
        )
        digests[func.name] = _sha(
            "function",
            str(CACHE_VERSION),
            options_key,
            # diagnostics in the cached report carry absolute source lines,
            # so a byte-identical function at a different offset (e.g. the
            # same helper pasted into two corpus files) must not share a key
            str(func.line or 0),
            types_src,
            unparsed[func.name],
            callee_part,
        )
    return digests


class CorruptEntryError(ValueError):
    """A cache file failed its integrity check."""


def _payload_checksum(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def encode_entry(payload: dict) -> str:
    """Wrap ``payload`` with its checksum for on-disk storage."""
    return json.dumps(
        {"sha256": _payload_checksum(payload), "payload": payload},
        indent=1,
        sort_keys=True,
    )


def decode_entry(text: str) -> dict:
    """Unwrap a stored entry, raising :class:`CorruptEntryError` if it is
    truncated, not a checksum wrapper, or fails the checksum."""
    try:
        wrapper = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptEntryError(f"not valid JSON ({exc})") from None
    if not isinstance(wrapper, dict) or set(wrapper) != {"payload", "sha256"}:
        raise CorruptEntryError("missing checksum wrapper")
    if _payload_checksum(wrapper["payload"]) != wrapper["sha256"]:
        raise CorruptEntryError("checksum mismatch")
    return wrapper["payload"]


class ResultCache:
    """A flat directory of ``<digest>.json`` checksummed report payloads.

    ``directory=None`` disables the cache (every lookup misses, nothing is
    written) so the driver code has a single code path.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0  # corrupt entries detected and removed
        self.io_retries = 0  # reads that failed once and were retried
        #: payloads already read (or written) this run; ``preload`` fills it
        #: in bulk so the scheduler's per-function probes are dict lookups
        self._memory: dict[str, dict] = {}
        #: per-key read-attempt counts (drives deterministic transient-I/O
        #: fault injection; harmless bookkeeping otherwise)
        self._read_attempts: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _load(self, key: str) -> dict | None:
        """Read + integrity-check one entry: transient ``OSError`` reads are
        retried once; a corrupt entry is evicted from disk; both (and a
        missing file) come back as ``None`` — i.e. a miss, re-analyze."""
        path = self._path(key)
        plan = active_plan()
        for final in (False, True):
            attempt = self._read_attempts.get(key, 0)
            self._read_attempts[key] = attempt + 1
            try:
                if plan.should_io_error(key, attempt):
                    raise OSError(f"injected transient I/O error reading {path.name}")
                text = path.read_text()
            except FileNotFoundError:
                return None
            except OSError:
                if final:
                    return None
                self.io_retries += 1
                continue
            try:
                return decode_entry(text)
            except CorruptEntryError:
                self.evictions += 1
                path.unlink(missing_ok=True)
                return None
        return None

    def preload(self, keys) -> int:
        """Bulk-load ``keys`` into the in-memory layer; returns how many hit.

        The batch scheduler probes every function of a corpus up front; one
        preload turns those probes (and a fully warm re-run) into dict
        lookups instead of per-function file reads.  Counts neither hits nor
        misses — the probes themselves do, via :meth:`get`.
        """
        if self.directory is None:
            return 0
        loaded = 0
        for key in keys:
            if key in self._memory:
                loaded += 1
                continue
            payload = self._load(key)
            if payload is not None:
                self._memory[key] = payload
                loaded += 1
        return loaded

    def get(self, key: str) -> dict | None:
        if self.directory is None:
            self.misses += 1
            return None
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        payload = self._load(key)
        if payload is None:
            self.misses += 1
            return None
        self._memory[key] = payload
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        if self.directory is None:
            return
        self._memory[key] = payload
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        text = encode_entry(payload)
        if active_plan().should_corrupt_cache(key, self.writes):
            # simulate a torn write: publish a truncated, garbled entry (the
            # in-memory copy above stays good — corruption bites the *next*
            # process, exactly like the real failure)
            text = text[: max(8, len(text) // 2)] + '"<<torn write>>'
        # per-process tmp name: two runs racing on the same key must not
        # share a scratch file, or one publishes the other's torn write
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(text)
        try:
            tmp.replace(path)  # atomic publish: concurrent runs see full files
        except OSError:
            # a concurrent `cache --clear` swept our scratch file; the cache
            # is best-effort, so losing one write must not abort the batch
            return
        self.writes += 1

    def verify(self, evict: bool = False) -> dict:
        """Audit every entry on disk against its checksum.

        Returns ``{"checked", "ok", "corrupt": [{"file", "error"}, ...],
        "evicted"}``; with ``evict=True`` corrupt files are also removed (and
        counted in :attr:`evictions`) so the next run re-analyzes them.
        """
        report: dict = {"checked": 0, "ok": 0, "corrupt": [], "evicted": 0}
        if self.directory is None or not self.directory.exists():
            return report
        for path in sorted(self.directory.glob("*.json")):
            report["checked"] += 1
            try:
                decode_entry(path.read_text())
            except (OSError, CorruptEntryError) as exc:
                report["corrupt"].append({"file": path.name, "error": str(exc)})
                if evict:
                    path.unlink(missing_ok=True)
                    self._memory.pop(path.stem, None)
                    self.evictions += 1
                    report["evicted"] += 1
            else:
                report["ok"] += 1
        return report

    def clear(self) -> int:
        """Delete every cached payload; returns the number removed."""
        self._memory.clear()
        if self.directory is None or not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        # scratch files orphaned by a crashed writer (pid-suffixed, so a
        # later run never reuses them)
        for tmp in self.directory.glob("*.tmp"):
            tmp.unlink(missing_ok=True)
        return removed

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "directory": str(self.directory) if self.directory else None,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "io_retries": self.io_retries,
        }
