"""On-disk, content-addressed artifact store for the staged analysis engine.

Each pipeline stage (typecheck verdict, function summary, fixpoint/validation
report, loop classes, transform applicability, assembled report, simulation,
manifest) stores its output as a separately addressed artifact under a
per-stage subdirectory: ``<dir>/<stage>/<digest>.json``.  A stage's digest
covers everything that can influence its output: the cache version, the
analysis options, the program's type declarations (ADDS information changes
verdicts), the function's own unparsed AST — and, per the bottom-up
interprocedural discipline, the *artifact digests* of its direct callees'
summary stage rather than their bodies.  That indirection is the early-cutoff
firewall: editing a leaf in a way that leaves its summary artifact
byte-identical leaves every caller's keys untouched, so callers are reused
without being re-analyzed.

Stored payloads are *line-relative* (diagnostic line numbers are rebased to
the function's first line), so byte-identical function bodies at different
file offsets share one entry; the driver re-absolutizes on probe.

Entries are stored wrapped with a SHA-256 checksum of the canonical-JSON
payload.  A truncated, garbled, or bit-flipped file — crashed writer, bad
sector, an overeager ``sed`` — is therefore *detected* at read time, evicted
from disk, and counted, and the stage is simply recomputed; it can never
feed a corrupt artifact into a batch.  Reads that raise :class:`OSError`
(flaky network filesystems) are retried once before being treated as a
miss.  ``verify()`` audits every stage directory on demand (the ``repro
cache verify`` subcommand).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.lang.ast_nodes import Program
from repro.lang.pretty import unparse

from repro.driver.callgraph import CallGraph
from repro.driver.faults import active_plan

#: bump when the per-function report schema or analysis semantics change
#: (2: parallel-for gained the sequential for's step/descending/re-read
#: semantics, so cached simulation reports from version 1 may be stale)
CACHE_VERSION = 6  # v6: staged artifact store + line-relative payloads

#: stage namespaces of the artifact store, one subdirectory each
STAGES = (
    "parse",
    "typecheck",
    "summary",
    "analysis",
    "loops",
    "transforms",
    "report",
    "sim",
    "manifest",
)

#: name of the (unchecksummed) per-run counter ledger at the store top level
LEDGER_NAME = "last-run.json"


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def program_digest(source: str, options_key: str) -> str:
    """Cache key for whole-program stages (the simulation report)."""
    return _sha("program", str(CACHE_VERSION), options_key, source)


def function_digests(
    program: Program,
    graph: CallGraph,
    options_key: str,
) -> dict[str, str]:
    """Per-function cache keys: own AST hash + transitive callee body hashes.

    This is the *legacy* (parallel-path) keying: callee bodies, not summary
    digests, so editing a leaf invalidates its whole caller chain.  The
    staged engine's keys (see :mod:`repro.driver.stages`) firewall callers
    through callee summary artifacts instead.  Stored payloads are
    line-relative, so the function's file offset is deliberately *not* an
    ingredient — byte-identical bodies at different offsets share one entry.
    """
    types_src = "\n".join(unparse(t) for t in program.types)
    unparsed = {f.name: unparse(f) for f in program.functions}
    body_digests = {name: _sha("body", src) for name, src in unparsed.items()}
    digests: dict[str, str] = {}
    for func in program.functions:
        callees = sorted(graph.transitive_callees(func.name))
        callee_part = ";".join(
            f"{c}:{body_digests.get(c, '?')}" for c in callees
        )
        digests[func.name] = _sha(
            "function",
            str(CACHE_VERSION),
            options_key,
            types_src,
            unparsed[func.name],
            callee_part,
        )
    return digests


class CorruptEntryError(ValueError):
    """A cache file failed its integrity check."""


def payload_digest(payload: dict) -> str:
    """SHA-256 of the canonical JSON of ``payload``.

    Doubles as the integrity checksum of stored entries and as the artifact
    digest callers fold into their own stage keys (the firewall test is
    "is the callee's artifact byte-identical?" — i.e. digest-identical).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# retained name: the checksum and the artifact digest are the same hash
_payload_checksum = payload_digest


def encode_entry(payload: dict) -> str:
    """Wrap ``payload`` with its checksum for on-disk storage."""
    return json.dumps(
        {"sha256": _payload_checksum(payload), "payload": payload},
        indent=1,
        sort_keys=True,
    )


def decode_entry(text: str) -> dict:
    """Unwrap a stored entry, raising :class:`CorruptEntryError` if it is
    truncated, not a checksum wrapper, or fails the checksum."""
    try:
        wrapper = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptEntryError(f"not valid JSON ({exc})") from None
    if not isinstance(wrapper, dict) or set(wrapper) != {"payload", "sha256"}:
        raise CorruptEntryError("missing checksum wrapper")
    if _payload_checksum(wrapper["payload"]) != wrapper["sha256"]:
        raise CorruptEntryError("checksum mismatch")
    return wrapper["payload"]


class ResultCache:
    """A per-stage tree of ``<stage>/<digest>.json`` checksummed payloads.

    ``directory=None`` disables the store (every lookup misses, nothing is
    written) so the driver code has a single code path.  All read/write
    methods take a ``stage`` namespace; the default ``"report"`` stage keeps
    the legacy single-blob callers working unchanged.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0  # corrupt entries detected and removed
        self.io_retries = 0  # reads that failed once and were retried
        #: per-stage {"hits", "misses", "writes"} counters
        self.stage_counters: dict[str, dict[str, int]] = {}
        #: payloads already read (or written) this run, keyed (stage, key);
        #: ``preload`` fills it in bulk so the scheduler's per-function
        #: probes are dict lookups
        self._memory: dict[tuple[str, str], dict] = {}
        #: per-key read-attempt counts (drives deterministic transient-I/O
        #: fault injection; harmless bookkeeping otherwise)
        self._read_attempts: dict[tuple[str, str], int] = {}

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _counters(self, stage: str) -> dict[str, int]:
        counters = self.stage_counters.get(stage)
        if counters is None:
            counters = self.stage_counters[stage] = {
                "hits": 0, "misses": 0, "writes": 0,
            }
        return counters

    def _path(self, key: str, stage: str) -> Path:
        assert self.directory is not None
        return self.directory / stage / f"{key}.json"

    def _load(self, key: str, stage: str) -> dict | None:
        """Read + integrity-check one entry: transient ``OSError`` reads are
        retried once; a corrupt entry is evicted from disk; both (and a
        missing file) come back as ``None`` — i.e. a miss, recompute."""
        path = self._path(key, stage)
        plan = active_plan()
        for final in (False, True):
            attempt = self._read_attempts.get((stage, key), 0)
            self._read_attempts[(stage, key)] = attempt + 1
            try:
                if plan.should_io_error(key, attempt):
                    raise OSError(f"injected transient I/O error reading {path.name}")
                text = path.read_text()
            except FileNotFoundError:
                return None
            except OSError:
                if final:
                    return None
                self.io_retries += 1
                continue
            try:
                return decode_entry(text)
            except CorruptEntryError:
                self.evictions += 1
                path.unlink(missing_ok=True)
                return None
        return None

    def preload(self, keys, stage: str = "report") -> int:
        """Bulk-load ``keys`` into the in-memory layer; returns how many hit.

        The batch scheduler probes every function of a corpus up front; one
        preload turns those probes (and a fully warm re-run) into dict
        lookups instead of per-function file reads.  Counts neither hits nor
        misses — the probes themselves do, via :meth:`get`.
        """
        if self.directory is None:
            return 0
        loaded = 0
        for key in keys:
            if (stage, key) in self._memory:
                loaded += 1
                continue
            payload = self._load(key, stage)
            if payload is not None:
                self._memory[(stage, key)] = payload
                loaded += 1
        return loaded

    def get(self, key: str, stage: str = "report") -> dict | None:
        counters = self._counters(stage)
        if self.directory is None:
            self.misses += 1
            counters["misses"] += 1
            return None
        cached = self._memory.get((stage, key))
        if cached is not None:
            self.hits += 1
            counters["hits"] += 1
            return cached
        payload = self._load(key, stage)
        if payload is None:
            self.misses += 1
            counters["misses"] += 1
            return None
        self._memory[(stage, key)] = payload
        self.hits += 1
        counters["hits"] += 1
        return payload

    def put(self, key: str, payload: dict, stage: str = "report") -> None:
        if self.directory is None:
            return
        self._memory[(stage, key)] = payload
        path = self._path(key, stage)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = encode_entry(payload)
        if active_plan().should_corrupt_cache(key, self.writes):
            # simulate a torn write: publish a truncated, garbled entry (the
            # in-memory copy above stays good — corruption bites the *next*
            # process, exactly like the real failure)
            text = text[: max(8, len(text) // 2)] + '"<<torn write>>'
        # per-process tmp name: two runs racing on the same key must not
        # share a scratch file, or one publishes the other's torn write
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(text)
        try:
            tmp.replace(path)  # atomic publish: concurrent runs see full files
        except OSError:
            # a concurrent `cache --clear` swept our scratch file; the cache
            # is best-effort, so losing one write must not abort the batch
            return
        self.writes += 1
        self._counters(stage)["writes"] += 1

    # -- maintenance ---------------------------------------------------------
    def _stage_dirs(self):
        """Existing stage subdirectories (quarantine/ and the ledger are not
        checksummed artifacts and must not be audited as such)."""
        if self.directory is None:
            return
        for stage in STAGES:
            stage_dir = self.directory / stage
            if stage_dir.is_dir():
                yield stage, stage_dir

    def verify(self, evict: bool = False) -> dict:
        """Audit every artifact on disk against its checksum.

        Returns ``{"checked", "ok", "corrupt": [{"file", "error"}, ...],
        "evicted"}``; with ``evict=True`` corrupt files are also removed (and
        counted in :attr:`evictions`) so the next run recomputes them.
        """
        report: dict = {"checked": 0, "ok": 0, "corrupt": [], "evicted": 0}
        for stage, stage_dir in self._stage_dirs():
            for path in sorted(stage_dir.glob("*.json")):
                report["checked"] += 1
                try:
                    decode_entry(path.read_text())
                except (OSError, CorruptEntryError) as exc:
                    report["corrupt"].append(
                        {"file": f"{stage}/{path.name}", "error": str(exc)}
                    )
                    if evict:
                        path.unlink(missing_ok=True)
                        self._memory.pop((stage, path.stem), None)
                        self.evictions += 1
                        report["evicted"] += 1
                else:
                    report["ok"] += 1
        return report

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        self._memory.clear()
        if self.directory is None or not self.directory.exists():
            return 0
        removed = 0
        for _, stage_dir in self._stage_dirs():
            for path in stage_dir.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            # scratch files orphaned by a crashed writer (pid-suffixed, so a
            # later run never reuses them)
            for tmp in stage_dir.glob("*.tmp"):
                tmp.unlink(missing_ok=True)
        # pre-v6 flat entries and the counter ledger live at the top level
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            if path.name != LEDGER_NAME:
                removed += 1
        for tmp in self.directory.glob("*.tmp"):
            tmp.unlink(missing_ok=True)
        return removed

    def entry_count(self, stage: str | None = None) -> int:
        """Artifacts on disk, in one ``stage`` or across all stages."""
        total = 0
        for name, stage_dir in self._stage_dirs():
            if stage is not None and name != stage:
                continue
            total += sum(1 for _ in stage_dir.glob("*.json"))
        return total

    def disk_usage(self, stage: str | None = None) -> int:
        """Bytes on disk, in one ``stage`` or across all stages."""
        total = 0
        for name, stage_dir in self._stage_dirs():
            if stage is not None and name != stage:
                continue
            for path in stage_dir.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    # -- the run ledger (for `repro cache stats`) ----------------------------
    def write_ledger(self, extra: dict | None = None) -> None:
        """Persist this run's counters (plus ``extra``) to the store.

        Best-effort and unchecksummed — the ledger is informational (the
        ``repro cache stats`` subcommand's hit/firewall rates), never an
        input to analysis.
        """
        if self.directory is None:
            return
        payload = dict(self.stats())
        if extra:
            payload.update(extra)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.directory / f"{LEDGER_NAME}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
            tmp.replace(self.directory / LEDGER_NAME)
        except OSError:
            return

    def read_ledger(self) -> dict | None:
        if self.directory is None:
            return None
        try:
            return json.loads((self.directory / LEDGER_NAME).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "directory": str(self.directory) if self.directory else None,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "io_retries": self.io_retries,
            "stages": {
                stage: dict(counters)
                for stage, counters in sorted(self.stage_counters.items())
            },
        }


#: the staged engine's preferred name for the same store
ArtifactStore = ResultCache
