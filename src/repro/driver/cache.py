"""On-disk memoization of per-function analysis results.

A function's cached report is keyed by a content hash of everything that can
influence it: the analysis version and options, the program's type
declarations (ADDS information changes verdicts), the function's own
unparsed AST, and — per the bottom-up interprocedural discipline — the
side-effect summary digests of every transitive callee.  Editing a leaf
invalidates its whole caller chain; editing a comment-free unrelated
function invalidates nothing else.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lang.ast_nodes import Program
from repro.lang.pretty import unparse
from repro.pathmatrix.interproc import FunctionSummary

from repro.driver.callgraph import CallGraph

#: bump when the per-function report schema or analysis semantics change
CACHE_VERSION = 1


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def program_digest(source: str, options_key: str) -> str:
    """Cache key for whole-program stages (the simulation report)."""
    return _sha("program", str(CACHE_VERSION), options_key, source)


def function_digests(
    program: Program,
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    options_key: str,
) -> dict[str, str]:
    """Per-function cache keys: AST hash + transitive callee summary hashes."""
    types_src = "\n".join(unparse(t) for t in program.types)
    summary_digests = {
        name: summary.digest() for name, summary in summaries.items()
    }
    digests: dict[str, str] = {}
    for func in program.functions:
        callees = sorted(graph.transitive_callees(func.name))
        callee_part = ";".join(
            f"{c}:{summary_digests.get(c, '?')}" for c in callees
        )
        digests[func.name] = _sha(
            "function",
            str(CACHE_VERSION),
            options_key,
            types_src,
            unparse(func),
            callee_part,
        )
    return digests


class ResultCache:
    """A flat directory of ``<digest>.json`` report payloads.

    ``directory=None`` disables the cache (every lookup misses, nothing is
    written) so the driver code has a single code path.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        if self.directory is None:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)  # atomic publish: concurrent runs see full files
        self.writes += 1

    def clear(self) -> int:
        """Delete every cached payload; returns the number removed."""
        if self.directory is None or not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "directory": str(self.directory) if self.directory else None,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
