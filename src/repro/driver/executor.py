"""Persistent-worker execution for the batch driver.

The PR-5 driver fanned each SCC *wave* out over ``Pool.map``: every wave
paid a full barrier on its slowest function, every task re-pickled the
program source, and tiny functions shipped one per task.  On the built-in
corpus that overhead made ``--jobs 2`` *slower* than serial.  This module
replaces it with:

* **one warm pool per batch run** — workers are created once (forked where
  the platform allows it, so they inherit the coordinator's parsed-program
  cache as shared read-only state) and pull tasks until the run ends;
* **compact task payloads** — a task names a program by index and carries a
  list of function names; sources ship exactly once per worker, at
  initialization.  Results flow back as plain JSON-style dicts (summaries
  as :meth:`FunctionSummary.to_dict` payloads, matrices as tables), never
  as pickled interned objects — re-interning, where needed, happens once on
  the coordinator;
* **cost-model chunking** — tiny functions are batched into one task so
  queue/pickle overhead is amortized, while expensive functions ship alone
  (:func:`estimate_cost`, :func:`pack_chunks`);
* **a timing layer** — every task records queue-wait, worker-side program
  warm-up ("parse"), analysis time, and result-transfer time, so
  ``--profile`` can show where a parallel run actually spends its time.

Scheduling (who is runnable when) lives in :mod:`repro.driver.batch`; this
module only knows how to run chunks on warm workers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.lang.ast_nodes import FunctionDecl, Program, collect_pointer_variables, iter_statements

from repro.driver.pipeline import (
    PipelineOptions,
    analysis_for,
    analyze_function_job,
    parsed_program,
    simulate_program,
)

#: ``--jobs`` never defaults above this many workers
MAX_DEFAULT_JOBS = 8

#: target estimated cost per analysis chunk; functions are packed until a
#: chunk reaches it (one expensive function can exceed it and ships alone)
CHUNK_COST_TARGET = 2400

#: never pack more functions than this into one chunk, however cheap —
#: keeps the ready queue granular enough for work-stealing to balance
CHUNK_MAX_FUNCTIONS = 24

#: a completion-less stretch this long means the pool is wedged; surface an
#: error instead of hanging an unattended batch forever
WAIT_TIMEOUT_S = 300.0

#: test hook: a worker analyzing a function with this name hard-exits, so the
#: crash-surfacing path can be exercised end to end (see tests/driver)
CRASH_ENV_VAR = "REPRO_DRIVER_TEST_CRASH"


class WorkerPoolError(RuntimeError):
    """The worker pool died or stopped making progress mid-run."""


def default_jobs() -> int:
    """``os.cpu_count()`` capped at :data:`MAX_DEFAULT_JOBS` (floor 1)."""
    return max(1, min(MAX_DEFAULT_JOBS, os.cpu_count() or 1))


def preferred_start_method() -> str:
    """``fork`` where available (workers inherit warm parsed-program state
    copy-on-write), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# -- the cost model -----------------------------------------------------------
def estimate_cost(func: FunctionDecl, program: Program) -> int:
    """Estimated analysis cost of one function: statements × pointer vars.

    Both axes dominate solver cost (see ``repro.bench.stress``): every
    transfer touches O(pointer-vars²) matrix entries and runs once per
    statement per sweep.  The product only needs to *rank* functions well
    enough that a chunk lands near :data:`CHUNK_COST_TARGET`.
    """
    statements = sum(1 for _ in iter_statements(func.body))
    pointer_vars = len(collect_pointer_variables(func, program))
    return (1 + statements) * (1 + pointer_vars)


def pack_chunks(
    groups: list[tuple[list[str], int]],
    cost_target: int = CHUNK_COST_TARGET,
    max_functions: int = CHUNK_MAX_FUNCTIONS,
) -> list[list[int]]:
    """Pack ``(functions, cost)`` groups into chunks of roughly equal cost.

    Returns chunks as lists of *group indices* (the scheduler maps them back
    to its components).  Groups (SCCs, in practice) are kept whole — mutual
    recursion stays on one worker.  Cheap groups accumulate until the target
    cost or function cap is reached; a group at or above the target ships
    alone.
    """
    chunks: list[list[int]] = []
    current: list[int] = []
    current_functions = 0
    current_cost = 0
    for index, (functions, cost) in enumerate(groups):
        if current and (
            current_cost + cost > cost_target
            or current_functions + len(functions) > max_functions
        ):
            chunks.append(current)
            current, current_functions, current_cost = [], 0, 0
        current.append(index)
        current_functions += len(functions)
        current_cost += cost
        if current_cost >= cost_target:
            chunks.append(current)
            current, current_functions, current_cost = [], 0, 0
    if current:
        chunks.append(current)
    return chunks


# -- task and result shapes ---------------------------------------------------
@dataclass
class Task:
    """One unit of pool work: analyze a chunk of functions, or simulate."""

    task_id: int
    kind: str  # "analyze" | "simulate"
    program_index: int
    program_name: str
    functions: list[str] = field(default_factory=list)
    #: coordinator-side bookkeeping: the call-graph components this chunk
    #: covers (landing them may unblock dependents)
    components: list[int] = field(default_factory=list)
    cost: int = 0
    submitted_at: float = 0.0


@dataclass
class TaskTiming:
    """Where one task's wall-clock went (coordinator + worker stamps).

    On Linux ``time.perf_counter`` reads the system-wide monotonic clock, so
    worker-side stamps are directly comparable with coordinator-side ones;
    on platforms where they are not, the derived fields are clamped at 0.
    """

    task_id: int
    kind: str
    program: str
    functions: int
    cost: int
    worker_pid: int
    queue_wait_s: float  # submit -> worker picked it up (incl. task pickling)
    parse_s: float  # worker-side program warm-up (parse + summaries); 0 when inherited
    analyze_s: float  # worker-side pipeline work
    transfer_s: float  # worker finish -> coordinator receipt (result pickling + queue)
    total_s: float  # submit -> coordinator receipt

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "program": self.program,
            "functions": self.functions,
            "cost": self.cost,
            "worker_pid": self.worker_pid,
            "queue_wait_s": self.queue_wait_s,
            "parse_s": self.parse_s,
            "analyze_s": self.analyze_s,
            "transfer_s": self.transfer_s,
            "total_s": self.total_s,
        }


# -- worker side --------------------------------------------------------------
_WORKER_SOURCES: list[str] = []
_WORKER_OPTIONS: PipelineOptions | None = None


def _init_worker(sources: list[str], options: PipelineOptions) -> None:
    """Per-worker initialization: receive the corpus sources exactly once.

    Under ``fork`` the worker additionally inherits the coordinator's
    parsed-program cache copy-on-write, so warm-up below is a lookup; under
    ``spawn`` each worker parses a program the first time it sees it.
    """
    global _WORKER_OPTIONS
    _WORKER_SOURCES[:] = sources
    _WORKER_OPTIONS = options


def _run_task(payload: tuple) -> dict:
    """Top-level (picklable) pool entry point for one task."""
    task_id, kind, program_index, functions, submitted_at = payload
    started = time.perf_counter()
    source = _WORKER_SOURCES[program_index]
    options = _WORKER_OPTIONS
    assert options is not None, "worker used before initialization"

    result: dict = {
        "task_id": task_id,
        "pid": os.getpid(),
        "started": started,
        "parse_s": 0.0,
    }
    if kind == "simulate":
        result["simulation"] = simulate_program(source, options)
    else:
        warm_start = time.perf_counter()
        analysis_for(source, options)  # parse + summaries, memoized per worker
        result["parse_s"] = time.perf_counter() - warm_start
        crash_function = os.environ.get(CRASH_ENV_VAR)
        reports: dict[str, dict] = {}
        for name in functions:
            if crash_function and name == crash_function:
                os._exit(3)  # simulate a hard worker death (OOM kill, segfault)
            reports[name] = analyze_function_job(source, name, options)
        result["results"] = reports
    result["finished"] = time.perf_counter()
    return result


# -- coordinator side ---------------------------------------------------------
class PersistentExecutor:
    """A warm process pool that runs :class:`Task` chunks until shutdown.

    Thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`: the
    pool's shared task queue *is* the ready queue's work-stealing substrate
    (idle workers pull the next runnable chunk, whichever program it belongs
    to), and a dead worker surfaces as :class:`WorkerPoolError` instead of a
    hang.
    """

    def __init__(
        self,
        jobs: int,
        sources: list[str],
        options: PipelineOptions,
        start_method: str | None = None,
    ):
        self.jobs = max(1, int(jobs))
        self.start_method = start_method or preferred_start_method()
        ctx = multiprocessing.get_context(self.start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(sources, options),
        )
        self._in_flight: dict[Future, Task] = {}

    # -- submission / completion ---------------------------------------------
    def submit(self, task: Task) -> None:
        task.submitted_at = time.perf_counter()
        payload = (
            task.task_id,
            task.kind,
            task.program_index,
            task.functions,
            task.submitted_at,
        )
        try:
            future = self._pool.submit(_run_task, payload)
        except (BrokenProcessPool, RuntimeError) as exc:
            raise WorkerPoolError(f"worker pool is broken: {exc}") from exc
        self._in_flight[future] = task

    @property
    def outstanding(self) -> int:
        return len(self._in_flight)

    def wait_one(self) -> list[tuple[Task, dict, TaskTiming]]:
        """Block until at least one task finishes; return all finished ones.

        Raises :class:`WorkerPoolError` when a worker died (the pool breaks)
        or nothing completes within :data:`WAIT_TIMEOUT_S`.
        """
        if not self._in_flight:
            return []
        done, _ = wait(
            self._in_flight, timeout=WAIT_TIMEOUT_S, return_when=FIRST_COMPLETED
        )
        if not done:
            raise WorkerPoolError(
                f"no task completed within {WAIT_TIMEOUT_S:.0f}s "
                f"({len(self._in_flight)} outstanding)"
            )
        received = time.perf_counter()
        finished: list[tuple[Task, dict, TaskTiming]] = []
        for future in done:
            task = self._in_flight.pop(future)
            error = future.exception()
            if isinstance(error, BrokenProcessPool):
                raise WorkerPoolError(
                    f"a worker process died while running task "
                    f"{task.kind}:{task.program_name} "
                    f"({len(task.functions)} function(s))"
                ) from error
            if error is not None:
                raise error
            result = future.result()
            finished.append((task, result, self._timing(task, result, received)))
        return finished

    @staticmethod
    def _timing(task: Task, result: dict, received: float) -> TaskTiming:
        started = result["started"]
        done = result["finished"]
        parse_s = result.get("parse_s", 0.0)
        return TaskTiming(
            task_id=task.task_id,
            kind=task.kind,
            program=task.program_name,
            functions=len(task.functions),
            cost=task.cost,
            worker_pid=result["pid"],
            queue_wait_s=max(0.0, started - task.submitted_at),
            parse_s=parse_s,
            analyze_s=max(0.0, done - started - parse_s),
            transfer_s=max(0.0, received - done),
            total_s=max(0.0, received - task.submitted_at),
        )

    def shutdown(self) -> None:
        # cancel_futures: a crash mid-run must not wait out the whole queue
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "PersistentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def warm_parsed_programs(sources: list[str]) -> None:
    """Parse every source into the coordinator's program cache (pre-fork
    warm-up: forked workers inherit the cache instead of re-parsing)."""
    from repro.lang.errors import LangError

    for source in sources:
        try:
            parsed_program(source)
        except LangError:
            pass  # planning reports parse errors per program
