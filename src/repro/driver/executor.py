"""Persistent-worker execution for the batch driver, fault-tolerant edition.

The PR-6 executor wrapped :class:`concurrent.futures.ProcessPoolExecutor`,
which has an all-or-nothing failure model: one worker death breaks the whole
pool, fails every in-flight future, and the only safe response is to abort
the batch.  This module manages its own workers so partial failure stays
partial:

* **one process + one pipe per worker** — the coordinator knows exactly
  which task each worker holds, so a dead worker indicts *its* task only;
  every other in-flight task keeps running;
* **targeted kill and respawn** — a worker that blows its per-task deadline
  (or dies) is killed/reaped and replaced in place; the pool never shrinks
  and never wedges;
* **an event API** — :meth:`PersistentExecutor.poll` surfaces ``done`` /
  ``crashed`` / ``timeout`` events and leaves *policy* (retry, backoff,
  chunk bisection, quarantine) to :mod:`repro.driver.batch`;
* **a sacrificial runner** — :func:`run_sacrificial` executes one suspect
  chunk in a throwaway subprocess so a poison task can be confirmed without
  risking a pool worker.

Everything the PR-6 executor got right is kept: workers are created once per
batch run (forked where possible, inheriting the coordinator's parsed-program
cache copy-on-write), tasks carry compact payloads (program index + function
names), results return as plain dicts, tiny functions are packed into
cost-balanced chunks, and every task records a queue-wait/parse/analyze/
transfer timing breakdown.

Scheduling (who is runnable when) lives in :mod:`repro.driver.batch`; this
module only knows how to run chunks on warm workers and keep the pool alive.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field

from repro.lang.ast_nodes import FunctionDecl, Program, collect_pointer_variables, iter_statements

from repro.driver.faults import SIMULATE_TOKEN, FAULT_CRASH_EXIT, active_plan
from repro.driver.pipeline import (
    PipelineOptions,
    analysis_for,
    analyze_function_job,
    parsed_program,
    simulate_program,
)

#: ``--jobs`` never defaults above this many workers
MAX_DEFAULT_JOBS = 8

#: target estimated cost per analysis chunk; functions are packed until a
#: chunk reaches it (one expensive function can exceed it and ships alone)
CHUNK_COST_TARGET = 2400

#: never pack more functions than this into one chunk, however cheap —
#: keeps the ready queue granular enough for work-stealing to balance
CHUNK_MAX_FUNCTIONS = 24

#: a completion-less stretch this long means the pool is wedged; surface an
#: error instead of hanging an unattended batch forever (the per-task
#: deadline, when configured, normally fires long before this backstop)
WAIT_TIMEOUT_S = 300.0

#: test hook: a worker analyzing a function with this name hard-exits, so the
#: crash-recovery path can be exercised end to end (see tests/driver)
CRASH_ENV_VAR = "REPRO_DRIVER_TEST_CRASH"


class WorkerPoolError(RuntimeError):
    """The worker pool is unrecoverable (respawn failed or budget exhausted)."""


class WorkerTaskError(RuntimeError):
    """A worker raised an unexpected exception (a bug, not a crash/fault)."""


def default_jobs() -> int:
    """``os.cpu_count()`` capped at :data:`MAX_DEFAULT_JOBS` (floor 1).

    On a constrained host (one or two CPUs) the default never spawns more
    workers than cores — extra workers only add dispatch overhead there.
    Explicit ``--jobs`` values are always honored as given.
    """
    return max(1, min(MAX_DEFAULT_JOBS, os.cpu_count() or 1))


def preferred_start_method() -> str:
    """``fork`` where available (workers inherit warm parsed-program state
    copy-on-write), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# -- the cost model -----------------------------------------------------------
def estimate_cost(func: FunctionDecl, program: Program) -> int:
    """Estimated analysis cost of one function: statements × pointer vars.

    Both axes dominate solver cost (see ``repro.bench.stress``): every
    transfer touches O(pointer-vars²) matrix entries and runs once per
    statement per sweep.  The product only needs to *rank* functions well
    enough that a chunk lands near :data:`CHUNK_COST_TARGET`.
    """
    statements = sum(1 for _ in iter_statements(func.body))
    pointer_vars = len(collect_pointer_variables(func, program))
    return (1 + statements) * (1 + pointer_vars)


def pack_chunks(
    groups: list[tuple[list[str], int]],
    cost_target: int = CHUNK_COST_TARGET,
    max_functions: int = CHUNK_MAX_FUNCTIONS,
) -> list[list[int]]:
    """Pack ``(functions, cost)`` groups into chunks of roughly equal cost.

    Returns chunks as lists of *group indices* (the scheduler maps them back
    to its components).  Groups (SCCs, in practice) are kept whole — mutual
    recursion stays on one worker.  Cheap groups accumulate until the target
    cost or function cap is reached; a group at or above the target ships
    alone.
    """
    chunks: list[list[int]] = []
    current: list[int] = []
    current_functions = 0
    current_cost = 0
    for index, (functions, cost) in enumerate(groups):
        if current and (
            current_cost + cost > cost_target
            or current_functions + len(functions) > max_functions
        ):
            chunks.append(current)
            current, current_functions, current_cost = [], 0, 0
        current.append(index)
        current_functions += len(functions)
        current_cost += cost
        if current_cost >= cost_target:
            chunks.append(current)
            current, current_functions, current_cost = [], 0, 0
    if current:
        chunks.append(current)
    return chunks


# -- task and result shapes ---------------------------------------------------
@dataclass
class Task:
    """One unit of pool work: analyze a chunk of functions, or simulate."""

    task_id: int
    kind: str  # "analyze" | "simulate"
    program_index: int
    program_name: str
    functions: list[str] = field(default_factory=list)
    #: coordinator-side bookkeeping: the call-graph components this chunk
    #: covers (landing them may unblock dependents)
    components: list[int] = field(default_factory=list)
    cost: int = 0
    #: per-function attempt numbers (how many times a task holding the
    #: function already died) — deterministic fault injection keys off these
    attempts: dict[str, int] = field(default_factory=dict)
    submitted_at: float = 0.0


@dataclass
class TaskTiming:
    """Where one task's wall-clock went (coordinator + worker stamps).

    On Linux ``time.perf_counter`` reads the system-wide monotonic clock, so
    worker-side stamps are directly comparable with coordinator-side ones;
    on platforms where they are not, the derived fields are clamped at 0.
    """

    task_id: int
    kind: str
    program: str
    functions: int
    cost: int
    worker_pid: int
    queue_wait_s: float  # submit -> worker picked it up (incl. task pickling)
    parse_s: float  # worker-side program warm-up (parse + summaries); 0 when inherited
    analyze_s: float  # worker-side pipeline work
    transfer_s: float  # worker finish -> coordinator receipt (result pickling + queue)
    total_s: float  # submit -> coordinator receipt

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "program": self.program,
            "functions": self.functions,
            "cost": self.cost,
            "worker_pid": self.worker_pid,
            "queue_wait_s": self.queue_wait_s,
            "parse_s": self.parse_s,
            "analyze_s": self.analyze_s,
            "transfer_s": self.transfer_s,
            "total_s": self.total_s,
        }


@dataclass
class WorkerEvent:
    """One pool occurrence the batch policy must react to."""

    kind: str  # "done" | "crashed" | "timeout"
    task: Task
    result: dict | None = None
    timing: TaskTiming | None = None
    exitcode: int | None = None


# -- worker side --------------------------------------------------------------
_WORKER_SOURCES: list[str] = []
_WORKER_OPTIONS: PipelineOptions | None = None


def _init_worker(sources: list[str], options: PipelineOptions) -> None:
    """Per-worker initialization: receive the corpus sources exactly once.

    Under ``fork`` the worker additionally inherits the coordinator's
    parsed-program cache copy-on-write, so warm-up below is a lookup; under
    ``spawn`` each worker parses a program the first time it sees it.
    """
    global _WORKER_OPTIONS
    _WORKER_SOURCES[:] = sources
    _WORKER_OPTIONS = options
    active_plan()  # malformed fault specs fail loudly at startup, not mid-task


def _maybe_inject(token: str, attempt: int) -> None:
    """Apply any configured worker-side fault for one injection point."""
    plan = active_plan()
    crash_function = os.environ.get(CRASH_ENV_VAR)
    if crash_function and token == crash_function:
        os._exit(3)  # legacy hook: simulate a hard worker death every attempt
    if not plan.enabled:
        return
    if plan.should_crash(token, attempt):
        os._exit(FAULT_CRASH_EXIT)
    if plan.should_hang(token, attempt):
        time.sleep(plan.hang_seconds)
    if plan.slow_seconds > 0.0:
        time.sleep(plan.slow_seconds)


def _run_task(payload: tuple) -> dict:
    """Worker-side execution of one task payload."""
    task_id, kind, program_index, program_name, functions, attempts = payload
    started = time.perf_counter()
    source = _WORKER_SOURCES[program_index]
    options = _WORKER_OPTIONS
    assert options is not None, "worker used before initialization"

    result: dict = {
        "task_id": task_id,
        "pid": os.getpid(),
        "started": started,
        "parse_s": 0.0,
    }
    if kind == "simulate":
        _maybe_inject(SIMULATE_TOKEN, attempts.get(SIMULATE_TOKEN, 0))
        result["simulation"] = simulate_program(source, options)
    else:
        warm_start = time.perf_counter()
        analysis_for(source, options)  # parse + summaries, memoized per worker
        result["parse_s"] = time.perf_counter() - warm_start
        reports: dict[str, dict] = {}
        for name in functions:
            _maybe_inject(name, attempts.get(name, 0))
            reports[name] = analyze_function_job(source, name, options)
        result["results"] = reports
    result["finished"] = time.perf_counter()
    return result


def _worker_main(conn, sources: list[str], options: PipelineOptions) -> None:
    """Top-level worker loop: pull task payloads until told to stop."""
    _init_worker(sources, options)
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload is None:
            return
        try:
            result = _run_task(payload)
        except BaseException as exc:  # a bug, not a fault: report, don't die
            result = {
                "task_id": payload[0],
                "pid": os.getpid(),
                "exception": f"{type(exc).__name__}: {exc}",
            }
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


def _sacrificial_main(conn, source, functions, options, attempts) -> None:
    """Entry point of the throwaway single-task verification subprocess.

    Runs the same per-function loop as a pool worker — including fault
    injection, so a poison task still behaves like poison here — but nothing
    shares its fate: if it dies, only this process dies.
    """
    _init_worker([source], options)
    reports: dict[str, dict] = {}
    for name in functions:
        _maybe_inject(name, attempts.get(name, 0))
        reports[name] = analyze_function_job(source, name, options)
    try:
        conn.send(reports)
    except (BrokenPipeError, OSError):
        pass


def run_sacrificial(
    ctx,
    source: str,
    functions: list[str],
    options: PipelineOptions,
    attempts: dict[str, int],
    timeout: float | None,
) -> tuple[str, dict | None]:
    """Run one suspect chunk in a throwaway subprocess.

    Returns ``("ok", reports)`` when the chunk completes, ``("crashed",
    None)`` when the subprocess dies, ``("timeout", None)`` when it blows
    ``timeout`` seconds (it is then killed).
    """
    parent, child = ctx.Pipe()
    proc = ctx.Process(
        target=_sacrificial_main,
        args=(child, source, functions, options, attempts),
        daemon=True,
    )
    proc.start()
    child.close()
    budget = timeout if timeout is not None else WAIT_TIMEOUT_S
    try:
        if not parent.poll(budget):
            return ("timeout", None)
        reports = parent.recv()
    except (EOFError, OSError):
        return ("crashed", None)
    finally:
        if proc.is_alive():
            proc.kill()
        proc.join(5)
        parent.close()
    return ("ok", reports)


# -- coordinator side ---------------------------------------------------------
@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    conn: object  # multiprocessing.connection.Connection
    task: Task | None = None
    deadline: float | None = None


class PersistentExecutor:
    """A self-healing warm worker pool that runs :class:`Task` chunks.

    Unlike a :class:`~concurrent.futures.ProcessPoolExecutor`, one worker
    dying (or hanging past ``task_timeout``) costs exactly one event for
    exactly one task: the worker is killed/reaped and respawned in place,
    every other in-flight task keeps running, and :meth:`poll` reports what
    happened so the caller can decide on retry, bisection, or quarantine.

    ``max_respawns`` bounds total worker replacement; exceeding it raises
    :class:`WorkerPoolError` — the "unrecoverable pool loss" exit.  The
    retry policy in :mod:`repro.driver.batch` already guarantees termination
    (attempts per component are capped), so the default is unbounded.
    """

    def __init__(
        self,
        jobs: int,
        sources: list[str],
        options: PipelineOptions,
        start_method: str | None = None,
        task_timeout: float | None = None,
        max_respawns: int | None = None,
    ):
        self.jobs = max(1, int(jobs))
        self.start_method = start_method or preferred_start_method()
        self.task_timeout = task_timeout
        self.max_respawns = max_respawns
        self.respawns = 0
        self.ctx = multiprocessing.get_context(self.start_method)
        self._sources = sources
        self._options = options
        self._backlog: deque[Task] = deque()
        self._delayed: list[tuple[float, Task]] = []
        self._last_progress = time.perf_counter()
        self._workers: list[_Worker] = []
        try:
            self._workers = [self._spawn_worker() for _ in range(self.jobs)]
        except OSError as exc:
            self.shutdown()
            raise WorkerPoolError(f"cannot start worker pool: {exc}") from exc

    # -- worker lifecycle -----------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        parent, child = self.ctx.Pipe()
        process = self.ctx.Process(
            target=_worker_main,
            args=(child, self._sources, self._options),
            daemon=True,
        )
        process.start()
        child.close()
        return _Worker(process=process, conn=parent)

    def _replace_worker(self, worker: _Worker, kill: bool) -> None:
        """Reap ``worker`` (killing it first if asked) and respawn in place."""
        self.respawns += 1
        if self.max_respawns is not None and self.respawns > self.max_respawns:
            self._reap(worker, kill=True)
            raise WorkerPoolError(
                f"worker respawn budget exhausted ({self.max_respawns}); "
                "the pool is losing workers faster than it makes progress"
            )
        self._reap(worker, kill=kill)
        try:
            fresh = self._spawn_worker()
        except OSError as exc:
            raise WorkerPoolError(f"cannot respawn worker: {exc}") from exc
        index = self._workers.index(worker)
        self._workers[index] = fresh

    @staticmethod
    def _reap(worker: _Worker, kill: bool) -> None:
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(5)
        try:
            worker.conn.close()
        except OSError:
            pass

    # -- submission -----------------------------------------------------------
    def submit(self, task: Task) -> None:
        self._backlog.append(task)

    def submit_delayed(self, task: Task, delay_s: float) -> None:
        """Queue ``task`` to become submittable after ``delay_s`` (backoff)."""
        if delay_s <= 0.0:
            self.submit(task)
            return
        self._delayed.append((time.perf_counter() + delay_s, task))

    @property
    def outstanding(self) -> int:
        in_flight = sum(1 for w in self._workers if w.task is not None)
        return in_flight + len(self._backlog) + len(self._delayed)

    # -- the event loop -------------------------------------------------------
    def _promote_delayed(self, now: float) -> None:
        due = [entry for entry in self._delayed if entry[0] <= now]
        if due:
            self._delayed = [e for e in self._delayed if e[0] > now]
            for _, task in sorted(due, key=lambda e: e[0]):
                self._backlog.append(task)

    def _dispatch(self, now: float) -> None:
        while self._backlog:
            worker = next((w for w in self._workers if w.task is None), None)
            if worker is None:
                return
            if not worker.process.is_alive():
                # died while idle (startup failure, external kill): replace
                # silently — no task was harmed
                self._replace_worker(worker, kill=False)
                continue
            task = self._backlog.popleft()
            task.submitted_at = now
            payload = (
                task.task_id,
                task.kind,
                task.program_index,
                task.program_name,
                task.functions,
                task.attempts,
            )
            try:
                worker.conn.send(payload)
            except (BrokenPipeError, OSError):
                self._backlog.appendleft(task)
                self._replace_worker(worker, kill=False)
                continue
            worker.task = task
            worker.deadline = (
                now + self.task_timeout if self.task_timeout is not None else None
            )

    def poll(self) -> list[WorkerEvent]:
        """Block until something happens; return the batch of events.

        Returns ``[]`` only when nothing is outstanding.  Raises
        :class:`WorkerPoolError` when the pool is unrecoverable or no task
        completes within :data:`WAIT_TIMEOUT_S` despite live workers.
        """
        from multiprocessing.connection import wait as connection_wait

        events: list[WorkerEvent] = []
        while not events:
            now = time.perf_counter()
            self._promote_delayed(now)
            self._dispatch(now)
            busy = {w.conn: w for w in self._workers if w.task is not None}
            if not busy and not self._backlog and not self._delayed:
                return []

            wakeups = [self._last_progress + WAIT_TIMEOUT_S]
            wakeups.extend(w.deadline for w in busy.values() if w.deadline is not None)
            wakeups.extend(ready_at for ready_at, _ in self._delayed)
            timeout = max(0.0, min(wakeups) - now)
            ready = connection_wait(list(busy), timeout) if busy else []
            if not busy:
                time.sleep(min(timeout, 0.05))
            now = time.perf_counter()

            for conn in ready:
                worker = busy[conn]
                task = worker.task
                assert task is not None
                try:
                    result = worker.conn.recv()
                except (EOFError, OSError):
                    # reap before reading the exit code — right after the
                    # pipe breaks the process may not be waitable yet and
                    # ``exitcode`` would still be None
                    worker.process.join(5)
                    exitcode = worker.process.exitcode
                    self._replace_worker(worker, kill=False)
                    events.append(
                        WorkerEvent(kind="crashed", task=task, exitcode=exitcode)
                    )
                    self._last_progress = now
                    continue
                worker.task = None
                worker.deadline = None
                self._last_progress = now
                if "exception" in result:
                    raise WorkerTaskError(
                        f"task {task.kind}:{task.program_name} raised in the "
                        f"worker: {result['exception']}"
                    )
                events.append(
                    WorkerEvent(
                        kind="done",
                        task=task,
                        result=result,
                        timing=self._timing(task, result, now),
                    )
                )

            # deadline sweep: anything past its per-task deadline is killed
            # and reported as a timeout (results that raced in above already
            # cleared their worker's task, so they are never double-counted)
            for worker in list(self._workers):
                if (
                    worker.task is not None
                    and worker.deadline is not None
                    and now >= worker.deadline
                ):
                    task = worker.task
                    self._replace_worker(worker, kill=True)
                    events.append(WorkerEvent(kind="timeout", task=task))
                    self._last_progress = now

            if not events and busy and now - self._last_progress >= WAIT_TIMEOUT_S:
                raise WorkerPoolError(
                    f"no task completed within {WAIT_TIMEOUT_S:.0f}s "
                    f"({len(busy)} in flight)"
                )
        return events

    @staticmethod
    def _timing(task: Task, result: dict, received: float) -> TaskTiming:
        started = result["started"]
        done = result["finished"]
        parse_s = result.get("parse_s", 0.0)
        return TaskTiming(
            task_id=task.task_id,
            kind=task.kind,
            program=task.program_name,
            functions=len(task.functions),
            cost=task.cost,
            worker_pid=result["pid"],
            queue_wait_s=max(0.0, started - task.submitted_at),
            parse_s=parse_s,
            analyze_s=max(0.0, done - started - parse_s),
            transfer_s=max(0.0, received - done),
            total_s=max(0.0, received - task.submitted_at),
        )

    def shutdown(self) -> None:
        self._backlog.clear()
        self._delayed.clear()
        for worker in self._workers:
            if worker.task is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite stop for idle workers
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(5)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def __enter__(self) -> "PersistentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def warm_parsed_programs(sources: list[str]) -> None:
    """Parse every source into the coordinator's program cache (pre-fork
    warm-up: forked workers inherit the cache instead of re-parsing)."""
    from repro.lang.errors import LangError

    for source in sources:
        try:
            parsed_program(source)
        except LangError:
            pass  # planning reports parse errors per program
