"""The staged, summary-firewalled incremental analysis engine.

This is the inline (``jobs=1``) execution path of the batch driver, rebuilt
as a two-phase walk over the call graph's SCC condensation in which every
pipeline stage is a separately content-addressed artifact (see
:mod:`repro.driver.cache` for the store and docs/incremental.md for the
soundness argument):

**Phase 1 — bottom-up summary resolution.**  For each component (callees
first), probe the ``summary`` stage under a key covering the members' bodies
and the *artifact digests* of their already-resolved external callees.  On a
hit the summaries (effects, ``preserves_abstraction``, inferred return type)
are reinterned without running anything; on a miss they are recomputed with
:func:`~repro.pathmatrix.interproc.summarize_scc` + preservation refinement
and stored.  Either way each member gets an **artifact digest** — the hash
of its summary payload — which is the only thing callers may key on.

**Phase 2 — per-function stage assembly.**  A function's stage keys cover
its own body, its own summary artifact, and its direct callees' artifact
digests — *not* their bodies.  That indirection is the early-cutoff
firewall: an edit that leaves a callee's summary artifact byte-identical
leaves every caller's keys untouched, so callers are reused unrun.  The
``report`` stage caches the assembled legacy report; on a report miss the
``analysis`` (fixpoint + validation), ``loops`` (classification), and
``transforms`` (applicability) stages are probed individually, so e.g. an
evicted report is reassembled from intact stage artifacts without solving
anything.

Two-phase commit: phase 1 settles *every* summary artifact of a component
before any phase-2 (or caller phase-1) key is formed, so a changed
function's new summary digest is always compared against its callers' cached
inputs — there is no window where a caller could be firewalled against a
stale summary.

Stored payloads are line-relative (see
:func:`~repro.driver.pipeline.relativize_report`); everything the engine
returns to the report is absolute.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.lang.ast_nodes import Program
from repro.lang.pretty import unparse
from repro.lang.typecheck import inferred_return_type
from repro.pathmatrix.analysis import PathMatrixAnalysis, fixpoint_run_count
from repro.pathmatrix.interproc import (
    FunctionSummary,
    _call_argument_map,
    direct_summaries,
    summarize_scc,
)

from repro.driver.cache import CACHE_VERSION, ResultCache, _sha, payload_digest
from repro.driver.callgraph import CallGraph, Condensation
from repro.driver.pipeline import (
    PipelineOptions,
    absolutize_report,
    analysis_payload,
    assemble_report,
    loops_payload,
    relativize_report,
    transforms_payload,
)


@dataclass
class IncrementalStats:
    """What one staged run reused, recomputed, and firewalled."""

    #: functions served without running a fixpoint (report hit or reassembled)
    reused: int = 0
    #: reused functions some *transitive callee body* of which changed — the
    #: legacy body-keyed scheme would have re-analyzed these
    firewalled: int = 0
    #: functions whose fixpoint/validation stage actually ran
    recomputed: int = 0
    #: functions whose own body changed since the last run (per the manifest)
    dirty: int = 0
    summaries_reused: int = 0
    summaries_recomputed: int = 0
    #: path-matrix fixpoints solved during the run (refinement + analysis)
    fixpoints_run: int = 0

    def merge(self, other: "IncrementalStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> dict:
        return asdict(self)


class StagedEngine:
    """Run the staged pipeline for one program against an artifact store."""

    def __init__(self, cache: ResultCache, options: PipelineOptions):
        self.cache = cache
        self.options = options

    def run(
        self,
        name: str,
        program: Program,
        graph: CallGraph,
        cond: Condensation,
        functions_out: dict[str, dict],
        on_reused=None,
        on_recomputed=None,
    ) -> IncrementalStats:
        """Fill ``functions_out`` with per-function reports (absolute lines).

        ``on_reused``/``on_recomputed`` are per-function callbacks for the
        batch driver's counters (``cache_hits``/``analyses_executed``).
        """
        stats = IncrementalStats()
        opts = self.options.key()
        version = str(CACHE_VERSION)
        types_src = "\n".join(unparse(t) for t in program.types)
        bodies = {f.name: unparse(f) for f in program.functions}
        body_digest = {n: _sha("body", src) for n, src in bodies.items()}
        base_line = {f.name: (f.line or 1) for f in program.functions}
        #: collision-avoiding fresh names in the transforms depend on the
        #: program's whole function-name set, so it keys those stages
        names_blob = ",".join(sorted(bodies))

        # the manifest of the previous run, for dirty accounting
        manifest_key = _sha("manifest", version, opts, name)
        old_manifest = self.cache.get(manifest_key, stage="manifest")
        if old_manifest is None:
            dirty = set(bodies)
        else:
            previous = old_manifest.get("functions", {})
            dirty = {
                n
                for n in bodies
                if previous.get(n, {}).get("body") != body_digest[n]
            }
        stats.dirty = len(dirty)

        def touches_dirty(function: str) -> bool:
            return function not in dirty and bool(
                graph.transitive_callees(function) & dirty
            )

        # parse stage: the canonical unparsed body, content-addressed by its
        # own digest (byte-identical bodies across programs share one entry)
        for n in sorted(bodies):
            pkey = _sha("parse", version, body_digest[n])
            if self.cache.get(pkey, stage="parse") is None:
                self.cache.put(pkey, {"body": bodies[n]}, stage="parse")

        # -- phase 1: bottom-up summary resolution over the condensation -----
        table: dict[str, FunctionSummary] = {}
        analysis = PathMatrixAnalysis(
            program,
            use_adds=self.options.use_adds,
            memoize_results=True,
            summaries=table,
        )
        direct = direct_summaries(program)
        call_maps = _call_argument_map(program)
        art_digest: dict[str, str] = {}
        return_types: dict[str, str | None] = {}
        fixpoints_before = fixpoint_run_count()

        def artifact(n: str, summary_dict: dict, rt: str | None) -> str:
            return payload_digest(
                {"function": n, "summary": summary_dict, "return_type": rt}
            )

        for members in cond.sccs:
            scc_blob = ";".join(f"{n}={body_digest[n]}" for n in members)
            member_set = set(members)
            externals = sorted(
                {
                    c
                    for n in members
                    for c in graph.callees(n)
                    if c not in member_set
                }
            )
            ext_blob = ";".join(f"{c}={art_digest[c]}" for c in externals)
            skey = _sha("summary", version, opts, types_src, scc_blob, ext_blob)
            cached = self.cache.get(skey, stage="summary")
            if cached is not None:
                for n in members:
                    entry = cached["functions"][n]
                    table[n] = FunctionSummary.from_dict(entry["summary"])
                    return_types[n] = entry["return_type"]
                    art_digest[n] = artifact(n, entry["summary"], entry["return_type"])
                stats.summaries_reused += len(members)
                continue
            resolved = summarize_scc(
                program, members, table, direct=direct, call_maps=call_maps
            )
            table.update(resolved)
            analysis.refine_preservation(members)
            payload: dict = {"functions": {}}
            for n in members:
                rt = inferred_return_type(program, analysis.check_result, n)
                summary_dict = table[n].to_dict()
                payload["functions"][n] = {
                    "summary": summary_dict,
                    "return_type": rt,
                }
                return_types[n] = rt
                art_digest[n] = artifact(n, summary_dict, rt)
            self.cache.put(skey, payload, stage="summary")
            stats.summaries_recomputed += len(members)

        # typecheck stage: the inferred environment verdict, keyed on the own
        # body plus the callee *return types* it was inferred under
        for n in sorted(bodies):
            rt_blob = ";".join(
                f"{c}={return_types.get(c) or ''}" for c in sorted(graph.callees(n))
            )
            tkey = _sha("typecheck", version, opts, types_src, bodies[n], rt_blob)
            if self.cache.get(tkey, stage="typecheck") is None:
                env = analysis.check_result.environments.get(n)
                payload = {
                    "function": n,
                    "env": {
                        var: str(ty) for var, ty in sorted(env.types.items())
                    }
                    if env is not None
                    else {},
                }
                self.cache.put(tkey, payload, stage="typecheck")

        # -- phase 2: per-function stage probe / compute / assemble -----------
        for members in cond.sccs:
            for fn in members:
                callee_blob = ";".join(
                    f"{c}={art_digest[c]}" for c in sorted(graph.callees(fn))
                )
                base = (
                    version,
                    opts,
                    types_src,
                    bodies[fn],
                    art_digest[fn],
                    callee_blob,
                )
                line = base_line[fn]
                rkey = _sha("report", *base, names_blob)
                cached_report = self.cache.get(rkey, stage="report")
                if cached_report is not None:
                    functions_out[fn] = absolutize_report(cached_report, line)
                    stats.reused += 1
                    if touches_dirty(fn):
                        stats.firewalled += 1
                    if on_reused is not None:
                        on_reused(fn)
                    continue

                computed_fixpoint = False
                akey = _sha("analysis", *base)
                cached_a = self.cache.get(akey, stage="analysis")
                if cached_a is not None:
                    verdict = absolutize_report(cached_a, line)
                    status, analysis_dict = verdict["status"], verdict["analysis"]
                else:
                    status, analysis_dict = analysis_payload(
                        analysis, fn, self.options
                    )
                    self.cache.put(
                        akey,
                        relativize_report(
                            {"status": status, "analysis": analysis_dict}, line
                        ),
                        stage="analysis",
                    )
                    computed_fixpoint = True

                entries: list = []
                transforms: dict = {}
                if status == "ok":
                    lkey = _sha("loops", *base)
                    cached_l = self.cache.get(lkey, stage="loops")
                    if cached_l is not None:
                        classified = absolutize_report(cached_l, line)
                        entries = classified["loops"]
                        parallelizable = classified["parallelizable"]
                    else:
                        entries, parallelizable = loops_payload(
                            program, fn, analysis, self.options
                        )
                        self.cache.put(
                            lkey,
                            relativize_report(
                                {
                                    "loops": entries,
                                    "parallelizable": parallelizable,
                                },
                                line,
                            ),
                            stage="loops",
                        )
                    xkey = _sha("transforms", *base, names_blob)
                    cached_x = self.cache.get(xkey, stage="transforms")
                    if cached_x is not None:
                        transforms = absolutize_report(cached_x, line)["transforms"]
                    else:
                        transforms = transforms_payload(program, fn, parallelizable)
                        self.cache.put(
                            xkey,
                            relativize_report({"transforms": transforms}, line),
                            stage="transforms",
                        )

                summary_payload = table[fn].to_dict() if fn in table else None
                assembled = assemble_report(
                    fn,
                    self.options,
                    summary_payload,
                    status,
                    analysis_dict,
                    entries,
                    transforms,
                )
                functions_out[fn] = assembled
                self.cache.put(
                    rkey, relativize_report(assembled, line), stage="report"
                )
                if computed_fixpoint:
                    stats.recomputed += 1
                    if on_recomputed is not None:
                        on_recomputed(fn)
                else:
                    # reassembled from intact stage artifacts — no solve ran
                    stats.reused += 1
                    if touches_dirty(fn):
                        stats.firewalled += 1
                    if on_reused is not None:
                        on_reused(fn)

        # commit the manifest for the next run's dirty accounting
        self.cache.put(
            manifest_key,
            {
                "functions": {
                    n: {"body": body_digest[n], "summary": art_digest[n]}
                    for n in sorted(bodies)
                }
            },
            stage="manifest",
        )
        stats.fixpoints_run = fixpoint_run_count() - fixpoints_before
        return stats
