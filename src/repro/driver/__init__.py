"""Whole-program batch driver (``python -m repro``).

Scales the per-function analysis core across whole programs and corpora:

* :mod:`repro.driver.callgraph` — call graphs, SCCs, bottom-up parallel
  schedules (the order the paper validates Barnes–Hut in),
* :mod:`repro.driver.cache`     — on-disk memoization keyed by function AST
  + transitive callee summary digests,
* :mod:`repro.driver.corpus`    — the built-in program corpus (paper
  examples, ``examples/corpus/*.ptr``, stress generators),
* :mod:`repro.driver.pipeline`  — the per-function job and the whole-program
  simulation stage,
* :mod:`repro.driver.executor`  — the self-healing persistent worker pool
  (per-task deadlines, targeted kill-and-respawn, sacrificial runs),
* :mod:`repro.driver.faults`    — deterministic fault injection and
  poison-task quarantine records (see ``docs/robustness.md``),
* :mod:`repro.driver.batch`     — the orchestrator scheduling call-graph
  components onto the pool, with retry/bisection/quarantine policy,
* :mod:`repro.driver.cli`       — the ``python -m repro`` front end.
"""

from repro.driver.batch import BatchDriver, BatchReport, ProgramReport
from repro.driver.cache import ResultCache, function_digests, program_digest
from repro.driver.callgraph import (
    CallGraph,
    bottom_up_waves,
    build_call_graph,
    strongly_connected_components,
)
from repro.driver.corpus import (
    CorpusItem,
    builtin_corpus,
    corpus_named,
    load_source_file,
    paper_corpus,
    stress_corpus,
)
from repro.driver.pipeline import (
    PipelineOptions,
    analyze_function_job,
    simulate_program,
)

__all__ = [
    "BatchDriver",
    "BatchReport",
    "ProgramReport",
    "ResultCache",
    "function_digests",
    "program_digest",
    "CallGraph",
    "build_call_graph",
    "strongly_connected_components",
    "bottom_up_waves",
    "CorpusItem",
    "builtin_corpus",
    "corpus_named",
    "paper_corpus",
    "stress_corpus",
    "load_source_file",
    "PipelineOptions",
    "analyze_function_job",
    "simulate_program",
]
