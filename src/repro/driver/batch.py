"""The whole-program batch driver: ready-queue scheduled, memoized analysis.

For every corpus program the driver parses the source, builds the call
graph, and condenses it into strongly-connected components.  Components are
scheduled **bottom-up by dependency count** (callees before callers — the
order the paper validates Barnes–Hut in): each component carries a count of
not-yet-landed callee components, and the moment that count reaches zero it
is runnable, whatever else is still in flight.  There is no wave barrier —
only true call-graph edges ever delay work, and components from *different
programs* interleave freely on the same worker pool.

With ``jobs > 1`` runnable components are packed into cost-balanced chunks
(:func:`repro.driver.executor.pack_chunks`) and pulled by a pool of
persistent warm workers; ``jobs == 1`` bypasses the executor entirely and
runs the same schedule inline (easy profiling and debugging, zero
multiprocessing overhead).  Every function's report is memoized in the
on-disk :class:`~repro.driver.cache.ResultCache` keyed by its own AST and
the unparsed bodies of its transitive callees, so a warm re-run performs no
analysis at all (the acceptance test asserts exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.lang.errors import LangError
from repro.pathmatrix.interproc import summaries_from_payloads

from repro.driver.cache import ResultCache, function_digests, program_digest
from repro.driver.callgraph import Condensation, build_call_graph, condense
from repro.driver.corpus import CorpusItem
from repro.driver.executor import (
    PersistentExecutor,
    Task,
    TaskTiming,
    estimate_cost,
    pack_chunks,
    warm_parsed_programs,
)
from repro.driver.pipeline import (
    PipelineOptions,
    analyze_function_job,
    parsed_program,
    simulate_program,
)


@dataclass
class ProgramReport:
    """Everything the batch run learned about one corpus program."""

    name: str
    functions: dict[str, dict] = field(default_factory=dict)
    #: bottom-up schedule by depth, wave by wave (SCCs as name lists) —
    #: a human-readable view; actual dispatch is by ready-count
    schedule: list[list[list[str]]] = field(default_factory=list)
    simulation: dict | None = None
    error: str | None = None

    def summaries(self):
        """Re-interned :class:`FunctionSummary` objects, one per function."""
        return summaries_from_payloads(
            payload.get("summary") for payload in self.functions.values()
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "functions": self.functions,
            "schedule": self.schedule,
            "simulation": self.simulation,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """The result of one driver invocation over a corpus."""

    programs: list[ProgramReport] = field(default_factory=list)
    #: per-function analyses actually executed (cache misses)
    analyses_executed: int = 0
    #: per-function reports served from the on-disk cache
    cache_hits: int = 0
    #: whole-program simulations served from the cache
    simulation_cache_hits: int = 0
    jobs: int = 1
    start_method: str | None = None
    elapsed_s: float = 0.0
    #: aggregate task timing breakdown; ``tasks`` detail only with profiling
    profile: dict | None = None

    def program(self, name: str) -> ProgramReport:
        for report in self.programs:
            if report.name == name:
                return report
        raise KeyError(name)

    def function_count(self) -> int:
        return sum(len(p.functions) for p in self.programs)

    def to_dict(self) -> dict:
        stats = {
            "programs": len(self.programs),
            "functions": self.function_count(),
            "analyses_executed": self.analyses_executed,
            "cache_hits": self.cache_hits,
            "simulation_cache_hits": self.simulation_cache_hits,
            "jobs": self.jobs,
            "start_method": self.start_method,
            "elapsed_s": self.elapsed_s,
        }
        if self.profile is not None:
            stats["profile"] = self.profile
        return {
            "programs": [p.to_dict() for p in self.programs],
            "stats": stats,
        }


class BatchExecutionError(RuntimeError):
    """The batch could not run to completion (e.g. a worker crashed)."""


@dataclass
class _ProgramPlan:
    """Coordinator-side scheduling state for one corpus program."""

    index: int
    item: CorpusItem
    report: ProgramReport
    cond: Condensation | None = None
    digests: dict[str, str] = field(default_factory=dict)
    #: component -> cache-missed functions still to analyze
    pending: dict[int, list[str]] = field(default_factory=dict)
    #: component -> estimated analysis cost of its pending functions
    costs: dict[int, int] = field(default_factory=dict)
    #: component -> count of not-yet-landed callee components
    blockers: dict[int, int] = field(default_factory=dict)
    landed: set[int] = field(default_factory=set)
    #: runnable components not yet packed into a chunk
    ready: list[int] = field(default_factory=list)
    sim_key: str | None = None
    needs_simulation: bool = False

    @property
    def schedulable(self) -> bool:
        return self.cond is not None

    def land(self, component: int) -> list[int]:
        """Mark ``component``'s results available; return newly ready ones."""
        if component in self.landed:
            return []
        self.landed.add(component)
        freed: list[int] = []
        assert self.cond is not None
        for dependent in sorted(self.cond.dependents.get(component, ())):
            self.blockers[dependent] -= 1
            if self.blockers[dependent] == 0 and self.pending.get(dependent):
                freed.append(dependent)
        self.ready.extend(freed)
        return freed


class BatchDriver:
    """Drive the full pipeline over many programs, in parallel, with caching.

    ``jobs=1`` analyzes in-process (no pool); ``jobs>1`` schedules
    cost-balanced chunks of call-graph components onto a persistent worker
    pool the moment their callees have landed.  ``cache_dir=None`` disables
    memoization.  ``start_method`` picks the multiprocessing start method
    (default: ``fork`` where available, else ``spawn``); ``profile=True``
    keeps the per-task timing breakdown in the report.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        options: PipelineOptions | None = None,
        simulate: bool = True,
        start_method: str | None = None,
        profile: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.options = options or PipelineOptions()
        self.cache = ResultCache(cache_dir)
        self.simulate = simulate
        self.start_method = start_method
        self.profile = profile

    # -- public entry points -------------------------------------------------
    def analyze_corpus(self, items: list[CorpusItem]) -> BatchReport:
        report = BatchReport(jobs=self.jobs)
        started = time.perf_counter()

        plans = [self._plan_item(i, item, report) for i, item in enumerate(items)]
        if self.jobs > 1:
            timings = self._run_parallel(plans, report)
        else:
            timings = self._run_inline(plans, report)
        report.profile = self._aggregate_profile(timings)

        report.programs = [plan.report for plan in plans]
        report.elapsed_s = time.perf_counter() - started
        return report

    # -- planning ------------------------------------------------------------
    def _plan_item(self, index: int, item: CorpusItem, batch: BatchReport) -> _ProgramPlan:
        plan = _ProgramPlan(index=index, item=item, report=ProgramReport(name=item.name))
        try:
            program = parsed_program(item.source)
        except LangError as exc:
            plan.report.error = f"parse error: {exc}"
            return plan
        try:
            graph = build_call_graph(program)
            plan.cond = condense(graph)
        except LangError as exc:  # defensive: malformed programs must not abort the batch
            plan.report.error = str(exc)
            return plan
        plan.report.schedule = plan.cond.waves()
        plan.digests = function_digests(program, graph, self.options.key())
        self.cache.preload(plan.digests.values())

        plan.blockers = plan.cond.initial_blockers()
        for i, scc in enumerate(plan.cond.sccs):
            pending: list[str] = []
            cost = 0
            for name in scc:
                cached = self.cache.get(plan.digests[name])
                if cached is not None:
                    plan.report.functions[name] = cached
                    batch.cache_hits += 1
                else:
                    pending.append(name)
                    cost += estimate_cost(program.function_named(name), program)
            plan.pending[i] = pending
            plan.costs[i] = cost
        # components with nothing to compute land immediately (their results
        # came from the cache), which may free their dependents
        for i in range(len(plan.cond.sccs)):
            if not plan.pending[i]:
                plan.land(i)
        plan.ready = [
            i
            for i in range(len(plan.cond.sccs))
            if plan.pending[i] and plan.blockers[i] == 0
        ]

        if self.simulate:
            plan.sim_key = program_digest(item.source, self.options.key())
            self.cache.preload([plan.sim_key])
            cached = self.cache.get(plan.sim_key)
            if cached is not None:
                plan.report.simulation = cached
                batch.simulation_cache_hits += 1
            else:
                plan.needs_simulation = True
        return plan

    # -- inline execution (jobs == 1, no executor) ----------------------------
    def _run_inline(self, plans: list[_ProgramPlan], batch: BatchReport) -> list[TaskTiming]:
        batch.start_method = None
        work_started = time.perf_counter()
        functions_run = 0
        for plan in plans:
            if not plan.schedulable:
                continue
            # condensation order is bottom-up, so a plain scan never runs a
            # component before its callees
            for i in range(len(plan.cond.sccs)):
                for name in plan.pending[i]:
                    payload = analyze_function_job(plan.item.source, name, self.options)
                    self._record_result(plan, name, payload, batch)
                    functions_run += 1
                plan.land(i)
            if plan.needs_simulation:
                self._record_simulation(
                    plan, simulate_program(plan.item.source, self.options)
                )
        analyze_s = time.perf_counter() - work_started
        if not functions_run and not any(p.needs_simulation for p in plans):
            return []
        return [
            TaskTiming(
                task_id=0,
                kind="inline",
                program="*",
                functions=functions_run,
                cost=0,
                worker_pid=0,
                queue_wait_s=0.0,
                parse_s=0.0,
                analyze_s=analyze_s,
                transfer_s=0.0,
                total_s=analyze_s,
            )
        ]

    # -- parallel execution (persistent workers, ready queue) ------------------
    def _run_parallel(self, plans: list[_ProgramPlan], batch: BatchReport) -> list[TaskTiming]:
        active = [
            plan
            for plan in plans
            if plan.schedulable and (any(plan.pending.values()) or plan.needs_simulation)
        ]
        if not active:  # fully warm run: do not even start the pool
            return []
        sources = [plan.item.source for plan in plans]
        # pre-fork warm-up: forked workers inherit the parsed programs
        # copy-on-write instead of each re-parsing the corpus
        warm_parsed_programs([plan.item.source for plan in active])
        timings: list[TaskTiming] = []
        task_counter = 0

        def make_tasks(plan: _ProgramPlan) -> list[Task]:
            """Pack everything currently ready in ``plan`` into chunk tasks."""
            nonlocal task_counter
            if not plan.ready:
                return []
            components = sorted(plan.ready)
            plan.ready = []
            groups = [(plan.pending[i], plan.costs[i]) for i in components]
            tasks = []
            for chunk in pack_chunks(groups):
                members = [components[g] for g in chunk]
                task_counter += 1
                tasks.append(
                    Task(
                        task_id=task_counter,
                        kind="analyze",
                        program_index=plan.index,
                        program_name=plan.item.name,
                        functions=[n for m in members for n in plan.pending[m]],
                        components=members,
                        cost=sum(plan.costs[m] for m in members),
                    )
                )
            return tasks

        with PersistentExecutor(
            self.jobs, sources, self.options, self.start_method
        ) as executor:
            batch.start_method = executor.start_method
            for plan in active:
                for task in make_tasks(plan):
                    executor.submit(task)
                if plan.needs_simulation:
                    # simulation re-derives everything from source, so it has
                    # no scheduling dependency: overlap it with analysis
                    task_counter += 1
                    executor.submit(
                        Task(
                            task_id=task_counter,
                            kind="simulate",
                            program_index=plan.index,
                            program_name=plan.item.name,
                        )
                    )
            try:
                while executor.outstanding:
                    for task, result, timing in executor.wait_one():
                        timings.append(timing)
                        plan = plans[task.program_index]
                        if task.kind == "simulate":
                            self._record_simulation(plan, result["simulation"])
                            continue
                        for name in task.functions:
                            self._record_result(
                                plan, name, result["results"][name], batch
                            )
                        for component in task.components:
                            plan.land(component)
                        for new_task in make_tasks(plan):
                            executor.submit(new_task)
            except Exception:
                executor.shutdown()
                raise
        return timings

    # -- result bookkeeping ---------------------------------------------------
    def _record_result(
        self, plan: _ProgramPlan, name: str, payload: dict, batch: BatchReport
    ) -> None:
        plan.report.functions[name] = payload
        self.cache.put(plan.digests[name], payload)
        batch.analyses_executed += 1

    def _record_simulation(self, plan: _ProgramPlan, payload: dict) -> None:
        plan.report.simulation = payload
        if plan.sim_key is not None:
            self.cache.put(plan.sim_key, payload)
        plan.needs_simulation = False

    # -- profiling ------------------------------------------------------------
    def _aggregate_profile(self, timings: list[TaskTiming]) -> dict | None:
        if not timings:
            return None
        totals = {
            "tasks": len(timings),
            "functions": sum(t.functions for t in timings if t.kind != "simulate"),
            "queue_wait_s": sum(t.queue_wait_s for t in timings),
            "parse_s": sum(t.parse_s for t in timings),
            "analyze_s": sum(t.analyze_s for t in timings),
            "transfer_s": sum(t.transfer_s for t in timings),
        }
        # queue-wait is back-pressure (work waiting for a free core), not
        # waste; the overhead a serial run would not pay is worker-side
        # re-parsing plus result transfer
        busy = totals["analyze_s"]
        overhead = totals["parse_s"] + totals["transfer_s"]
        totals["overhead_fraction"] = (
            overhead / (busy + overhead) if busy + overhead > 0 else 0.0
        )
        profile = {"totals": totals}
        if self.profile:
            profile["tasks"] = [t.to_dict() for t in timings]
        return profile
