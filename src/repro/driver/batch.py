"""The whole-program batch driver: SCC-ordered, pooled, memoized analysis.

For every corpus program the driver parses the source, builds the call
graph, and schedules its strongly connected components bottom-up (callees
before callers — the order the paper validates Barnes–Hut in).  Components
with no ordering constraint form a *wave*; the functions of a wave fan out
across a ``multiprocessing`` pool.  Each function's report is memoized in
the on-disk :class:`~repro.driver.cache.ResultCache` keyed by its own AST
and the unparsed bodies of its transitive callees, so a warm re-run performs
no analysis at all (the acceptance test asserts exactly that).
"""

from __future__ import annotations

import time
from dataclasses import astuple, dataclass, field

from repro.lang.errors import LangError

from repro.driver.cache import ResultCache, function_digests, program_digest
from repro.driver.callgraph import bottom_up_waves, build_call_graph
from repro.driver.corpus import CorpusItem
from repro.driver.pipeline import (
    PipelineOptions,
    _job_worker,
    parsed_program,
    simulate_program,
)


@dataclass
class ProgramReport:
    """Everything the batch run learned about one corpus program."""

    name: str
    functions: dict[str, dict] = field(default_factory=dict)
    #: bottom-up schedule actually used, wave by wave (SCCs as name lists)
    schedule: list[list[list[str]]] = field(default_factory=list)
    simulation: dict | None = None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "functions": self.functions,
            "schedule": self.schedule,
            "simulation": self.simulation,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """The result of one driver invocation over a corpus."""

    programs: list[ProgramReport] = field(default_factory=list)
    #: per-function analyses actually executed (cache misses)
    analyses_executed: int = 0
    #: per-function reports served from the on-disk cache
    cache_hits: int = 0
    #: whole-program simulations served from the cache
    simulation_cache_hits: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0

    def program(self, name: str) -> ProgramReport:
        for report in self.programs:
            if report.name == name:
                return report
        raise KeyError(name)

    def function_count(self) -> int:
        return sum(len(p.functions) for p in self.programs)

    def to_dict(self) -> dict:
        return {
            "programs": [p.to_dict() for p in self.programs],
            "stats": {
                "programs": len(self.programs),
                "functions": self.function_count(),
                "analyses_executed": self.analyses_executed,
                "cache_hits": self.cache_hits,
                "simulation_cache_hits": self.simulation_cache_hits,
                "jobs": self.jobs,
                "elapsed_s": self.elapsed_s,
            },
        }


class BatchDriver:
    """Drive the full pipeline over many programs, in parallel, with caching.

    ``jobs=1`` analyzes in-process (no pool); ``jobs>1`` fans each wave of
    independent functions out across a ``multiprocessing`` pool.
    ``cache_dir=None`` disables memoization.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        options: PipelineOptions | None = None,
        simulate: bool = True,
    ):
        self.jobs = max(1, int(jobs))
        self.options = options or PipelineOptions()
        self.cache = ResultCache(cache_dir)
        self.simulate = simulate

    # -- public entry points -------------------------------------------------
    def analyze_corpus(self, items: list[CorpusItem]) -> BatchReport:
        report = BatchReport(jobs=self.jobs)
        started = time.perf_counter()
        pool = None
        try:
            if self.jobs > 1:
                import multiprocessing

                # parse everything up front so a forked worker inherits the
                # populated parsed-program cache instead of re-parsing each
                # program from its task payload
                for item in items:
                    try:
                        parsed_program(item.source)
                    except LangError:
                        pass  # _analyze_item reports it per program
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    ctx = multiprocessing.get_context("spawn")
                pool = ctx.Pool(self.jobs)
            for item in items:
                report.programs.append(self._analyze_item(item, pool, report))
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        report.elapsed_s = time.perf_counter() - started
        return report

    # -- one program ---------------------------------------------------------
    def _analyze_item(self, item: CorpusItem, pool, batch: BatchReport) -> ProgramReport:
        report = ProgramReport(name=item.name)
        try:
            program = parsed_program(item.source)
        except LangError as exc:
            report.error = f"parse error: {exc}"
            return report

        try:
            graph = build_call_graph(program)
            waves = bottom_up_waves(graph)
        except LangError as exc:  # defensive: malformed programs must not abort the batch
            report.error = str(exc)
            return report
        report.schedule = waves
        digests = function_digests(program, graph, self.options.key())

        options_tuple = astuple(self.options)
        for wave in waves:
            pending: list[tuple[str, str]] = []  # (function, digest)
            for scc in wave:
                for name in scc:
                    cached = self.cache.get(digests[name])
                    if cached is not None:
                        report.functions[name] = cached
                        batch.cache_hits += 1
                    else:
                        pending.append((name, digests[name]))
            if not pending:
                continue
            tasks = [(item.source, name, options_tuple) for name, _ in pending]
            if pool is not None:
                results = pool.map(_job_worker, tasks)
            else:
                results = [_job_worker(task) for task in tasks]
            for (name, digest), result in zip(pending, results):
                report.functions[name] = result
                self.cache.put(digest, result)
                batch.analyses_executed += 1

        if self.simulate:
            sim_key = program_digest(item.source, self.options.key())
            cached = self.cache.get(sim_key)
            if cached is not None:
                report.simulation = cached
                batch.simulation_cache_hits += 1
            else:
                report.simulation = simulate_program(item.source, self.options)
                self.cache.put(sim_key, report.simulation)
        return report
