"""The whole-program batch driver: ready-queue scheduled, memoized, fault-tolerant.

For every corpus program the driver parses the source, builds the call
graph, and condenses it into strongly-connected components.  Components are
scheduled **bottom-up by dependency count** (callees before callers — the
order the paper validates Barnes–Hut in): each component carries a count of
not-yet-landed callee components, and the moment that count reaches zero it
is runnable, whatever else is still in flight.  There is no wave barrier —
only true call-graph edges ever delay work, and components from *different
programs* interleave freely on the same worker pool.

With ``jobs > 1`` runnable components are packed into cost-balanced chunks
(:func:`repro.driver.executor.pack_chunks`) and pulled by a pool of
persistent warm workers; ``jobs == 1`` bypasses the executor entirely and
runs the same schedule inline (easy profiling and debugging, zero
multiprocessing overhead).  Every function's report is memoized in the
on-disk :class:`~repro.driver.cache.ResultCache` keyed by its own AST and
the unparsed bodies of its transitive callees, so a warm re-run performs no
analysis at all (the acceptance test asserts exactly that).

Partial failure stays partial.  The pooled path reacts to the executor's
``crashed``/``timeout`` events with an escalation ladder instead of aborting:

1. a multi-component chunk that dies is **bisected** — the halves re-run,
   isolating the offender while the innocents complete;
2. a single-component task that dies is **retried with exponential
   backoff**, up to ``max_retries`` times;
3. a component that exhausts its retries runs once in a **sacrificial
   single-task subprocess**; if it completes there, its results are used;
4. if it kills the sacrificial runner too it is **quarantined**: its
   functions are marked ``status="quarantined"``, a replayable JSON record
   is written (see :mod:`repro.driver.faults`), and it is never
   re-dispatched;
5. a task that blows the per-task deadline is bisected the same way; a lone
   component that keeps timing out through its retries is marked
   ``status="timeout"`` — hangs never stall the batch.

Failed functions are *reported* (and never cached, so the next run retries
them); every healthy function still completes.  Only an unrecoverable pool
(respawn failure, respawn budget exhausted) aborts the run.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

from repro.lang.ast_nodes import Program
from repro.lang.errors import LangError
from repro.pathmatrix.interproc import summaries_from_payloads

from repro.driver.cache import ResultCache, function_digests, program_digest
from repro.driver.callgraph import CallGraph, Condensation, build_call_graph, condense
from repro.driver.corpus import CorpusItem
from repro.driver.executor import (
    PersistentExecutor,
    Task,
    TaskTiming,
    estimate_cost,
    pack_chunks,
    run_sacrificial,
    warm_parsed_programs,
)
from repro.driver.faults import SIMULATE_TOKEN, write_quarantine_record
from repro.driver.pipeline import (
    PipelineOptions,
    analyze_function_job,
    parsed_program,
    simulate_program,
)
from repro.driver.stages import IncrementalStats, StagedEngine

#: first retry of a crashed component waits this long; each further retry
#: doubles it (pure backoff — the analysis itself is deterministic)
RETRY_BACKOFF_BASE_S = 0.05

#: function statuses that mean the driver could not produce a result
FAILURE_STATUSES = ("timeout", "crashed", "quarantined")


@dataclass
class ResilienceCounters:
    """How much fault-handling one batch run actually did.

    Zero everywhere on a healthy run; surfaced in the report's ``stats``
    and in ``--profile`` output, in the spirit of an operable daemon's
    health counters.
    """

    retries: int = 0  # task re-dispatches (retry or bisection half)
    timeouts: int = 0  # deadline-watchdog kills
    worker_crashes: int = 0  # worker deaths attributed to a task
    worker_respawns: int = 0  # pool workers replaced
    sacrificial_runs: int = 0  # suspect chunks verified in a throwaway process
    quarantined: int = 0  # functions quarantined as poison
    cache_evictions: int = 0  # corrupt cache entries detected and removed
    cache_io_retries: int = 0  # cache reads that needed a second attempt

    def to_dict(self) -> dict:
        return asdict(self)

    def any_faults(self) -> bool:
        return any(asdict(self).values())


@dataclass
class ProgramReport:
    """Everything the batch run learned about one corpus program."""

    name: str
    functions: dict[str, dict] = field(default_factory=dict)
    #: bottom-up schedule by depth, wave by wave (SCCs as name lists) —
    #: a human-readable view; actual dispatch is by ready-count
    schedule: list[list[list[str]]] = field(default_factory=list)
    simulation: dict | None = None
    error: str | None = None

    def summaries(self):
        """Re-interned :class:`FunctionSummary` objects, one per function
        (functions that failed before producing a summary are skipped)."""
        return summaries_from_payloads(
            payload.get("summary") for payload in self.functions.values()
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "functions": self.functions,
            "schedule": self.schedule,
            "simulation": self.simulation,
            "error": self.error,
        }


@dataclass
class BatchReport:
    """The result of one driver invocation over a corpus."""

    programs: list[ProgramReport] = field(default_factory=list)
    #: per-function analyses actually executed (cache misses)
    analyses_executed: int = 0
    #: per-function reports served from the on-disk cache
    cache_hits: int = 0
    #: whole-program simulations served from the cache
    simulation_cache_hits: int = 0
    jobs: int = 1
    #: workers actually used (1 when the pool was bypassed or never needed)
    effective_jobs: int = 1
    host_cpus: int | None = None
    start_method: str | None = None
    elapsed_s: float = 0.0
    #: aggregate task timing breakdown; ``tasks`` detail only with profiling
    profile: dict | None = None
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    #: staged-engine counters (inline runs only): reused / firewalled /
    #: recomputed / dirty / fixpoints_run — see driver/stages.py
    incremental: dict | None = None

    def program(self, name: str) -> ProgramReport:
        for report in self.programs:
            if report.name == name:
                return report
        raise KeyError(name)

    def function_count(self) -> int:
        return sum(len(p.functions) for p in self.programs)

    def failed_functions(self) -> list[tuple[str, str, str]]:
        """Every function the driver could not analyze, as
        ``(program, function, status)`` tuples."""
        failed = []
        for program in self.programs:
            for name, payload in program.functions.items():
                status = payload.get("status", "ok")
                if status in FAILURE_STATUSES:
                    failed.append((program.name, name, status))
        return failed

    def to_dict(self) -> dict:
        stats = {
            "programs": len(self.programs),
            "functions": self.function_count(),
            "analyses_executed": self.analyses_executed,
            "cache_hits": self.cache_hits,
            "simulation_cache_hits": self.simulation_cache_hits,
            "jobs": self.jobs,
            "effective_jobs": self.effective_jobs,
            "host_cpus": self.host_cpus,
            "start_method": self.start_method,
            "elapsed_s": self.elapsed_s,
            "resilience": self.resilience.to_dict(),
        }
        if self.incremental is not None:
            stats["incremental"] = self.incremental
        if self.profile is not None:
            stats["profile"] = self.profile
        return {
            "programs": [p.to_dict() for p in self.programs],
            "stats": stats,
        }


class BatchExecutionError(RuntimeError):
    """The batch could not run to completion (e.g. the pool is unrecoverable)."""


@dataclass
class _ProgramPlan:
    """Coordinator-side scheduling state for one corpus program."""

    index: int
    item: CorpusItem
    report: ProgramReport
    cond: Condensation | None = None
    #: parsed program + call graph (coordinator-side only, never pickled)
    program: Program | None = None
    graph: CallGraph | None = None
    digests: dict[str, str] = field(default_factory=dict)
    #: component -> cache-missed functions still to analyze
    pending: dict[int, list[str]] = field(default_factory=dict)
    #: component -> estimated analysis cost of its pending functions
    costs: dict[int, int] = field(default_factory=dict)
    #: component -> count of not-yet-landed callee components
    blockers: dict[int, int] = field(default_factory=dict)
    #: component -> how many times a task holding it crashed
    crash_attempts: dict[int, int] = field(default_factory=dict)
    sim_attempts: int = 0
    landed: set[int] = field(default_factory=set)
    #: runnable components not yet packed into a chunk
    ready: list[int] = field(default_factory=list)
    sim_key: str | None = None
    needs_simulation: bool = False

    @property
    def schedulable(self) -> bool:
        return self.cond is not None

    def land(self, component: int) -> list[int]:
        """Mark ``component``'s results available; return newly ready ones."""
        if component in self.landed:
            return []
        self.landed.add(component)
        freed: list[int] = []
        assert self.cond is not None
        for dependent in sorted(self.cond.dependents.get(component, ())):
            self.blockers[dependent] -= 1
            if self.blockers[dependent] == 0 and self.pending.get(dependent):
                freed.append(dependent)
        self.ready.extend(freed)
        return freed


class BatchDriver:
    """Drive the full pipeline over many programs, in parallel, with caching.

    ``jobs=1`` analyzes in-process (no pool); ``jobs>1`` schedules
    cost-balanced chunks of call-graph components onto a persistent worker
    pool the moment their callees have landed.  ``cache_dir=None`` disables
    memoization.  ``start_method`` picks the multiprocessing start method
    (default: ``fork`` where available, else ``spawn``); ``profile=True``
    keeps the per-task timing breakdown in the report.

    Fault tolerance (pooled path only — inline runs share the caller's
    process and cannot be killed or respawned):

    * ``task_timeout`` — per-task deadline in seconds; an overdue task's
      worker is killed, the task bisected or marked ``timeout``.  ``None``
      disables the watchdog (the executor's global stall backstop remains).
    * ``max_retries`` — crashes a single component survives before the
      sacrificial run (then quarantine).
    * ``max_respawns`` — total worker replacements before the pool is
      declared unrecoverable (:class:`BatchExecutionError`); ``None`` means
      unbounded (the retry caps already guarantee termination).
    * ``quarantine``/``quarantine_dir`` — whether poison components get the
      sacrificial verification + quarantine treatment (otherwise they are
      marked ``crashed`` once retries exhaust), and where replayable
      quarantine records are written (``None``: statuses only, no records).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        options: PipelineOptions | None = None,
        simulate: bool = True,
        start_method: str | None = None,
        profile: bool = False,
        task_timeout: float | None = None,
        max_retries: int = 2,
        max_respawns: int | None = None,
        quarantine: bool = True,
        quarantine_dir=None,
        retry_backoff_s: float = RETRY_BACKOFF_BASE_S,
    ):
        self.jobs = max(1, int(jobs))
        self.options = options or PipelineOptions()
        self.cache = ResultCache(cache_dir)
        self.simulate = simulate
        self.start_method = start_method
        self.profile = profile
        self.task_timeout = task_timeout
        self.max_retries = max(0, int(max_retries))
        self.max_respawns = max_respawns
        self.quarantine = quarantine
        self.quarantine_dir = quarantine_dir
        self.retry_backoff_s = retry_backoff_s

    # -- public entry points -------------------------------------------------
    def analyze_corpus(self, items: list[CorpusItem]) -> BatchReport:
        report = BatchReport(jobs=self.jobs, host_cpus=os.cpu_count())
        started = time.perf_counter()

        plans = [self._plan_item(i, item, report) for i, item in enumerate(items)]
        if self.jobs > 1:
            timings = self._run_parallel(plans, report)
        else:
            timings = self._run_inline(plans, report)
        report.profile = self._aggregate_profile(timings)

        report.programs = [plan.report for plan in plans]
        report.resilience.cache_evictions = self.cache.evictions
        report.resilience.cache_io_retries = self.cache.io_retries
        report.elapsed_s = time.perf_counter() - started
        extra = {
            "analyses_executed": report.analyses_executed,
            "run_cache_hits": report.cache_hits,
        }
        if report.incremental is not None:
            extra["incremental"] = report.incremental
        self.cache.write_ledger(extra)
        return report

    # -- planning ------------------------------------------------------------
    def _plan_item(self, index: int, item: CorpusItem, batch: BatchReport) -> _ProgramPlan:
        plan = _ProgramPlan(index=index, item=item, report=ProgramReport(name=item.name))
        try:
            program = parsed_program(item.source)
        except LangError as exc:
            plan.report.error = f"parse error: {exc}"
            return plan
        try:
            graph = build_call_graph(program)
            plan.cond = condense(graph)
        except LangError as exc:  # defensive: malformed programs must not abort the batch
            plan.report.error = str(exc)
            return plan
        plan.report.schedule = plan.cond.waves()
        plan.program = program
        plan.graph = graph
        if self.jobs > 1:
            # pooled path: legacy body-keyed report probing + ready-queue
            # bookkeeping.  The inline path (jobs == 1) skips all of this —
            # the staged engine probes the per-stage artifact store itself.
            plan.digests = function_digests(program, graph, self.options.key())
            self.cache.preload(plan.digests.values())

            plan.blockers = plan.cond.initial_blockers()
            for i, scc in enumerate(plan.cond.sccs):
                pending: list[str] = []
                cost = 0
                for name in scc:
                    cached = self.cache.get(plan.digests[name])
                    if cached is not None:
                        plan.report.functions[name] = cached
                        batch.cache_hits += 1
                    else:
                        pending.append(name)
                        cost += estimate_cost(program.function_named(name), program)
                plan.pending[i] = pending
                plan.costs[i] = cost
            # components with nothing to compute land immediately (their
            # results came from the cache), which may free their dependents
            for i in range(len(plan.cond.sccs)):
                if not plan.pending[i]:
                    plan.land(i)
            plan.ready = [
                i
                for i in range(len(plan.cond.sccs))
                if plan.pending[i] and plan.blockers[i] == 0
            ]

        if self.simulate:
            plan.sim_key = program_digest(item.source, self.options.key())
            self.cache.preload([plan.sim_key], stage="sim")
            cached = self.cache.get(plan.sim_key, stage="sim")
            if cached is not None:
                plan.report.simulation = cached
                batch.simulation_cache_hits += 1
            else:
                plan.needs_simulation = True
        return plan

    # -- inline execution (jobs == 1, the staged incremental engine) -----------
    def _run_inline(self, plans: list[_ProgramPlan], batch: BatchReport) -> list[TaskTiming]:
        batch.start_method = None
        batch.effective_jobs = 1
        work_started = time.perf_counter()
        functions_run = 0
        totals = IncrementalStats()
        engine = StagedEngine(self.cache, self.options)

        def count_reused(_name: str) -> None:
            batch.cache_hits += 1

        def count_recomputed(_name: str) -> None:
            batch.analyses_executed += 1

        for plan in plans:
            if not plan.schedulable:
                continue
            # condensation order is bottom-up, so the engine's two phases
            # never touch a component before its callees
            stats = engine.run(
                plan.item.name,
                plan.program,
                plan.graph,
                plan.cond,
                plan.report.functions,
                on_reused=count_reused,
                on_recomputed=count_recomputed,
            )
            totals.merge(stats)
            functions_run += stats.recomputed
            if plan.needs_simulation:
                self._record_simulation(
                    plan, simulate_program(plan.item.source, self.options)
                )
        batch.incremental = totals.to_dict()
        analyze_s = time.perf_counter() - work_started
        if not functions_run and not any(p.needs_simulation for p in plans):
            return []
        return [
            TaskTiming(
                task_id=0,
                kind="inline",
                program="*",
                functions=functions_run,
                cost=0,
                worker_pid=0,
                queue_wait_s=0.0,
                parse_s=0.0,
                analyze_s=analyze_s,
                transfer_s=0.0,
                total_s=analyze_s,
            )
        ]

    # -- parallel execution (persistent workers, ready queue) ------------------
    def _run_parallel(self, plans: list[_ProgramPlan], batch: BatchReport) -> list[TaskTiming]:
        active = [
            plan
            for plan in plans
            if plan.schedulable and (any(plan.pending.values()) or plan.needs_simulation)
        ]
        if not active:  # fully warm run: do not even start the pool
            batch.effective_jobs = 1
            return []
        sources = [plan.item.source for plan in plans]
        # pre-fork warm-up: forked workers inherit the parsed programs
        # copy-on-write instead of each re-parsing the corpus
        warm_parsed_programs([plan.item.source for plan in active])
        timings: list[TaskTiming] = []
        task_counter = 0

        def next_task_id() -> int:
            nonlocal task_counter
            task_counter += 1
            return task_counter

        def analyze_task(plan: _ProgramPlan, components: list[int]) -> Task:
            return Task(
                task_id=next_task_id(),
                kind="analyze",
                program_index=plan.index,
                program_name=plan.item.name,
                functions=[n for m in components for n in plan.pending[m]],
                components=components,
                cost=sum(plan.costs[m] for m in components),
                attempts={
                    n: plan.crash_attempts.get(m, 0)
                    for m in components
                    for n in plan.pending[m]
                },
            )

        def simulate_task(plan: _ProgramPlan) -> Task:
            return Task(
                task_id=next_task_id(),
                kind="simulate",
                program_index=plan.index,
                program_name=plan.item.name,
                attempts={SIMULATE_TOKEN: plan.sim_attempts},
            )

        def make_tasks(plan: _ProgramPlan) -> list[Task]:
            """Pack everything currently ready in ``plan`` into chunk tasks."""
            if not plan.ready:
                return []
            components = sorted(plan.ready)
            plan.ready = []
            groups = [(plan.pending[i], plan.costs[i]) for i in components]
            return [
                analyze_task(plan, [components[g] for g in chunk])
                for chunk in pack_chunks(groups)
            ]

        def backoff(attempt: int) -> float:
            return self.retry_backoff_s * (2 ** max(0, attempt - 1))

        with PersistentExecutor(
            self.jobs,
            sources,
            self.options,
            self.start_method,
            task_timeout=self.task_timeout,
            max_respawns=self.max_respawns,
        ) as executor:
            batch.start_method = executor.start_method
            batch.effective_jobs = executor.jobs

            def land_and_refill(plan: _ProgramPlan, components: list[int]) -> None:
                for component in components:
                    plan.land(component)
                for new_task in make_tasks(plan):
                    executor.submit(new_task)

            def mark_failed(
                plan: _ProgramPlan, components: list[int], status: str, detail: str
            ) -> None:
                """Give every function of ``components`` a failure payload and
                unblock dependents (their own analyses may still succeed —
                workers recompute callee summaries from source)."""
                for m in components:
                    for name in plan.pending[m]:
                        plan.report.functions[name] = _failure_payload(
                            name, status, detail
                        )
                        if status == "quarantined":
                            batch.resilience.quarantined += 1
                land_and_refill(plan, components)

            def bisect_and_resubmit(plan: _ProgramPlan, task: Task, delay: float) -> None:
                mid = len(task.components) // 2
                for half in (task.components[:mid], task.components[mid:]):
                    batch.resilience.retries += 1
                    executor.submit_delayed(analyze_task(plan, half), delay)

            def handle_done(task: Task, result: dict, timing: TaskTiming) -> None:
                timings.append(timing)
                plan = plans[task.program_index]
                if task.kind == "simulate":
                    self._record_simulation(plan, result["simulation"])
                    return
                for name in task.functions:
                    self._record_result(plan, name, result["results"][name], batch)
                land_and_refill(plan, task.components)

            def handle_crashed(task: Task, exitcode: int | None) -> None:
                batch.resilience.worker_crashes += 1
                plan = plans[task.program_index]
                detail = f"worker died (exit {exitcode})"
                if task.kind == "simulate":
                    plan.sim_attempts += 1
                    if plan.sim_attempts <= self.max_retries:
                        batch.resilience.retries += 1
                        executor.submit_delayed(
                            simulate_task(plan), backoff(plan.sim_attempts)
                        )
                    else:
                        plan.report.simulation = {
                            "status": "crashed",
                            "entry": self.options.entry,
                            "error": f"{detail} after {plan.sim_attempts} attempt(s)",
                        }
                        plan.needs_simulation = False
                    return
                for m in task.components:
                    plan.crash_attempts[m] = plan.crash_attempts.get(m, 0) + 1
                if len(task.components) > 1:
                    # isolate the offender; innocents complete along the way
                    bisect_and_resubmit(plan, task, delay=0.0)
                    return
                (component,) = task.components
                attempts = plan.crash_attempts[component]
                if attempts <= self.max_retries:
                    batch.resilience.retries += 1
                    executor.submit_delayed(
                        analyze_task(plan, [component]), backoff(attempts)
                    )
                    return
                self._handle_exhausted(
                    plan, component, exitcode, executor, batch, land_and_refill,
                    mark_failed,
                )

            def handle_timeout(task: Task) -> None:
                batch.resilience.timeouts += 1
                plan = plans[task.program_index]
                detail = (
                    f"killed by the deadline watchdog after "
                    f"{self.task_timeout:.0f}s"
                    if self.task_timeout is not None
                    else "killed by the deadline watchdog"
                )
                if task.kind == "simulate":
                    plan.report.simulation = {
                        "status": "timeout",
                        "entry": self.options.entry,
                        "error": detail,
                    }
                    plan.needs_simulation = False
                    return
                for m in task.components:
                    plan.crash_attempts[m] = plan.crash_attempts.get(m, 0) + 1
                if len(task.components) > 1:
                    # one hung function must not take its chunk-mates down:
                    # re-run the halves, each under a fresh deadline
                    bisect_and_resubmit(plan, task, delay=0.0)
                    return
                (component,) = task.components
                attempts = plan.crash_attempts[component]
                if attempts <= self.max_retries:
                    # a transient straggler (I/O stall, page-cache miss) may
                    # well finish within a fresh deadline — give it the same
                    # retry budget a crash gets
                    batch.resilience.retries += 1
                    executor.submit_delayed(
                        analyze_task(plan, [component]), backoff(attempts)
                    )
                    return
                mark_failed(
                    plan,
                    task.components,
                    "timeout",
                    f"{detail}; retries exhausted after {attempts} attempt(s)",
                )

            for plan in active:
                for task in make_tasks(plan):
                    executor.submit(task)
                if plan.needs_simulation:
                    # simulation re-derives everything from source, so it has
                    # no scheduling dependency: overlap it with analysis
                    executor.submit(simulate_task(plan))
            while True:
                events = executor.poll()
                if not events:
                    break
                for event in events:
                    if event.kind == "done":
                        handle_done(event.task, event.result, event.timing)
                    elif event.kind == "crashed":
                        handle_crashed(event.task, event.exitcode)
                    else:
                        handle_timeout(event.task)
            batch.resilience.worker_respawns = executor.respawns
        return timings

    # -- escalation: retries exhausted -----------------------------------------
    def _handle_exhausted(
        self,
        plan: _ProgramPlan,
        component: int,
        exitcode: int | None,
        executor: PersistentExecutor,
        batch: BatchReport,
        land_and_refill,
        mark_failed,
    ) -> None:
        functions = plan.pending[component]
        attempts = plan.crash_attempts[component]
        if not self.quarantine:
            mark_failed(
                plan,
                [component],
                "crashed",
                f"worker died (exit {exitcode}) {attempts} time(s); retries exhausted",
            )
            return
        # last chance: one run in a throwaway subprocess, so a repeat crash
        # costs nothing but the subprocess
        batch.resilience.sacrificial_runs += 1
        status, reports = run_sacrificial(
            executor.ctx,
            plan.item.source,
            functions,
            self.options,
            {name: attempts for name in functions},
            self.task_timeout,
        )
        if status == "ok":
            for name in functions:
                self._record_result(plan, name, reports[name], batch)
            land_and_refill(plan, [component])
            return
        if status == "timeout":
            mark_failed(
                plan,
                [component],
                "timeout",
                "sacrificial run killed by the deadline watchdog",
            )
            return
        detail = (
            f"poison task: killed {attempts} pool worker(s) and the "
            "sacrificial runner"
        )
        if self.quarantine_dir is not None:
            path = write_quarantine_record(
                self.quarantine_dir,
                plan.item.name,
                plan.item.source,
                functions,
                attempts,
                exitcode,
                self.options.key(),
            )
            detail += f"; record: {path}"
        mark_failed(plan, [component], "quarantined", detail)

    # -- result bookkeeping ---------------------------------------------------
    def _record_result(
        self, plan: _ProgramPlan, name: str, payload: dict, batch: BatchReport
    ) -> None:
        plan.report.functions[name] = payload
        self.cache.put(plan.digests[name], payload)
        batch.analyses_executed += 1

    def _record_simulation(self, plan: _ProgramPlan, payload: dict) -> None:
        plan.report.simulation = payload
        if plan.sim_key is not None:
            self.cache.put(plan.sim_key, payload, stage="sim")
        plan.needs_simulation = False

    # -- profiling ------------------------------------------------------------
    def _aggregate_profile(self, timings: list[TaskTiming]) -> dict | None:
        if not timings:
            return None
        totals = {
            "tasks": len(timings),
            "functions": sum(t.functions for t in timings if t.kind != "simulate"),
            "queue_wait_s": sum(t.queue_wait_s for t in timings),
            "parse_s": sum(t.parse_s for t in timings),
            "analyze_s": sum(t.analyze_s for t in timings),
            "transfer_s": sum(t.transfer_s for t in timings),
        }
        # queue-wait is back-pressure (work waiting for a free core), not
        # waste; the overhead a serial run would not pay is worker-side
        # re-parsing plus result transfer
        busy = totals["analyze_s"]
        overhead = totals["parse_s"] + totals["transfer_s"]
        totals["overhead_fraction"] = (
            overhead / (busy + overhead) if busy + overhead > 0 else 0.0
        )
        profile = {"totals": totals}
        if self.profile:
            profile["tasks"] = [t.to_dict() for t in timings]
        return profile


def _failure_payload(name: str, status: str, detail: str) -> dict:
    """The report stub for a function the driver could not analyze.

    Shaped like a normal per-function report (``summary``/``analysis``/
    ``loops`` present) so report consumers need no special cases, with
    ``status`` naming the failure and ``fault`` carrying the story.  Never
    cached — the next run retries the function.
    """
    return {
        "function": name,
        "status": status,
        "fault": detail,
        "summary": None,
        "analysis": {"error": f"{status}: {detail}"},
        "loops": [],
    }
