"""Deterministic fault injection for the batch driver.

Robustness code that is only exercised by real hardware failures is dead
code until the worst possible moment.  This module gives every failure mode
the driver tolerates an *injectable, deterministic* twin so tests and the CI
chaos job can drive them on demand:

* **worker crash** — a worker hard-exits (``os._exit``) while analyzing a
  selected function, as an OOM kill or segfault would;
* **hang** — a worker sleeps mid-analysis, so the coordinator's per-task
  deadline watchdog has something to kill;
* **slow analysis** — every analysis sleeps a little, for back-pressure and
  deadline-margin testing;
* **cache corruption** — a cache write lands truncated garbage on disk, the
  way a crashed writer or a bad sector would;
* **transient I/O error** — a cache read raises :class:`OSError` the first
  time, the way a flaky network filesystem would.

Faults are configured by a spec string, either via the ``REPRO_FAULTS``
environment variable (workers inherit it under both start methods) or the
``--inject-faults`` CLI flag (which just sets the variable).  The grammar is
semicolon-separated clauses, each ``kind:key=value,key=value``::

    crash:rate=0.1,seed=7            # ~10% of functions crash their worker once
    crash:function=mid,times=99      # one poison function, crashes every attempt
    hang:function=scale,times=99     # one analysis that never finishes
    slow:seconds=0.05                # every analysis takes 50ms longer
    cache:rate=0.5,seed=3            # ~half of cache writes are corrupted
    cache:writes=1                   # exactly the first cache write is corrupted
    io:rate=1.0,times=1              # every cache read fails once, then works

Every decision is a pure function of the spec and the injection point (a
function name or cache key, plus the attempt number the coordinator tracks),
so a faulted run is bit-reproducible: no RNG state, no wall clock.  A fault
with ``times=N`` fires only on the first ``N`` attempts — that is what makes
a fault *transient* (survivable by retry) versus *permanent* (``times`` high
enough that retries exhaust and the task is quarantined).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, replace
from pathlib import Path

#: environment variable carrying the fault spec (workers inherit it)
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: exit code an injected worker crash dies with (distinct from real bugs'
#: tracebacks and from the legacy test hook's exit 3)
FAULT_CRASH_EXIT = 13

#: pseudo-function token fault specs can name to target a program's
#: machine-simulation task instead of a per-function analysis
SIMULATE_TOKEN = "@simulate"


class FaultSpecError(ValueError):
    """The fault spec string does not parse."""


def _chance(seed: int, token: str) -> float:
    """Deterministic uniform-[0,1) draw for one (seed, token) pair."""
    digest = hashlib.sha256(f"{seed}:{token}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec; the default instance injects nothing."""

    crash_rate: float = 0.0
    crash_seed: int = 0
    crash_times: int = 1
    crash_function: str | None = None
    hang_function: str | None = None
    hang_times: int = 1
    hang_seconds: float = 3600.0
    slow_seconds: float = 0.0
    cache_corrupt_rate: float = 0.0
    cache_corrupt_seed: int = 0
    cache_corrupt_writes: int = 0
    io_error_rate: float = 0.0
    io_error_seed: int = 0
    io_error_times: int = 1

    @property
    def enabled(self) -> bool:
        return self != NO_FAULTS

    # -- worker-side decisions ------------------------------------------------
    def should_crash(self, function: str, attempt: int) -> bool:
        if attempt >= self.crash_times:
            return False
        if self.crash_function is not None and function == self.crash_function:
            return True
        return bool(self.crash_rate) and (
            _chance(self.crash_seed, f"crash:{function}") < self.crash_rate
        )

    def should_hang(self, function: str, attempt: int) -> bool:
        return (
            self.hang_function is not None
            and function == self.hang_function
            and attempt < self.hang_times
        )

    # -- cache-side decisions -------------------------------------------------
    def should_corrupt_cache(self, key: str, write_index: int) -> bool:
        if write_index < self.cache_corrupt_writes:
            return True
        return bool(self.cache_corrupt_rate) and (
            _chance(self.cache_corrupt_seed, f"cache:{key}") < self.cache_corrupt_rate
        )

    def should_io_error(self, key: str, attempt: int) -> bool:
        if attempt >= self.io_error_times:
            return False
        return bool(self.io_error_rate) and (
            _chance(self.io_error_seed, f"io:{key}") < self.io_error_rate
        )


NO_FAULTS = FaultPlan()

#: clause kind -> {spec key: (FaultPlan field, converter)}
_CLAUSES = {
    "crash": {
        "rate": ("crash_rate", float),
        "seed": ("crash_seed", int),
        "times": ("crash_times", int),
        "function": ("crash_function", str),
    },
    "hang": {
        "function": ("hang_function", str),
        "times": ("hang_times", int),
        "seconds": ("hang_seconds", float),
    },
    "slow": {
        "seconds": ("slow_seconds", float),
    },
    "cache": {
        "rate": ("cache_corrupt_rate", float),
        "seed": ("cache_corrupt_seed", int),
        "writes": ("cache_corrupt_writes", int),
    },
    "io": {
        "rate": ("io_error_rate", float),
        "seed": ("io_error_seed", int),
        "times": ("io_error_times", int),
    },
}


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a fault spec string; raises :class:`FaultSpecError` on nonsense."""
    plan = NO_FAULTS
    for clause in filter(None, (c.strip() for c in spec.split(";"))):
        kind, _, body = clause.partition(":")
        kind = kind.strip()
        keys = _CLAUSES.get(kind)
        if keys is None:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (expected one of {', '.join(sorted(_CLAUSES))})"
            )
        if not body.strip():
            raise FaultSpecError(f"fault clause {clause!r} has no parameters")
        for param in filter(None, (p.strip() for p in body.split(","))):
            name, sep, raw = param.partition("=")
            name = name.strip()
            if not sep or name not in keys:
                raise FaultSpecError(
                    f"bad parameter {param!r} for fault kind {kind!r} "
                    f"(expected {', '.join(sorted(keys))})"
                )
            field_name, convert = keys[name]
            try:
                value = convert(raw.strip())
            except ValueError as exc:
                raise FaultSpecError(f"bad value in {param!r}: {exc}") from None
            if field_name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise FaultSpecError(f"{kind}:{name} must be within [0, 1], got {value}")
            plan = replace(plan, **{field_name: value})
    return plan


_PLAN_CACHE: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan:
    """The fault plan the current process is running under (env-driven).

    Parsed once per distinct spec value; a missing or empty variable means
    no faults.  A malformed value raises — better a loud failure at the
    first injection point than a chaos run that silently injected nothing.
    """
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = parse_fault_spec(spec) if spec.strip() else NO_FAULTS
        _PLAN_CACHE[spec] = plan
    return plan


# -- quarantine records -------------------------------------------------------
QUARANTINE_SCHEMA = "driver-quarantine-v1"


def _record_name(program_name: str, functions: list[str]) -> str:
    stem = f"{program_name}_{functions[0]}" if functions else program_name
    return re.sub(r"[^A-Za-z0-9._-]+", "_", stem) + ".json"


def write_quarantine_record(
    directory: str | Path,
    program_name: str,
    source: str,
    functions: list[str],
    attempts: int,
    worker_exitcode: int | None,
    options_key: str,
) -> Path:
    """Persist a replayable record of a poison task.

    The shape mirrors the fuzz-regression records under
    ``tests/fuzz_regressions/`` (``source``/``status``/``description``/
    ``divergences``) with driver-specific fields alongside, so the same
    tooling habits apply: the record carries everything needed to re-run the
    offending analysis in isolation (``python -m repro quarantine --replay``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "schema": QUARANTINE_SCHEMA,
        "generator_version": None,
        "seed": None,
        "scenario": "driver/poison-task",
        "status": "poison",
        "description": (
            f"analysis of {', '.join(functions)} killed {attempts} worker(s) "
            "and the sacrificial single-task runner"
        ),
        "source": source,
        "shrunk_source": None,
        "divergences": [],
        "program": program_name,
        "functions": list(functions),
        "attempts": attempts,
        "worker_exitcode": worker_exitcode,
        "options": options_key,
    }
    path = directory / _record_name(program_name, functions)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_quarantine_record(path: str | Path) -> dict:
    record = json.loads(Path(path).read_text())
    if record.get("schema") != QUARANTINE_SCHEMA:
        raise ValueError(f"{path}: not a {QUARANTINE_SCHEMA} record")
    return record


def replay_quarantine_record(path: str | Path, options=None) -> dict[str, str]:
    """Re-run a quarantined task's analyses inline; returns name -> outcome.

    If the poison was environmental (an injected fault, a since-fixed OOM)
    the replay completes and reports per-function outcomes; if the analysis
    itself is the killer, the replay reproduces the crash in-process, under
    whatever debugger the caller attached — which is the point.
    """
    from repro.driver.pipeline import PipelineOptions, analyze_function_job

    record = load_quarantine_record(path)
    options = options or PipelineOptions()
    outcomes: dict[str, str] = {}
    for name in record.get("functions", []):
        payload = analyze_function_job(record["source"], name, options)
        error = payload.get("analysis", {}).get("error")
        outcomes[name] = f"error: {error}" if error else "ok"
    return outcomes
