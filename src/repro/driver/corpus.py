"""The driver's program corpus: paper examples, on-disk sources, generators.

A corpus item is just (name, toy-language source text).  The built-in corpus
bundles every scenario the repository knows how to exercise:

* ``paper``    — the worked examples of the paper (the section 3.3.2
  polynomial scaling program, the section 3.3.1 subtree move, and the full
  toy-language Barnes–Hut code of section 4),
* ``examples`` — the ``examples/corpus/*.ptr`` source files shipped with the
  repository (and any directory of ``.ptr`` files you point the CLI at),
* ``stress``   — the :mod:`repro.bench.stress` generators (wide matrices,
  deep CFGs, seeded random programs), sized to finish quickly.

``builtin`` is the union of all three — the corpus the acceptance run
(`python -m repro analyze --corpus builtin`) processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.adds.library import standard_source
from repro.bench.stress import (
    call_web_program_source,
    deep_program_source,
    random_program_source,
    wide_program_source,
)
from repro.lang.pretty import unparse

#: file extension of on-disk toy-language programs
SOURCE_SUFFIX = ".ptr"


@dataclass(frozen=True)
class CorpusItem:
    """One program of a batch run."""

    name: str
    source: str
    description: str = ""


# -- paper examples ----------------------------------------------------------
_SCALE_SRC = """
function build(n)
{ var head; var p; var i;
  head = NULL;
  i = 0;
  while i < n
  { p = new ListNode;
    p->coef = i + 1;
    p->exp = i;
    p->next = head;
    head = p;
    i = i + 1;
  }
  return head;
}

function scale(head, c)
{ var p;
  p = head;
  while p <> NULL
  { p->coef = p->coef * c;
    p = p->next;
  }
  return head;
}

function main()
{ var h;
  h = build(64);
  h = scale(h, 3);
  return h;
}
"""

_SUBTREE_MOVE_SRC = """
procedure move_subtree(p1, p2)
{ p1->left = p2->left;
  p2->left = NULL;
}
"""


def paper_corpus() -> list[CorpusItem]:
    from repro.nbody.toy_program import barnes_hut_toy_program

    return [
        CorpusItem(
            name="paper/polynomial_scale",
            source=standard_source("ListNode") + _SCALE_SRC,
            description="section 3.3.2 coefficient-scaling loop (build/scale/main)",
        ),
        CorpusItem(
            name="paper/subtree_move",
            source=standard_source("BinTree") + _SUBTREE_MOVE_SRC,
            description="section 3.3.1 temporary abstraction break and repair",
        ),
        CorpusItem(
            name="paper/barnes_hut",
            source=unparse(barnes_hut_toy_program()),
            description="section 4 Barnes-Hut tree code (BHL1/BHL2)",
        ),
    ]


# -- on-disk sources ---------------------------------------------------------
def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def examples_corpus(directory: str | Path | None = None) -> list[CorpusItem]:
    """Every ``*.ptr`` file under ``directory`` (default: ``examples/corpus``)."""
    root = Path(directory) if directory is not None else _repo_root() / "examples" / "corpus"
    if not root.is_dir():
        return []
    return [
        CorpusItem(
            name=f"examples/{path.stem}",
            source=path.read_text(),
            description=str(path),
        )
        for path in sorted(root.glob(f"*{SOURCE_SUFFIX}"))
    ]


def load_source_file(path: str | Path) -> CorpusItem:
    p = Path(path)
    return CorpusItem(name=p.stem, source=p.read_text(), description=str(p))


# -- generated stress programs ------------------------------------------------
def stress_corpus(full: bool = False) -> list[CorpusItem]:
    import random

    wide = 50 if full else 24
    depth, segment, deep_vars = (8, 6, 30) if full else (4, 4, 12)
    web = 96 if full else 48
    prefix = standard_source("ListNode")
    items = [
        CorpusItem(
            name=f"stress/wide_{wide}",
            source=prefix + wide_program_source(wide),
            description="many simultaneously live pointer variables",
        ),
        CorpusItem(
            name=f"stress/deep_{depth}",
            source=prefix + deep_program_source(depth, segment, deep_vars),
            description="deeply nested traversal loops",
        ),
        CorpusItem(
            name=f"stress/callweb_{web}",
            source=prefix + call_web_program_source(web, seed=7, prefix="web"),
            description="many tiny functions over a deep-and-wide call DAG",
        ),
    ]
    for seed in (1, 2, 3):
        items.append(
            CorpusItem(
                name=f"stress/random_{seed}",
                source=prefix + random_program_source(random.Random(seed)),
                description=f"seeded random statement mix (seed {seed})",
            )
        )
    return items


# -- the named corpora the CLI exposes ----------------------------------------
def builtin_corpus(full: bool = False) -> list[CorpusItem]:
    return paper_corpus() + examples_corpus() + stress_corpus(full=full)


def bench_corpus(full: bool = False) -> list[CorpusItem]:
    """The throughput-benchmark corpus: ``builtin`` plus a ~200-function
    call web, so parallel-scaling numbers are measured on a work mix where
    scheduling and chunking actually matter (hundreds of cheap, dependent
    work units — not just a handful of big ones)."""
    web = 240 if full else 200
    return builtin_corpus(full=full) + [
        CorpusItem(
            name=f"stress/callweb_{web}",
            source=standard_source("ListNode")
            + call_web_program_source(web, seed=11, prefix="bw"),
            description="benchmark-sized call web (scheduler/chunking stress)",
        )
    ]


CORPORA = {
    "builtin": builtin_corpus,
    "bench": bench_corpus,
    "paper": paper_corpus,
    "examples": examples_corpus,
    "stress": stress_corpus,
}


def corpus_named(name: str, full: bool = False) -> list[CorpusItem]:
    try:
        factory = CORPORA[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus {name!r}; available: {', '.join(sorted(CORPORA))}"
        ) from None
    if name in ("builtin", "bench", "stress"):
        return factory(full=full)
    return factory()
