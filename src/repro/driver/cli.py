"""The ``python -m repro`` command line.

Subcommands:

* ``analyze`` — run the whole pipeline (parse → typecheck → path-matrix
  analysis → ADDS validation → loop classification → transforms →
  machine-simulated speedup) over source files and/or a named corpus,
  in parallel, with on-disk memoization and fault tolerance (per-task
  deadlines, crash retry, poison-task quarantine — see docs/robustness.md).
* ``fuzz``    — differentially fuzz the executors: generate seeded random
  programs, run each through the reference interpreter, the machine
  simulator and every applicable transform output, and diff the results.
* ``corpus``  — list the programs of the built-in corpora.
* ``cache``   — show (``info``), integrity-check (``verify``), break down
  per-stage (``stats``), or clear the content-addressed artifact store.
* ``quarantine`` — list or replay poison-task quarantine records.

Exit codes: 0 all-ok; 1 semantic failures in the report (analysis errors,
heap mismatches); 2 usage errors; 3 unrecoverable worker-pool loss;
4 completed with driver-level failures (timeouts / crashes / quarantines —
partial results were produced and reported).

Examples::

    python -m repro analyze --corpus builtin --jobs 4
    python -m repro analyze examples/corpus/list_sum.ptr --format json
    python -m repro analyze --corpus paper --task-timeout 60 --max-retries 3
    python -m repro analyze --corpus paper --inject-faults 'crash:rate=0.1,seed=7'
    python -m repro analyze --corpus builtin --incremental
    python -m repro corpus
    python -m repro cache stats
    python -m repro cache verify --evict
    python -m repro quarantine --replay .repro-cache/quarantine/foo.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.driver.batch import (
    FAILURE_STATUSES,
    BatchDriver,
    BatchExecutionError,
    BatchReport,
)
from repro.driver.corpus import CORPORA, corpus_named, load_source_file
from repro.driver.executor import WorkerPoolError, default_jobs
from repro.driver.faults import FAULTS_ENV_VAR, FaultSpecError, parse_fault_spec
from repro.driver.pipeline import PipelineOptions

DEFAULT_CACHE_DIR = ".repro-cache"

#: default per-task deadline for ``analyze`` (seconds); ``--task-timeout 0``
#: disables the watchdog entirely
DEFAULT_TASK_TIMEOUT_S = 300.0

#: exit code for "the batch completed, but some functions have driver-level
#: failure statuses (timeout/crashed/quarantined)" — partial results exist
EXIT_PARTIAL = 4


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Whole-program batch driver for the ADDS/path-matrix pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze programs end to end")
    analyze.add_argument("paths", nargs="*", help="toy-language source files (.ptr)")
    analyze.add_argument(
        "--corpus",
        choices=sorted(CORPORA),
        help="also analyze a named built-in corpus",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        help=(
            "worker processes (default: cpu count capped at 8, here "
            f"{default_jobs()}; 1 runs inline with no worker pool)"
        ),
    )
    analyze.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "run the staged incremental engine (implies --jobs 1): reuse "
            "per-stage artifacts from the cache across runs and report "
            "reused/firewalled/recomputed counts"
        ),
    )
    analyze.add_argument(
        "--start-method",
        choices=("fork", "spawn"),
        default=None,
        help="multiprocessing start method (default: fork where available)",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="keep the per-task timing breakdown in the report",
    )
    analyze.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    analyze.add_argument("--no-cache", action="store_true", help="disable memoization")
    analyze.add_argument(
        "--no-simulate", action="store_true", help="skip the machine-simulation stage"
    )
    analyze.add_argument(
        "--task-timeout",
        type=float,
        default=DEFAULT_TASK_TIMEOUT_S,
        metavar="SECONDS",
        help=(
            "per-task deadline: tasks running longer are killed and marked "
            f"status=timeout (default {DEFAULT_TASK_TIMEOUT_S:.0f}; "
            "0 or negative disables the watchdog)"
        ),
    )
    analyze.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help=(
            "crashes a single task survives (with exponential backoff) before "
            "the sacrificial run and quarantine (default 2)"
        ),
    )
    analyze.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help=(
            "total worker replacements tolerated before the pool is declared "
            "unrecoverable (exit 3); default: unbounded"
        ),
    )
    analyze.add_argument(
        "--quarantine-dir",
        default=None,
        metavar="DIR",
        help=(
            "where replayable poison-task records are written "
            "(default: <cache-dir>/quarantine; with --no-cache, records are "
            "not written unless this is given)"
        ),
    )
    analyze.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection for chaos testing, e.g. "
            "'crash:rate=0.1,seed=7;hang:function=scale' (see docs/robustness.md)"
        ),
    )
    analyze.add_argument(
        "--solver",
        choices=("worklist", "roundrobin"),
        default="worklist",
        help="fixpoint engine (default worklist)",
    )
    analyze.add_argument(
        "--no-adds", action="store_true", help="ignore ADDS declarations (conservative)"
    )
    analyze.add_argument("--pes", type=int, default=4, help="simulated processors (default 4)")
    analyze.add_argument("--entry", default="main", help="entry function (default main)")
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    analyze.add_argument("--output", help="also write the JSON report to this file")
    analyze.add_argument(
        "--full", action="store_true", help="paper-sized stress corpus instead of quick"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the executors (interpreter vs. machine-sim "
        "vs. transformed programs)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=200, help="number of programs to generate"
    )
    fuzz.add_argument("--start", type=int, default=0, help="first seed (default 0)")
    fuzz.add_argument(
        "--pes", type=int, default=3, help="simulated processors (default 3)"
    )
    fuzz.add_argument(
        "--unroll-factor", type=int, default=3, help="unroll factor (default 3)"
    )
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="minimize each divergent program before reporting",
    )
    fuzz.add_argument(
        "--save-failures",
        metavar="DIR",
        help="write a replayable JSON record per divergent seed into DIR",
    )
    fuzz.add_argument(
        "--replay",
        metavar="PATH",
        help="re-run stored failure record(s) (a JSON file or a directory) "
        "instead of generating programs",
    )
    fuzz.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )

    corpus = sub.add_parser("corpus", help="list the built-in corpus programs")
    corpus.add_argument("--name", default="builtin", choices=sorted(CORPORA))

    cache = sub.add_parser(
        "cache", help="inspect, integrity-check, or clear the result cache"
    )
    cache.add_argument(
        "action",
        nargs="?",
        choices=("info", "verify", "stats"),
        default="info",
        help=(
            "info: entry count (default); verify: checksum every entry; "
            "stats: per-stage artifact counts, bytes, and last-run "
            "hit/firewall rates"
        ),
    )
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    cache.add_argument("--clear", action="store_true", help="delete all cached results")
    cache.add_argument(
        "--evict",
        action="store_true",
        help="with verify: also remove the corrupt entries found",
    )

    quarantine = sub.add_parser(
        "quarantine", help="list or replay poison-task quarantine records"
    )
    quarantine.add_argument(
        "--dir",
        default=str(Path(DEFAULT_CACHE_DIR) / "quarantine"),
        help="quarantine record directory (default <cache-dir>/quarantine)",
    )
    quarantine.add_argument(
        "--replay",
        metavar="PATH",
        help="re-run the recorded analysis inline (a record file or a "
        "directory of records); a truly poison task will crash this process "
        "— that is the point",
    )
    return parser


# -- report rendering ---------------------------------------------------------
def render_text(report: BatchReport) -> str:
    lines: list[str] = []
    for program in report.programs:
        lines.append(f"== {program.name} ==")
        if program.error:
            lines.append(f"  ERROR: {program.error}")
            continue
        waves = len(program.schedule)
        summaries = program.summaries()
        read_only = sum(1 for s in summaries.values() if s.is_read_only)
        shape = sum(1 for s in summaries.values() if s.rearranges_shape)
        lines.append(
            f"  {len(program.functions)} function(s), {waves} bottom-up wave(s), "
            f"{read_only} read-only, {shape} shape-changing"
        )
        for name in sorted(program.functions):
            func = program.functions[name]
            status = func.get("status", "ok")
            if status in FAILURE_STATUSES:
                lines.append(f"  {name}: {status.upper()}: {func.get('fault', '')}")
                continue
            analysis = func.get("analysis", {})
            if analysis.get("error"):
                lines.append(f"  {name}: analysis failed: {analysis['error']}")
                continue
            valid = analysis.get("abstraction_valid", {})
            broken = sorted(t for t, ok in valid.items() if not ok)
            verdict = f"violations for {', '.join(broken)}" if broken else "abstraction valid"
            lines.append(
                f"  {name}: {analysis.get('iterations', '?')} sweep(s), {verdict}"
            )
            for loop in func.get("loops", []):
                transforms = [
                    t for t, o in loop.get("transforms", {}).items() if o.get("applied")
                ]
                extra = f" [{', '.join(transforms)}]" if transforms else ""
                lines.append(
                    f"    loop@{loop.get('line')}: {loop.get('classification')}{extra}"
                )
        sim = program.simulation
        if sim is not None:
            if sim.get("status") == "simulated":
                match = "heaps match" if sim.get("heaps_match") else "HEAP MISMATCH"
                lines.append(
                    f"  simulated on {sim['pes']} PEs: speedup {sim['speedup']:.2f}x "
                    f"over {len(sim['transformed_functions'])} transformed function(s), "
                    f"{match}"
                )
            else:
                detail = f" ({sim['error']})" if sim.get("error") else ""
                lines.append(f"  simulation: {sim.get('status')}{detail}")
        lines.append("")
    lines.append(
        f"{len(report.programs)} program(s), {report.function_count()} function(s): "
        f"{report.analyses_executed} analyzed, {report.cache_hits} from cache "
        f"({report.jobs} job(s), {report.effective_jobs} effective, "
        f"{report.elapsed_s:.2f}s)"
    )
    if report.incremental is not None:
        inc = report.incremental
        lines.append(
            "incremental: "
            f"{inc['reused']} reused ({inc['firewalled']} firewalled), "
            f"{inc['recomputed']} recomputed, {inc['dirty']} dirty, "
            f"{inc['fixpoints_run']} fixpoint(s) run"
        )
    resilience = report.resilience
    if resilience.any_faults():
        lines.append(
            "resilience: "
            f"{resilience.retries} retrie(s), {resilience.timeouts} timeout(s), "
            f"{resilience.worker_crashes} worker crash(es), "
            f"{resilience.worker_respawns} respawn(s), "
            f"{resilience.sacrificial_runs} sacrificial run(s), "
            f"{resilience.quarantined} quarantined, "
            f"{resilience.cache_evictions} cache eviction(s), "
            f"{resilience.cache_io_retries} cache I/O retrie(s)"
        )
    failed = report.failed_functions()
    if failed:
        lines.append(
            "failed: "
            + ", ".join(f"{prog}/{fn} ({status})" for prog, fn, status in failed)
        )
    if report.profile is not None:
        totals = report.profile["totals"]
        lines.append(
            f"profile: {totals['tasks']} task(s) — "
            f"queue-wait {totals['queue_wait_s']:.3f}s, "
            f"parse {totals['parse_s']:.3f}s, "
            f"analyze {totals['analyze_s']:.3f}s, "
            f"transfer {totals['transfer_s']:.3f}s "
            f"({totals['overhead_fraction']:.1%} overhead)"
        )
        for task in report.profile.get("tasks", []):
            lines.append(
                f"  task {task['task_id']:>3} {task['kind']:<9} {task['program']:<28}"
                f" {task['functions']:>3} fn  cost {task['cost']:>6}"
                f"  wait {task['queue_wait_s']:.3f}s"
                f"  parse {task['parse_s']:.3f}s"
                f"  analyze {task['analyze_s']:.3f}s"
                f"  transfer {task['transfer_s']:.3f}s"
                f"  [pid {task['worker_pid']}]"
            )
    return "\n".join(lines)


# -- subcommands --------------------------------------------------------------
def _cmd_analyze(args: argparse.Namespace) -> int:
    items = []
    for path in args.paths:
        try:
            items.append(load_source_file(path))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if args.corpus:
        items.extend(corpus_named(args.corpus, full=args.full))
    if not items:
        print("error: no inputs (pass source files and/or --corpus)", file=sys.stderr)
        return 2

    if args.inject_faults is not None:
        try:
            parse_fault_spec(args.inject_faults)
        except FaultSpecError as exc:
            print(f"error: bad --inject-faults spec: {exc}", file=sys.stderr)
            return 2
        # workers (fork and spawn both) inherit the environment
        os.environ[FAULTS_ENV_VAR] = args.inject_faults

    if args.incremental:
        # the staged engine is the inline path; the artifact store is what
        # carries state between runs, so jobs>1 would be the legacy scheme
        args.jobs = 1
    cache_dir = None if args.no_cache else args.cache_dir
    quarantine_dir = args.quarantine_dir
    if quarantine_dir is None and cache_dir is not None:
        quarantine_dir = str(Path(cache_dir) / "quarantine")

    options = PipelineOptions(
        solver=args.solver,
        use_adds=not args.no_adds,
        pes=args.pes,
        entry=args.entry,
    )
    driver = BatchDriver(
        jobs=args.jobs,
        cache_dir=cache_dir,
        options=options,
        simulate=not args.no_simulate,
        start_method=args.start_method,
        profile=args.profile,
        task_timeout=args.task_timeout if args.task_timeout > 0 else None,
        max_retries=args.max_retries,
        max_respawns=args.max_respawns,
        quarantine_dir=quarantine_dir,
    )
    try:
        report = driver.analyze_corpus(items)
    except (BatchExecutionError, WorkerPoolError) as exc:
        # the pool itself is gone (not just some tasks): nothing trustworthy
        # to report, so this stays a hard failure, never a hang
        print(f"error: batch execution failed: {exc}", file=sys.stderr)
        return 3

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_text(report))
    if _report_partial(report):
        return EXIT_PARTIAL
    return 1 if _report_failed(report) else 0


def _report_partial(report: BatchReport) -> bool:
    """Driver-level degradation: some functions carry a failure status
    (timeout/crashed/quarantined), or a simulation was lost to a fault.
    The batch completed and partial results were reported — exit
    :data:`EXIT_PARTIAL`, distinct from both semantic failure (1) and
    unrecoverable pool loss (3)."""
    if report.failed_functions():
        return True
    return any(
        p.simulation is not None and p.simulation.get("status") in ("crashed", "timeout")
        for p in report.programs
    )


def _report_failed(report: BatchReport) -> bool:
    """Anything the batch could not fully process: parse errors, failed
    per-function analyses, simulation errors, heap mismatches.  The CI smoke
    job relies on this — a silently degraded pipeline must not exit 0."""
    for program in report.programs:
        if program.error:
            return True
        for func in program.functions.values():
            if func.get("analysis", {}).get("error"):
                return True
        sim = program.simulation
        if sim is not None and (
            sim.get("status") in ("error", "limit") or sim.get("heaps_match") is False
        ):
            return True
    return False


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import pathlib

    from repro.fuzz import harness

    if args.replay:
        target = pathlib.Path(args.replay)
        paths = sorted(target.glob("*.json")) if target.is_dir() else [target]
        if not paths:
            print(f"error: no regression records under {target}", file=sys.stderr)
            return 2
        report = harness.FuzzReport()
        for path in paths:
            case = harness.replay_regression(
                path, pes=args.pes, unroll_factor=args.unroll_factor
            )
            report.cases.append(case)
            print(f"{path.name}: {case.summary()}")
    else:
        def progress(case) -> None:
            if case.status in (harness.DIVERGENCE, harness.INVALID):
                print(case.summary(), file=sys.stderr)

        report = harness.run_campaign(
            range(args.start, args.start + args.seeds),
            pes=args.pes,
            unroll_factor=args.unroll_factor,
            shrink=args.shrink,
            on_case=progress,
        )
        if args.save_failures:
            for case in report.failures:
                path = harness.save_regression(case, args.save_failures)
                print(f"saved {path}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 1 if report.failures else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    for item in corpus_named(args.name):
        functions = item.source.count("function ") + item.source.count("procedure ")
        print(f"{item.name:<28} ~{functions:>3} function(s)  {item.description}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.driver.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {args.cache_dir}")
        return 0
    if args.action == "verify":
        audit = cache.verify(evict=args.evict)
        for entry in audit["corrupt"]:
            print(f"corrupt: {entry['file']}: {entry['error']}")
        print(
            f"{args.cache_dir}: {audit['checked']} entr(ies) checked, "
            f"{audit['ok']} ok, {len(audit['corrupt'])} corrupt, "
            f"{audit['evicted']} evicted"
        )
        # corrupt entries still on disk are a problem; evicted ones are fixed
        return 1 if len(audit["corrupt"]) > audit["evicted"] else 0
    if args.action == "stats":
        return _cache_stats(cache, args.cache_dir)
    print(f"{args.cache_dir}: {cache.entry_count()} cached result(s)")
    return 0


def _cache_stats(cache, cache_dir: str) -> int:
    from repro.driver.cache import STAGES

    total_count = 0
    total_bytes = 0
    rows = []
    for stage in STAGES:
        count = cache.entry_count(stage)
        size = cache.disk_usage(stage)
        total_count += count
        total_bytes += size
        if count:
            rows.append((stage, count, size))
    print(f"{cache_dir}: {total_count} artifact(s), {total_bytes} byte(s)")
    for stage, count, size in rows:
        print(f"  {stage:<10} {count:>6} artifact(s)  {size:>10} byte(s)")
    ledger = cache.read_ledger()
    if ledger is None:
        print("last run: no ledger (run analyze with this cache first)")
        return 0
    executed = ledger.get("analyses_executed", 0)
    hits = ledger.get("run_cache_hits", 0)
    served = executed + hits
    rate = f"{hits / served:.1%}" if served else "n/a"
    print(f"last run: {hits}/{served} function(s) from cache (hit rate {rate})")
    inc = ledger.get("incremental")
    if inc:
        reused = inc.get("reused", 0)
        firewalled = inc.get("firewalled", 0)
        fw_rate = f"{firewalled / reused:.1%}" if reused else "n/a"
        print(
            f"last run: {reused} reused, {firewalled} firewalled "
            f"(firewall rate {fw_rate}), {inc.get('recomputed', 0)} recomputed, "
            f"{inc.get('fixpoints_run', 0)} fixpoint(s)"
        )
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    from repro.driver.faults import load_quarantine_record, replay_quarantine_record

    if args.replay:
        target = Path(args.replay)
        paths = sorted(target.glob("*.json")) if target.is_dir() else [target]
        if not paths:
            print(f"error: no quarantine records under {target}", file=sys.stderr)
            return 2
        errors = 0
        for path in paths:
            outcomes = replay_quarantine_record(path)
            for name, outcome in sorted(outcomes.items()):
                print(f"{path.name}: {name}: {outcome}")
                if outcome != "ok":
                    errors += 1
        return 1 if errors else 0

    directory = Path(args.dir)
    records = sorted(directory.glob("*.json")) if directory.exists() else []
    if not records:
        print(f"{directory}: no quarantine records")
        return 0
    for path in records:
        try:
            record = load_quarantine_record(path)
        except (ValueError, OSError) as exc:
            print(f"{path.name}: unreadable record ({exc})")
            continue
        print(
            f"{path.name}: {record.get('program')}: "
            f"{', '.join(record.get('functions', []))} — {record.get('description')}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "quarantine":
        return _cmd_quarantine(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
