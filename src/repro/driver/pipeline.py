"""The end-to-end per-program pipeline the batch driver runs.

Three layers:

* the **stage functions** (:func:`analysis_payload`, :func:`loops_payload`,
  :func:`transforms_payload`, :func:`assemble_report`) — each computes one
  separately cacheable artifact of the staged engine (fixpoint/validation
  verdict, loop classes, transform applicability) with explicit inputs and
  outputs;
* :func:`analyze_function_job` — the unit of parallel fan-out: parse →
  typecheck → path-matrix fixpoint → ADDS validation → loop classification →
  transform applicability, for **one function**, returned as a plain
  JSON-serializable dict (the worker pool and the on-disk cache both speak
  dicts).  It is a thin composition of the stage functions, so the monolith
  path and the staged incremental path cannot drift apart.
* :func:`simulate_program` — the whole-program tail of the pipeline: run
  the original on the reference interpreter, strip-mine every parallelizable
  loop, re-run on the simulated multiprocessor, and report the speedup and
  whether the heaps agree (the paper's semantics-preservation check).

Workers keep a small per-process LRU of parsed programs and analysis
objects so analyzing the thirty functions of one program does not re-parse
it thirty times.

:func:`relativize_report` / :func:`absolutize_report` rebase every source
line a report mentions against the function's first line, so the store holds
offset-independent payloads (byte-identical bodies share one entry) while
everything user-facing stays absolute.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass

from repro.lang.ast_nodes import Call, IntLit, Program
from repro.lang.errors import InterpreterLimitError, LangError
from repro.lang.interpreter import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.pathmatrix.analysis import AnalysisError, PathMatrixAnalysis
from repro.transform.dependence import classify_loop, find_while_loops
from repro.transform.pipeline import software_pipeline_loop
from repro.transform.stripmine import TransformError, strip_mine_function, strip_mine_loop
from repro.transform.unroll import unroll_loop


@dataclass(frozen=True)
class PipelineOptions:
    """Everything that changes what the pipeline computes (part of cache keys)."""

    solver: str = "worklist"
    use_adds: bool = True
    pes: int = 4
    entry: str = "main"

    def key(self) -> str:
        return f"solver={self.solver};adds={self.use_adds};pes={self.pes};entry={self.entry}"


# -- per-worker caches --------------------------------------------------------
_PROGRAM_CACHE: "OrderedDict[str, Program]" = OrderedDict()
_ANALYSIS_CACHE: "OrderedDict[tuple[str, str], PathMatrixAnalysis]" = OrderedDict()
_CACHE_LIMIT = 64  # comfortably fits the bench corpus (sources are small)


def _bounded(cache: OrderedDict, key, factory):
    """LRU lookup: hits move to the back, overflow evicts only the oldest."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
        return value
    value = factory()
    cache[key] = value
    if len(cache) > _CACHE_LIMIT:
        cache.popitem(last=False)
    return value


def parsed_program(source: str) -> Program:
    return _bounded(_PROGRAM_CACHE, source, lambda: parse_program(source))


def analysis_for(source: str, options: PipelineOptions) -> PathMatrixAnalysis:
    return _bounded(
        _ANALYSIS_CACHE,
        (source, options.key()),
        lambda: PathMatrixAnalysis(
            parsed_program(source), use_adds=options.use_adds, memoize_results=True
        ),
    )


# -- the pipeline stages ------------------------------------------------------
def analysis_payload(
    analysis: PathMatrixAnalysis, function: str, options: PipelineOptions
) -> tuple[str, dict]:
    """The fixpoint + ADDS-validation stage: ``(status, analysis-dict)``.

    A *semantic* failure (the analysis rejected the function) comes back as
    ``("error", {"error": ...})`` — distinct from the driver-level failure
    statuses (timeout/crashed/quarantined).
    """
    try:
        result = analysis.analyze_function(function, solver=options.solver)
        final = result.final_matrix()
    except AnalysisError as exc:
        return "error", {"error": str(exc)}
    return "ok", {
        "iterations": result.iterations,
        "blocks_transferred": result.blocks_transferred,
        "exit_matrix": final.to_table(),
        "violations": [str(v) for v in result.violations()],
        "abstraction_valid": {
            type_name: final.validation.is_valid_for(type_name)
            for type_name in sorted(analysis.adds_types)
        },
        "error": None,
    }


def loops_payload(
    program: Program,
    function: str,
    analysis: PathMatrixAnalysis,
    options: PipelineOptions,
) -> tuple[list[dict], list[int]]:
    """The loop-classification stage.

    Returns the per-loop entries (without transform outcomes — those are the
    next stage's artifact) and the indices of the parallelizable loops the
    transform stage should attempt.
    """
    entries: list[dict] = []
    parallelizable: list[int] = []
    for index, loop in enumerate(find_while_loops(program, function)):
        test = classify_loop(
            program, function, loop, use_adds=options.use_adds, analysis=analysis
        )
        entries.append(
            {
                "index": index,
                "line": loop.line,
                "classification": str(test.classification),
                "traversal_var": test.traversal_var,
                "traversal_field": test.traversal_field,
                "reasons": list(test.reasons),
            }
        )
        if test.parallelizable:
            parallelizable.append(index)
    return entries, parallelizable


def transforms_payload(
    program: Program, function: str, loop_indices: list[int]
) -> dict:
    """The transform-applicability stage, for the given parallelizable loops.

    Keyed by the loop index as a string — the artifact round-trips through
    JSON, where integer keys would silently become strings anyway.
    """
    return {
        str(index): _transform_applicability(program, function, index)
        for index in loop_indices
    }


def assemble_report(
    function: str,
    options: PipelineOptions,
    summary: dict | None,
    status: str,
    analysis_dict: dict,
    loop_entries: list[dict],
    transforms: dict,
) -> dict:
    """Compose the stage artifacts into the legacy per-function report."""
    report: dict = {
        "function": function,
        "status": status,
        "solver": options.solver,
        "summary": summary,
        "analysis": analysis_dict,
        "loops": [],
    }
    if status != "ok":
        return report
    for entry in loop_entries:
        merged = dict(entry)
        merged["transforms"] = transforms.get(str(entry["index"]), {})
        report["loops"].append(merged)
    return report


# -- the per-function job -----------------------------------------------------
def analyze_function_job(
    source: str, function: str, options: PipelineOptions
) -> dict:
    """Analyze one function of ``source`` end to end; never raises.

    Unattended batch runs must finish: analysis failures are *reported* (the
    ``error`` fields) rather than propagated.  This is exactly the stage
    functions above run back to back, so a report computed here is
    bit-identical to one the staged engine assembles from cached artifacts.
    """
    program = parsed_program(source)
    analysis = analysis_for(source, options)
    summary = (
        analysis.summaries[function].to_dict()
        if function in analysis.summaries
        else None
    )
    status, analysis_dict = analysis_payload(analysis, function, options)
    if status != "ok":
        return assemble_report(function, options, summary, status, analysis_dict, [], {})
    entries, parallelizable = loops_payload(program, function, analysis, options)
    transforms = transforms_payload(program, function, parallelizable)
    return assemble_report(
        function, options, summary, status, analysis_dict, entries, transforms
    )


def _transform_applicability(program: Program, function: str, index: int) -> dict:
    """Which of the three transformations apply to one parallelizable loop."""
    outcomes: dict = {}
    attempts = {
        "strip_mine": lambda: strip_mine_loop(program, function, loop_index=index),
        "unroll": lambda: unroll_loop(
            program, function, factor=4, loop_index=index, check_dependences=True
        ),
        "software_pipeline": lambda: software_pipeline_loop(
            program, function, loop_index=index
        ),
    }
    for name, attempt in attempts.items():
        try:
            result = attempt()
        except TransformError as exc:
            outcomes[name] = {"applied": False, "error": str(exc)}
        else:
            outcomes[name] = {
                "applied": True,
                "notes": list(getattr(result, "notes", [])),
            }
    return outcomes


# -- line-relative payloads ---------------------------------------------------
_LINE_REF_RE = re.compile(r"line (\d+)")

#: dict keys whose integer values are source line numbers
_LINE_KEYS = frozenset({"line", "loop_line"})


def _shift_lines(value, delta: int, key=None):
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and key in _LINE_KEYS:
        return value + delta
    if isinstance(value, str):
        return _LINE_REF_RE.sub(
            lambda m: f"line {int(m.group(1)) + delta}", value
        )
    if isinstance(value, list):
        return [_shift_lines(v, delta, key) for v in value]
    if isinstance(value, dict):
        return {k: _shift_lines(v, delta, k) for k, v in value.items()}
    return value


def relativize_report(report: dict, base_line: int) -> dict:
    """Rebase every source line in ``report`` to be relative to ``base_line``.

    Applied at the store boundary only: cached payloads say "line 3 of this
    function" so byte-identical bodies at different file offsets share one
    artifact.  In-process and user-facing reports stay absolute.
    """
    return _shift_lines(report, 1 - base_line)


def absolutize_report(report: dict, base_line: int) -> dict:
    """Inverse of :func:`relativize_report` for the probing caller's offset."""
    return _shift_lines(report, base_line - 1)


# -- whole-program simulation -------------------------------------------------
def _heap_fingerprint(interp: Interpreter) -> list:
    """Order-independent digest of the heap's *data* fields (pointer fields
    hold renamed references after a transformation, so only scalars count)."""
    cells = []
    for cell in interp.heap:
        decl = interp._type_decls.get(cell.type_name)
        fields = []
        for name, value in sorted(cell.fields.items()):
            fdecl = decl.field_named(name) if decl is not None else None
            if fdecl is not None and (fdecl.is_pointer or fdecl.array_size is not None):
                continue
            if isinstance(value, float):
                value = round(value, 9)
            fields.append((name, value))
        cells.append((cell.type_name, tuple(fields)))
    return sorted(cells)


#: resource budgets for unattended whole-program simulation: generous enough
#: for every corpus program, small enough that a runaway loop or unbounded
#: recursion surfaces as a typed ``"limit"`` status in minutes, not a hang
SIMULATION_MAX_STEPS = 20_000_000
SIMULATION_MAX_CALL_DEPTH = 64


def simulate_program(source: str, options: PipelineOptions) -> dict:
    """Transform and replay one program on the simulated multiprocessor.

    Returns a report dict; the ``status`` field is one of ``"simulated"``,
    ``"no-entry"``, ``"no-parallel-loops"``, ``"limit"`` (a resource budget
    was exhausted — see :data:`SIMULATION_MAX_STEPS`), or ``"error"``.
    """
    program = parsed_program(source)
    entry = program.function_named(options.entry)
    if entry is None or entry.params:
        return {"status": "no-entry", "entry": options.entry}

    transformed = program
    transformed_functions: list[str] = []
    for func in program.functions:
        if not find_while_loops(program, func.name):
            continue
        try:
            result = strip_mine_function(transformed, func.name)
        except TransformError:
            continue
        transformed = result.program
        transformed_functions.append(func.name)
    if not transformed_functions:
        return {"status": "no-parallel-loops", "entry": options.entry}

    # the strip-mined functions take the processor count as a new trailing
    # argument: patch every call site in the transformed program
    for func in transformed.functions:
        for node in func.body.walk():
            if isinstance(node, Call) and node.func in transformed_functions:
                node.args.append(IntLit(options.pes))

    try:
        _, original = run_program(
            program,
            entry=options.entry,
            max_steps=SIMULATION_MAX_STEPS,
            max_call_depth=SIMULATION_MAX_CALL_DEPTH,
        )
        interp = Interpreter(
            transformed,
            max_steps=SIMULATION_MAX_STEPS,
            max_call_depth=SIMULATION_MAX_CALL_DEPTH,
        )
        simulator = MachineSimulator(SEQUENT_LIKE.with_pes(options.pes))
        executor = simulator.attach_to_interpreter(interp)
        entry_args: tuple = ()
        if options.entry in transformed_functions:
            entry_args = (options.pes,)
        interp.call_function(options.entry, *entry_args)
    except InterpreterLimitError as exc:
        # exhausted is not diverged: report the budget separately so the CLI
        # (and the fuzzer) never confuse a cut-off run with a wrong one
        return {"status": "limit", "entry": options.entry, "error": str(exc)}
    except LangError as exc:
        return {"status": "error", "entry": options.entry, "error": str(exc)}

    trace = executor.trace
    speedup = (
        executor.sequential_cost / trace.elapsed if trace.elapsed > 0 else 1.0
    )
    return {
        "status": "simulated",
        "entry": options.entry,
        "pes": options.pes,
        "transformed_functions": transformed_functions,
        "parallel_steps": trace.parallel_steps,
        "parallel_elapsed": trace.elapsed,
        "sequential_cost": executor.sequential_cost,
        "speedup": speedup,
        "heaps_match": _heap_fingerprint(interp) == _heap_fingerprint(original),
    }
