"""The end-to-end per-program pipeline the batch driver runs.

Two layers:

* :func:`analyze_function_job` — the unit of parallel fan-out and of
  caching: parse → typecheck → path-matrix fixpoint → ADDS validation →
  loop classification → transform applicability, for **one function**,
  returned as a plain JSON-serializable dict (the worker pool and the
  on-disk cache both speak dicts).
* :func:`simulate_program` — the whole-program tail of the pipeline: run
  the original on the reference interpreter, strip-mine every parallelizable
  loop, re-run on the simulated multiprocessor, and report the speedup and
  whether the heaps agree (the paper's semantics-preservation check).

Workers keep a small per-process cache of parsed programs and analysis
objects so analyzing the thirty functions of one program does not re-parse
it thirty times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast_nodes import Call, IntLit, Program
from repro.lang.errors import InterpreterLimitError, LangError
from repro.lang.interpreter import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.pathmatrix.analysis import AnalysisError, PathMatrixAnalysis
from repro.transform.dependence import classify_loop, find_while_loops
from repro.transform.pipeline import software_pipeline_loop
from repro.transform.stripmine import TransformError, strip_mine_function, strip_mine_loop
from repro.transform.unroll import unroll_loop


@dataclass(frozen=True)
class PipelineOptions:
    """Everything that changes what the pipeline computes (part of cache keys)."""

    solver: str = "worklist"
    use_adds: bool = True
    pes: int = 4
    entry: str = "main"

    def key(self) -> str:
        return f"solver={self.solver};adds={self.use_adds};pes={self.pes};entry={self.entry}"


# -- per-worker caches --------------------------------------------------------
_PROGRAM_CACHE: dict[str, Program] = {}
_ANALYSIS_CACHE: dict[tuple[str, str], PathMatrixAnalysis] = {}
_CACHE_LIMIT = 64  # comfortably fits the bench corpus (sources are small)


def _bounded(cache: dict, key, factory):
    value = cache.get(key)
    if value is None:
        if len(cache) >= _CACHE_LIMIT:
            cache.clear()
        value = factory()
        cache[key] = value
    return value


def parsed_program(source: str) -> Program:
    return _bounded(_PROGRAM_CACHE, source, lambda: parse_program(source))


def analysis_for(source: str, options: PipelineOptions) -> PathMatrixAnalysis:
    return _bounded(
        _ANALYSIS_CACHE,
        (source, options.key()),
        lambda: PathMatrixAnalysis(
            parsed_program(source), use_adds=options.use_adds, memoize_results=True
        ),
    )


# -- the per-function job -----------------------------------------------------
def analyze_function_job(
    source: str, function: str, options: PipelineOptions
) -> dict:
    """Analyze one function of ``source`` end to end; never raises.

    Unattended batch runs must finish: analysis failures are *reported* (the
    ``error`` fields) rather than propagated.
    """
    program = parsed_program(source)
    analysis = analysis_for(source, options)
    report: dict = {
        "function": function,
        "status": "ok",
        "solver": options.solver,
        "summary": analysis.summaries[function].to_dict()
        if function in analysis.summaries
        else None,
        "analysis": {},
        "loops": [],
    }

    try:
        result = analysis.analyze_function(function, solver=options.solver)
        final = result.final_matrix()
        report["analysis"] = {
            "iterations": result.iterations,
            "blocks_transferred": result.blocks_transferred,
            "exit_matrix": final.to_table(),
            "violations": [str(v) for v in result.violations()],
            "abstraction_valid": {
                type_name: final.validation.is_valid_for(type_name)
                for type_name in sorted(analysis.adds_types)
            },
            "error": None,
        }
    except AnalysisError as exc:
        # a *semantic* failure (the analysis rejected the function) — distinct
        # from the driver-level failure statuses (timeout/crashed/quarantined)
        report["status"] = "error"
        report["analysis"] = {"error": str(exc)}
        return report

    for index, loop in enumerate(find_while_loops(program, function)):
        test = classify_loop(
            program, function, loop, use_adds=options.use_adds, analysis=analysis
        )
        entry: dict = {
            "index": index,
            "line": loop.line,
            "classification": str(test.classification),
            "traversal_var": test.traversal_var,
            "traversal_field": test.traversal_field,
            "reasons": list(test.reasons),
            "transforms": {},
        }
        if test.parallelizable:
            entry["transforms"] = _transform_applicability(program, function, index)
        report["loops"].append(entry)
    return report


def _transform_applicability(program: Program, function: str, index: int) -> dict:
    """Which of the three transformations apply to one parallelizable loop."""
    outcomes: dict = {}
    attempts = {
        "strip_mine": lambda: strip_mine_loop(program, function, loop_index=index),
        "unroll": lambda: unroll_loop(
            program, function, factor=4, loop_index=index, check_dependences=True
        ),
        "software_pipeline": lambda: software_pipeline_loop(
            program, function, loop_index=index
        ),
    }
    for name, attempt in attempts.items():
        try:
            result = attempt()
        except TransformError as exc:
            outcomes[name] = {"applied": False, "error": str(exc)}
        else:
            outcomes[name] = {
                "applied": True,
                "notes": list(getattr(result, "notes", [])),
            }
    return outcomes


# -- whole-program simulation -------------------------------------------------
def _heap_fingerprint(interp: Interpreter) -> list:
    """Order-independent digest of the heap's *data* fields (pointer fields
    hold renamed references after a transformation, so only scalars count)."""
    cells = []
    for cell in interp.heap:
        decl = interp._type_decls.get(cell.type_name)
        fields = []
        for name, value in sorted(cell.fields.items()):
            fdecl = decl.field_named(name) if decl is not None else None
            if fdecl is not None and (fdecl.is_pointer or fdecl.array_size is not None):
                continue
            if isinstance(value, float):
                value = round(value, 9)
            fields.append((name, value))
        cells.append((cell.type_name, tuple(fields)))
    return sorted(cells)


#: resource budgets for unattended whole-program simulation: generous enough
#: for every corpus program, small enough that a runaway loop or unbounded
#: recursion surfaces as a typed ``"limit"`` status in minutes, not a hang
SIMULATION_MAX_STEPS = 20_000_000
SIMULATION_MAX_CALL_DEPTH = 64


def simulate_program(source: str, options: PipelineOptions) -> dict:
    """Transform and replay one program on the simulated multiprocessor.

    Returns a report dict; the ``status`` field is one of ``"simulated"``,
    ``"no-entry"``, ``"no-parallel-loops"``, ``"limit"`` (a resource budget
    was exhausted — see :data:`SIMULATION_MAX_STEPS`), or ``"error"``.
    """
    program = parsed_program(source)
    entry = program.function_named(options.entry)
    if entry is None or entry.params:
        return {"status": "no-entry", "entry": options.entry}

    transformed = program
    transformed_functions: list[str] = []
    for func in program.functions:
        if not find_while_loops(program, func.name):
            continue
        try:
            result = strip_mine_function(transformed, func.name)
        except TransformError:
            continue
        transformed = result.program
        transformed_functions.append(func.name)
    if not transformed_functions:
        return {"status": "no-parallel-loops", "entry": options.entry}

    # the strip-mined functions take the processor count as a new trailing
    # argument: patch every call site in the transformed program
    for func in transformed.functions:
        for node in func.body.walk():
            if isinstance(node, Call) and node.func in transformed_functions:
                node.args.append(IntLit(options.pes))

    try:
        _, original = run_program(
            program,
            entry=options.entry,
            max_steps=SIMULATION_MAX_STEPS,
            max_call_depth=SIMULATION_MAX_CALL_DEPTH,
        )
        interp = Interpreter(
            transformed,
            max_steps=SIMULATION_MAX_STEPS,
            max_call_depth=SIMULATION_MAX_CALL_DEPTH,
        )
        simulator = MachineSimulator(SEQUENT_LIKE.with_pes(options.pes))
        executor = simulator.attach_to_interpreter(interp)
        entry_args: tuple = ()
        if options.entry in transformed_functions:
            entry_args = (options.pes,)
        interp.call_function(options.entry, *entry_args)
    except InterpreterLimitError as exc:
        # exhausted is not diverged: report the budget separately so the CLI
        # (and the fuzzer) never confuse a cut-off run with a wrong one
        return {"status": "limit", "entry": options.entry, "error": str(exc)}
    except LangError as exc:
        return {"status": "error", "entry": options.entry, "error": str(exc)}

    trace = executor.trace
    speedup = (
        executor.sequential_cost / trace.elapsed if trace.elapsed > 0 else 1.0
    )
    return {
        "status": "simulated",
        "entry": options.entry,
        "pes": options.pes,
        "transformed_functions": transformed_functions,
        "parallel_steps": trace.parallel_steps,
        "parallel_elapsed": trace.elapsed,
        "sequential_cost": executor.sequential_cost,
        "speedup": speedup,
        "heaps_match": _heap_fingerprint(interp) == _heap_fingerprint(original),
    }
