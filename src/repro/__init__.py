"""repro — reproduction of Hummel, Nicolau & Hendren (ICPP 1992).

"Applying an Abstract Data Structure Description Approach to Parallelizing
Scientific Pointer Programs": programmer-supplied shape declarations (ADDS)
drive a general path matrix analysis that validates the declarations,
answers alias queries, and licenses parallelizing transformations of pointer
traversal loops — demonstrated on a Barnes–Hut N-body tree code.

Subpackages
-----------
``repro.lang``
    The analyzable imperative pointer language (parser, interpreter, CFGs).
``repro.adds``
    ADDS declarations, the standard library of them, and the runtime checker.
``repro.pathmatrix``
    General path matrix analysis plus the conservative and k-limited baselines.
``repro.transform``
    Dependence testing, strip-mining, unrolling, software pipelining.
``repro.machine``
    The simulated shared-memory multiprocessor (the Sequent substitute).
``repro.nbody``
    The Barnes–Hut application, native and in the toy language.
``repro.structures``
    The paper's example data structures over the analyzable heap.
``repro.bench``
    The experiment harness regenerating every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "lang",
    "adds",
    "pathmatrix",
    "transform",
    "machine",
    "nbody",
    "structures",
    "bench",
    "__version__",
]
