"""``python -m repro`` — the whole-program batch analysis driver."""

from repro.driver.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
