"""ADDS — Abstract Description of Data Structures (paper section 3).

An ADDS declaration augments a recursive record type with:

* **dimensions** — named "axes" of the structure (a one-way list has one
  dimension, an orthogonal list two, a 2-D range tree three),
* per pointer field, the **direction** it traverses along one dimension
  (``forward`` — one unit away from the origin, ``backward`` — one unit
  toward it, or ``unknown`` — possibly cyclic),
* per pointer field, whether the forward traversal is **unique** (every node
  has at most one inbound edge along that dimension — the "uniquely forward"
  qualifier),
* pairwise **independence** between dimensions (``where A||B``) — a node
  reachable forward along ``A`` is not reachable forward along ``B``;
  dimensions are *dependent* by default (the conservative assumption).

The subpackage provides:

* :mod:`repro.adds.declaration` — the semantic model (:class:`AddsType`),
* :mod:`repro.adds.wellformed` — static well-formedness checks,
* :mod:`repro.adds.library` — the paper's example declarations
  (OneWayList, TwoWayList, BinTree, OrthList, TwoDRangeTree, Octree, ...),
* :mod:`repro.adds.runtime_check` — dynamic validation of a concrete heap
  against a declaration (the runtime analogue of abstraction validation),
* :mod:`repro.adds.properties` — derived facts the analysis consumes
  (acyclic fields, disjointness, "never visits the same node twice").
"""

from repro.adds.declaration import (
    Direction,
    Dimension,
    FieldSpec,
    AddsType,
    AddsDeclarationError,
    from_type_decl,
    program_adds_types,
)
from repro.adds.wellformed import WellFormednessIssue, check_well_formed
from repro.adds.library import (
    ONE_WAY_LIST_SRC,
    TWO_WAY_LIST_SRC,
    BIN_TREE_SRC,
    ORTH_LIST_SRC,
    RANGE_TREE_2D_SRC,
    OCTREE_SRC,
    QUADTREE_SRC,
    standard_declarations,
    standard_source,
    declaration,
)
from repro.adds.runtime_check import (
    ShapeViolation,
    RuntimeShapeChecker,
    check_heap_against_declaration,
)
from repro.adds.properties import DerivedProperties, derive_properties

__all__ = [
    "Direction",
    "Dimension",
    "FieldSpec",
    "AddsType",
    "AddsDeclarationError",
    "from_type_decl",
    "program_adds_types",
    "WellFormednessIssue",
    "check_well_formed",
    "ONE_WAY_LIST_SRC",
    "TWO_WAY_LIST_SRC",
    "BIN_TREE_SRC",
    "ORTH_LIST_SRC",
    "RANGE_TREE_2D_SRC",
    "OCTREE_SRC",
    "QUADTREE_SRC",
    "standard_declarations",
    "standard_source",
    "declaration",
    "ShapeViolation",
    "RuntimeShapeChecker",
    "check_heap_against_declaration",
    "DerivedProperties",
    "derive_properties",
]
