"""Facts derived from an ADDS declaration that the analyses consume.

The paper uses an ADDS declaration to justify two kinds of claims during
analysis and transformation (sections 3.3 and 4.3.2):

1. *traversal properties* — "traversing forward along X never visits the
   same node twice", which removes the false loop-carried dependence of
   ``p = p->next`` loops;
2. *disjointness properties* — "all subtrees of a node are disjoint along
   down", "forward traversals along sub cannot reach nodes reachable along
   down" (independence), which allow parallel processing of subtrees.

:func:`derive_properties` packages these into a :class:`DerivedProperties`
object with a query API; :mod:`repro.pathmatrix` and :mod:`repro.transform`
ask it questions instead of re-deriving facts from the raw declaration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adds.declaration import AddsType, Direction, FieldSpec


@dataclass
class DerivedProperties:
    """Queryable facts about one ADDS type."""

    adds: AddsType
    #: fields whose repeated traversal never revisits a node
    acyclic_fields: set[str] = field(default_factory=set)
    #: fields with at most one inbound edge per node along their dimension
    unique_fields: set[str] = field(default_factory=set)
    #: dimension name -> True when every field along it is acyclic
    acyclic_dimensions: dict[str, bool] = field(default_factory=dict)
    #: unordered independent dimension pairs
    independent_pairs: set[frozenset[str]] = field(default_factory=set)

    # -- traversal ----------------------------------------------------------
    def traversal_never_revisits(self, field_name: str) -> bool:
        """True when a ``p = p->f`` loop is guaranteed to visit distinct nodes.

        This is the key property behind parallelizing BHL1/BHL2: a forward
        (or backward) field along its dimension moves monotonically away from
        (toward) the origin, so the loop body instances touch distinct nodes.
        """
        return field_name in self.acyclic_fields

    def unique_inbound(self, field_name: str) -> bool:
        return field_name in self.unique_fields

    # -- disjointness -------------------------------------------------------
    def subtrees_disjoint(self, field_name: str) -> bool:
        """True when distinct ``f``-successors of distinct nodes are disjoint.

        Holds for uniquely-forward fields: if every node has at most one
        inbound ``f`` edge, then the structures hanging off two different
        nodes via ``f`` cannot share a node reachable by ``f`` traversals.
        """
        return field_name in self.unique_fields and field_name in self.acyclic_fields

    def siblings_disjoint(self, field_a: str, field_b: str) -> bool:
        """True when ``n->a`` and ``n->b`` subtrees are disjoint for any node n.

        The paper encodes this by declaring the fields together
        (``*left, *right is uniquely forward along down``).
        """
        spec_a = self.adds.field_spec(field_a)
        spec_b = self.adds.field_spec(field_b)
        if spec_a is None or spec_b is None:
            return False
        if field_a == field_b:
            # a single uniquely-forward field with fanout > 1 (subtrees[8])
            # has pairwise-disjoint targets
            return spec_a.is_uniquely_forward and spec_a.fanout > 1
        same_group = spec_a.group is not None and spec_a.group == spec_b.group
        both_unique = spec_a.is_uniquely_forward and spec_b.is_uniquely_forward
        same_dim = spec_a.dimension == spec_b.dimension
        return both_unique and same_dim and (same_group or True)

    def dimensions_independent(self, dim_a: str, dim_b: str) -> bool:
        return frozenset((dim_a, dim_b)) in self.independent_pairs

    def fields_independent(self, field_a: str, field_b: str) -> bool:
        """True when forward traversals along the two fields cannot meet.

        Requires the fields to traverse *independent* dimensions.  Dependent
        dimensions (the default) may lead to a common node — e.g. ``down``
        and ``leaves`` in the octree both reach the particles.
        """
        da = self.adds.dimension_of(field_a)
        db = self.adds.dimension_of(field_b)
        if da is None or db is None or da == db:
            return False
        return self.dimensions_independent(da, db)

    # -- cycles --------------------------------------------------------------
    def may_form_cycle(self, field_name: str) -> bool:
        """Conservative: can repeated traversal of ``field_name`` revisit a node?"""
        return field_name not in self.acyclic_fields

    def needless_cycle_pairs(self) -> list[tuple[str, str]]:
        """Field pairs whose combination closes only *benign* 2-cycles.

        E.g. ``next``/``prev`` of a two-way list: the combination forms
        cycles, but ADDS tells us they are the forward/backward pair of a
        single dimension, so structure estimation need not merge nodes —
        this is exactly the "freed from estimating needless cycles" benefit
        claimed in section 3.3.
        """
        pairs: list[tuple[str, str]] = []
        names = list(self.adds.fields)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.adds.opposite_directions(a, b):
                    pairs.append((a, b))
        return pairs

    def summary(self) -> str:
        lines = [f"Derived properties for {self.adds.name}:"]
        lines.append(f"  acyclic fields: {sorted(self.acyclic_fields) or '(none)'}")
        lines.append(f"  uniquely-forward fields: {sorted(self.unique_fields) or '(none)'}")
        for dim, ok in sorted(self.acyclic_dimensions.items()):
            lines.append(f"  dimension {dim}: {'acyclic' if ok else 'possibly cyclic'}")
        for pair in sorted(tuple(sorted(p)) for p in self.independent_pairs):
            lines.append(f"  independent: {pair[0]} || {pair[1]}")
        return "\n".join(lines)


def derive_properties(adds: AddsType) -> DerivedProperties:
    """Compute :class:`DerivedProperties` from a declaration."""
    props = DerivedProperties(adds=adds)
    for name, spec in adds.fields.items():
        if spec.direction in (Direction.FORWARD, Direction.BACKWARD):
            props.acyclic_fields.add(name)
        if spec.is_uniquely_forward:
            props.unique_fields.add(name)
    for dim_name, dim in adds.dimensions.items():
        props.acyclic_dimensions[dim_name] = dim.is_acyclic
    props.independent_pairs = set(adds.independences)
    return props
