"""The paper's example ADDS declarations, as reusable source snippets.

Section 3 of the paper develops ADDS declarations for a series of scientific
pointer data structures; this module reproduces each of them verbatim (up to
surface-syntax details of the toy language) and exposes both the source text
and the parsed :class:`~repro.adds.declaration.AddsType` model.

=================  =========================================================
Declaration        Paper reference
=================  =========================================================
OneWayList         section 3.1.1 (bignums, polynomials)
TwoWayList         section 2.2 (implicit-information example)
BinTree            section 2.2 / 3.1.3
OrthList           section 3.1.3, Figure 3 (sparse matrices)
TwoDRangeTree      section 3.1.3, Figure 4 (computational geometry)
Octree             section 4.3.1, Figure 5 (Barnes–Hut N-body)
QuadTree           section 1 (quadtrees as motivating structure; 2-D analogue
                   of the octree, used in examples/tests)
TournamentList     Figure 1 — a *shared* list built from ListNode; included
                   so precision experiments can show ADDS + analysis
                   distinguishing it from a OneWayList
=================  =========================================================
"""

from __future__ import annotations

from functools import lru_cache

from repro.adds.declaration import AddsType, from_type_decl, program_adds_types
from repro.lang.ast_nodes import Program, TypeDecl
from repro.lang.parser import parse_program


ONE_WAY_LIST_SRC = """
type OneWayList [X]
{ int data;
  OneWayList *next is uniquely forward along X;
};
"""

#: The polynomial/bignum node of section 3.1.1, with an explicit ADDS shape.
LIST_NODE_SRC = """
type ListNode [X]
{ int coef;
  int exp;
  ListNode *next is uniquely forward along X;
};
"""

TWO_WAY_LIST_SRC = """
type TwoWayList [X]
{ int data;
  TwoWayList *next is uniquely forward along X;
  TwoWayList *prev is backward along X;
};
"""

BIN_TREE_SRC = """
type BinTree [down]
{ int data;
  BinTree *left, *right is uniquely forward along down;
};
"""

ORTH_LIST_SRC = """
type OrthList [X] [Y]
{ int data;
  OrthList *across is uniquely forward along X;
  OrthList *back is backward along X;
  OrthList *down is uniquely forward along Y;
  OrthList *up is backward along Y;
};
"""

RANGE_TREE_2D_SRC = """
type TwoDRangeTree [down] [sub] [leaves] where sub||down, sub||leaves
{ int data;
  TwoDRangeTree *left, *right is uniquely forward along down;
  TwoDRangeTree *subtree is uniquely forward along sub;
  TwoDRangeTree *next is uniquely forward along leaves;
  TwoDRangeTree *prev is backward along leaves;
};
"""

OCTREE_SRC = """
type Octree [down] [leaves]
{ float mass;
  float x;
  float y;
  float z;
  float half;
  float force;
  float vx;
  float vy;
  float vz;
  bool node_type;
  Octree *subtrees[8] is uniquely forward along down;
  Octree *next is uniquely forward along leaves;
};
"""

QUADTREE_SRC = """
type QuadTree [down] [leaves]
{ float mass;
  float x;
  float y;
  bool node_type;
  QuadTree *subtrees[4] is uniquely forward along down;
  QuadTree *next is uniquely forward along leaves;
};
"""

#: A ListNode-shaped type *without* ADDS information — the compiler's default
#: view (one unknown-direction dimension).  Used as the conservative baseline.
PLAIN_LIST_NODE_SRC = """
type PlainListNode
{ int coef;
  int exp;
  PlainListNode *next;
};
"""

#: The "tournament" list of Figure 1: nodes may be pointed to by more than one
#: other node along X, so ``next`` is forward but *not* uniquely forward.
TOURNAMENT_LIST_SRC = """
type TournamentList [X]
{ int data;
  TournamentList *next is forward along X;
};
"""

_ALL_SOURCES: dict[str, str] = {
    "OneWayList": ONE_WAY_LIST_SRC,
    "ListNode": LIST_NODE_SRC,
    "TwoWayList": TWO_WAY_LIST_SRC,
    "BinTree": BIN_TREE_SRC,
    "OrthList": ORTH_LIST_SRC,
    "TwoDRangeTree": RANGE_TREE_2D_SRC,
    "Octree": OCTREE_SRC,
    "QuadTree": QUADTREE_SRC,
    "PlainListNode": PLAIN_LIST_NODE_SRC,
    "TournamentList": TOURNAMENT_LIST_SRC,
}


def standard_source(name: str) -> str:
    """Return the source snippet of the standard declaration ``name``."""
    if name not in _ALL_SOURCES:
        raise KeyError(
            f"no standard ADDS declaration named {name!r}; "
            f"available: {', '.join(sorted(_ALL_SOURCES))}"
        )
    return _ALL_SOURCES[name]


@lru_cache(maxsize=None)
def _parsed(name: str) -> TypeDecl:
    program = parse_program(standard_source(name))
    return program.types[0]


def type_decl(name: str) -> TypeDecl:
    """The parsed :class:`TypeDecl` of the standard declaration ``name``."""
    return _parsed(name)


def declaration(name: str) -> AddsType:
    """The :class:`AddsType` semantic model of the standard declaration ``name``."""
    return from_type_decl(_parsed(name))


def standard_declarations() -> dict[str, AddsType]:
    """All standard declarations keyed by type name."""
    return {name: declaration(name) for name in _ALL_SOURCES}


def standard_program(*names: str) -> Program:
    """Parse a program containing the requested standard type declarations."""
    selected = names or tuple(_ALL_SOURCES)
    source = "\n".join(standard_source(n) for n in selected)
    return parse_program(source)


def merged_into(program_source: str, *names: str) -> Program:
    """Parse ``program_source`` with the named standard declarations prepended."""
    prefix = "\n".join(standard_source(n) for n in names)
    return parse_program(prefix + "\n" + program_source)
