"""Dynamic validation of a concrete heap against an ADDS declaration.

The paper notes (section 2.2) that one positive side effect of ADDS is "the
compiler's ability to generate run-time checks for the proper use of dynamic
data structures".  This module is that checker: given a heap built by the
interpreter (or by the native data-structure library via an adapter) and an
:class:`~repro.adds.declaration.AddsType`, it verifies

* **acyclicity** — no cycle among edges of the fields declared
  forward/backward along each dimension,
* **uniqueness** — every node has at most one inbound edge along a
  ``uniquely forward`` field (per dimension),
* **direction consistency** — a backward field must invert some forward
  field of the same dimension (e.g. ``prev`` edges must be the reverse of
  ``next`` edges) whenever both exist,
* **independence** — for dimensions declared independent, a node reachable
  by forward traversal along one dimension from some origin is not reachable
  by forward traversal along the other (excluding the origin itself).

Violations are reported as :class:`ShapeViolation` records; an empty list
means the structure currently satisfies its declaration (the dynamic
counterpart of "the abstraction is valid at this program point").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.adds.declaration import AddsType, Direction
from repro.lang.heap import Heap, NULL_REF


@dataclass(frozen=True)
class ShapeViolation:
    """One way in which the concrete heap contradicts the declaration."""

    kind: str          # "cycle" | "uniqueness" | "direction" | "independence"
    type_name: str
    dimension: str
    message: str
    nodes: tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.type_name}.{self.dimension}: {self.message}"


class RuntimeShapeChecker:
    """Check the cells of one record type in ``heap`` against ``adds``."""

    def __init__(self, heap: Heap, adds: AddsType):
        self.heap = heap
        self.adds = adds
        self._cells = heap.cells_of_type(adds.name)
        self._refs = {c.ref for c in self._cells}

    # -- edge extraction -----------------------------------------------------
    def _edges_of_field(self, field_name: str) -> list[tuple[int, int]]:
        """All ``(src, dst)`` pointer edges stored in ``field_name``."""
        edges: list[tuple[int, int]] = []
        for cell in self._cells:
            value = cell.fields.get(field_name)
            if value is None:
                continue
            if isinstance(value, list):
                targets = [v for v in value if isinstance(v, int) and not isinstance(v, bool)]
            elif isinstance(value, int) and not isinstance(value, bool):
                targets = [value]
            else:
                targets = []
            for dst in targets:
                if dst != NULL_REF and dst in self._refs:
                    edges.append((cell.ref, dst))
        return edges

    def _dimension_edges(self, dimension: str, directions: Iterable[Direction]) -> list[tuple[int, int]]:
        edges: list[tuple[int, int]] = []
        for spec in self.adds.fields_along(dimension):
            if spec.direction in directions:
                edges.extend(self._edges_of_field(spec.name))
        return edges

    # -- individual checks -----------------------------------------------------
    def check_acyclicity(self) -> list[ShapeViolation]:
        """Forward edges (and, separately, backward edges) per dimension must be acyclic."""
        violations: list[ShapeViolation] = []
        for dim_name, dim in self.adds.dimensions.items():
            for label, directions in (
                ("forward", (Direction.FORWARD,)),
                ("backward", (Direction.BACKWARD,)),
            ):
                specs = [s for s in dim.all_fields() if s.direction in directions]
                if not specs:
                    continue
                edges = self._dimension_edges(dim_name, directions)
                cycle = _find_cycle(self._refs, edges)
                if cycle:
                    violations.append(
                        ShapeViolation(
                            kind="cycle",
                            type_name=self.adds.name,
                            dimension=dim_name,
                            message=(
                                f"{label} traversal along {dim_name} revisits a node "
                                f"(cycle of length {len(cycle)})"
                            ),
                            nodes=tuple(cycle),
                        )
                    )
        return violations

    def check_uniqueness(self) -> list[ShapeViolation]:
        """Uniquely-forward fields: at most one inbound edge per node per dimension."""
        violations: list[ShapeViolation] = []
        for dim_name, dim in self.adds.dimensions.items():
            unique_specs = [s for s in dim.forward_fields if s.unique]
            if not unique_specs:
                continue
            inbound: dict[int, int] = {}
            offenders: set[int] = set()
            for spec in unique_specs:
                for _src, dst in self._edges_of_field(spec.name):
                    inbound[dst] = inbound.get(dst, 0) + 1
                    if inbound[dst] > 1:
                        offenders.add(dst)
            if offenders:
                violations.append(
                    ShapeViolation(
                        kind="uniqueness",
                        type_name=self.adds.name,
                        dimension=dim_name,
                        message=(
                            f"{len(offenders)} node(s) have more than one inbound edge "
                            f"along uniquely-forward dimension {dim_name}"
                        ),
                        nodes=tuple(sorted(offenders)),
                    )
                )
        return violations

    def check_directions(self) -> list[ShapeViolation]:
        """Backward fields must point against some forward edge of the same dimension."""
        violations: list[ShapeViolation] = []
        for dim_name, dim in self.adds.dimensions.items():
            if not dim.forward_fields or not dim.backward_fields:
                continue
            forward = set(self._dimension_edges(dim_name, (Direction.FORWARD,)))
            for spec in dim.backward_fields:
                bad: list[int] = []
                for src, dst in self._edges_of_field(spec.name):
                    if (dst, src) not in forward:
                        bad.append(src)
                if bad:
                    violations.append(
                        ShapeViolation(
                            kind="direction",
                            type_name=self.adds.name,
                            dimension=dim_name,
                            message=(
                                f"backward field {spec.name!r} has {len(bad)} edge(s) that do "
                                f"not invert any forward edge along {dim_name}"
                            ),
                            nodes=tuple(bad),
                        )
                    )
        return violations

    def check_independence(self) -> list[ShapeViolation]:
        """Independent dimensions must not reach common nodes by forward traversal."""
        violations: list[ShapeViolation] = []
        for pair in self.adds.independences:
            dim_a, dim_b = sorted(pair)
            fwd_a = _adjacency(self._dimension_edges(dim_a, (Direction.FORWARD,)))
            fwd_b = _adjacency(self._dimension_edges(dim_b, (Direction.FORWARD,)))
            overlap: set[int] = set()
            for origin in self._refs:
                reach_a = _reachable(origin, fwd_a) - {origin}
                reach_b = _reachable(origin, fwd_b) - {origin}
                both = reach_a & reach_b
                if both:
                    overlap |= both
            if overlap:
                violations.append(
                    ShapeViolation(
                        kind="independence",
                        type_name=self.adds.name,
                        dimension=f"{dim_a}||{dim_b}",
                        message=(
                            f"{len(overlap)} node(s) reachable by forward traversal along "
                            f"both {dim_a} and {dim_b}, which were declared independent"
                        ),
                        nodes=tuple(sorted(overlap)),
                    )
                )
        return violations

    def check(self) -> list[ShapeViolation]:
        """Run every check and return the concatenated violation list."""
        return (
            self.check_acyclicity()
            + self.check_uniqueness()
            + self.check_directions()
            + self.check_independence()
        )


def check_heap_against_declaration(heap: Heap, adds: AddsType) -> list[ShapeViolation]:
    """Convenience wrapper: check ``heap``'s cells of ``adds.name`` against ``adds``."""
    return RuntimeShapeChecker(heap, adds).check()


# ---------------------------------------------------------------------------
# small graph helpers
# ---------------------------------------------------------------------------
def _adjacency(edges: Iterable[tuple[int, int]]) -> dict[int, list[int]]:
    adj: dict[int, list[int]] = {}
    for src, dst in edges:
        adj.setdefault(src, []).append(dst)
    return adj


def _reachable(origin: int, adj: dict[int, list[int]]) -> set[int]:
    seen: set[int] = set()
    stack = [origin]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(adj.get(cur, ()))
    return seen


def _find_cycle(nodes: Iterable[int], edges: Iterable[tuple[int, int]]) -> list[int]:
    """Return the nodes of one cycle in the directed graph, or [] when acyclic."""
    adj = _adjacency(edges)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {n: WHITE for n in nodes}
    parent: dict[int, int] = {}

    for start in list(color):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        while stack:
            node, idx = stack[-1]
            if idx == 0:
                color[node] = GRAY
            succs = adj.get(node, [])
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                if color.get(nxt, WHITE) == GRAY:
                    # reconstruct the cycle nxt -> ... -> node -> nxt
                    cycle = [nxt]
                    for frame_node, _ in reversed(stack):
                        cycle.append(frame_node)
                        if frame_node == nxt:
                            break
                    return list(dict.fromkeys(cycle))
                if color.get(nxt, WHITE) == WHITE:
                    parent[nxt] = node
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return []
