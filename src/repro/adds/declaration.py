"""Semantic model of ADDS declarations.

This module translates the syntactic ADDS annotations attached to a
:class:`repro.lang.ast_nodes.TypeDecl` into the semantic objects the
analyses operate on: :class:`AddsType`, :class:`Dimension`,
:class:`FieldSpec` and :class:`Direction`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator

from repro.lang.ast_nodes import Program, TypeDecl


class AddsDeclarationError(Exception):
    """Raised for malformed ADDS declarations (unknown dimension names, ...)."""


class Direction(enum.Enum):
    """The direction a pointer field traverses along its dimension.

    ``FORWARD``/``BACKWARD`` declare acyclic movement away from / toward the
    dimension's origin; ``UNKNOWN`` is the conservative default that permits
    cycles (the paper: "all recursive pointer fields traverse D in an
    'unknown' (i.e. possibly cyclic) direction").
    """

    FORWARD = "forward"
    BACKWARD = "backward"
    UNKNOWN = "unknown"

    @property
    def is_acyclic(self) -> bool:
        return self is not Direction.UNKNOWN

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FieldSpec:
    """ADDS facts about one recursive pointer field.

    ``group`` ties together fields declared in the same declarator list
    (e.g. ``Octree *left, *right is uniquely forward along down``); the paper
    uses co-declaration to express that left/right traversals are disjoint.
    ``fanout`` is the number of pointers held by the field (1 for a scalar
    pointer, k for a ``subtrees[k]`` array).
    """

    name: str
    dimension: str
    direction: Direction = Direction.UNKNOWN
    unique: bool = False
    group: int | None = None
    fanout: int = 1

    @property
    def is_acyclic(self) -> bool:
        return self.direction.is_acyclic

    @property
    def is_uniquely_forward(self) -> bool:
        return self.unique and self.direction is Direction.FORWARD

    def describe(self) -> str:
        uniq = "uniquely " if self.unique else ""
        return f"{self.name} is {uniq}{self.direction} along {self.dimension}"


@dataclass
class Dimension:
    """One declared dimension with the fields that traverse it."""

    name: str
    forward_fields: list[FieldSpec] = dc_field(default_factory=list)
    backward_fields: list[FieldSpec] = dc_field(default_factory=list)
    unknown_fields: list[FieldSpec] = dc_field(default_factory=list)

    def all_fields(self) -> list[FieldSpec]:
        return self.forward_fields + self.backward_fields + self.unknown_fields

    @property
    def is_acyclic(self) -> bool:
        """A dimension is acyclic iff no field traverses it in an unknown direction."""
        return not self.unknown_fields

    @property
    def has_unique_forward(self) -> bool:
        return any(f.unique for f in self.forward_fields)


@dataclass
class AddsType:
    """The ADDS view of one record type.

    ``independences`` holds unordered pairs of dimension names declared
    independent; every other pair is dependent (the conservative default,
    see footnote 3 of the paper).
    """

    name: str
    dimensions: dict[str, Dimension] = dc_field(default_factory=dict)
    fields: dict[str, FieldSpec] = dc_field(default_factory=dict)
    independences: set[frozenset[str]] = dc_field(default_factory=set)
    #: non-ADDS data fields (payload), kept for completeness
    data_fields: list[str] = dc_field(default_factory=list)
    #: pointer fields to *other* record types (not part of the recursive shape)
    external_pointer_fields: list[str] = dc_field(default_factory=list)

    # -- queries used throughout the analysis --------------------------------
    def has_adds_info(self) -> bool:
        """True when the programmer actually declared dimensions (not defaulted)."""
        return any(
            spec.direction is not Direction.UNKNOWN or spec.unique
            for spec in self.fields.values()
        ) and bool(self.dimensions)

    def field_spec(self, field_name: str) -> FieldSpec | None:
        return self.fields.get(field_name)

    def dimension_of(self, field_name: str) -> str | None:
        spec = self.fields.get(field_name)
        return spec.dimension if spec is not None else None

    def direction_of(self, field_name: str) -> Direction:
        spec = self.fields.get(field_name)
        return spec.direction if spec is not None else Direction.UNKNOWN

    def is_acyclic_field(self, field_name: str) -> bool:
        """True when following ``field_name`` can never close a cycle.

        A field is acyclic if it is declared ``forward`` or ``backward``
        along its dimension *and* no other field traverses the same dimension
        in an unknown direction.  (Forward and backward along the same
        dimension do form 2-cycles — e.g. ``next``/``prev`` — but each field
        on its own never revisits a node; that per-field property is what the
        analysis needs for traversal loops.)
        """
        spec = self.fields.get(field_name)
        return spec is not None and spec.is_acyclic

    def is_unique_field(self, field_name: str) -> bool:
        spec = self.fields.get(field_name)
        return spec is not None and spec.unique

    def independent(self, dim_a: str, dim_b: str) -> bool:
        """True when the two dimensions were declared independent (``A||B``)."""
        if dim_a == dim_b:
            return False
        return frozenset((dim_a, dim_b)) in self.independences

    def dependent(self, dim_a: str, dim_b: str) -> bool:
        return dim_a != dim_b and not self.independent(dim_a, dim_b)

    def fields_along(self, dimension: str) -> list[FieldSpec]:
        dim = self.dimensions.get(dimension)
        return dim.all_fields() if dim is not None else []

    def sibling_fields(self, field_name: str) -> list[FieldSpec]:
        """Fields co-declared with ``field_name`` (the disjoint-subtree hint)."""
        spec = self.fields.get(field_name)
        if spec is None or spec.group is None:
            return []
        return [
            other
            for other in self.fields.values()
            if other.group == spec.group and other.name != field_name
        ]

    def same_dimension(self, field_a: str, field_b: str) -> bool:
        da, db = self.dimension_of(field_a), self.dimension_of(field_b)
        return da is not None and da == db

    def opposite_directions(self, field_a: str, field_b: str) -> bool:
        """True for e.g. ``next``/``prev``: same dimension, forward vs backward."""
        if not self.same_dimension(field_a, field_b):
            return False
        dirs = {self.direction_of(field_a), self.direction_of(field_b)}
        return dirs == {Direction.FORWARD, Direction.BACKWARD}

    def recursive_field_names(self) -> list[str]:
        return list(self.fields)

    def describe(self) -> str:
        """Human-readable summary (used in reports and examples)."""
        lines = [f"ADDS type {self.name}"]
        dims = ", ".join(self.dimensions) or "(single default dimension)"
        lines.append(f"  dimensions: {dims}")
        for pair in sorted(tuple(sorted(p)) for p in self.independences):
            lines.append(f"  independent: {pair[0]} || {pair[1]}")
        for spec in self.fields.values():
            lines.append(f"  {spec.describe()}")
        if self.data_fields:
            lines.append(f"  data fields: {', '.join(self.data_fields)}")
        return "\n".join(lines)


DEFAULT_DIMENSION = "D"


def from_type_decl(decl: TypeDecl) -> AddsType:
    """Build the :class:`AddsType` semantic model from a parsed declaration.

    Follows the paper's defaulting rule: a structure with no declared
    dimensions has one dimension ``D`` traversed by every recursive pointer
    field in an unknown (possibly cyclic) direction.
    """
    adds = AddsType(name=decl.name)
    declared_dims = list(decl.dimensions)
    if not declared_dims:
        declared_dims = [DEFAULT_DIMENSION]
    for dim_name in declared_dims:
        adds.dimensions[dim_name] = Dimension(name=dim_name)

    for a, b in decl.independences:
        for d in (a, b):
            if d not in adds.dimensions:
                raise AddsDeclarationError(
                    f"type {decl.name}: independence clause mentions unknown dimension {d!r}"
                )
        adds.independences.add(frozenset((a, b)))

    for f in decl.fields:
        if not f.is_pointer:
            adds.data_fields.append(f.name)
            continue
        if f.type_name != decl.name:
            adds.external_pointer_fields.append(f.name)
            continue
        if f.adds is not None:
            dim_name = f.adds.dimension
            if dim_name not in adds.dimensions:
                raise AddsDeclarationError(
                    f"type {decl.name}: field {f.name!r} traverses unknown dimension {dim_name!r}"
                )
            direction = Direction(f.adds.direction)
            unique = f.adds.unique
        else:
            dim_name = declared_dims[0]
            direction = Direction.UNKNOWN
            unique = False
        spec = FieldSpec(
            name=f.name,
            dimension=dim_name,
            direction=direction,
            unique=unique,
            group=f.group,
            fanout=f.array_size if f.array_size is not None else 1,
        )
        adds.fields[f.name] = spec
        dim = adds.dimensions[dim_name]
        if direction is Direction.FORWARD:
            dim.forward_fields.append(spec)
        elif direction is Direction.BACKWARD:
            dim.backward_fields.append(spec)
        else:
            dim.unknown_fields.append(spec)
    return adds


def program_adds_types(program: Program) -> dict[str, AddsType]:
    """Build the ADDS model for every record type declared in ``program``."""
    return {decl.name: from_type_decl(decl) for decl in program.types}
