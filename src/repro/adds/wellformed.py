"""Static well-formedness checks for ADDS declarations.

These checks catch declarations that cannot describe any structure or that
violate the restrictions spelled out in the paper (section 3.1.2):

* a field traverses exactly one dimension in exactly one direction (enforced
  syntactically, but re-checked here),
* every declared dimension should be traversed by at least one field,
* independence clauses must relate distinct, declared dimensions,
* a dimension with only ``backward`` fields has no way to move away from the
  origin (suspicious — reported as a warning-severity issue),
* a field marked ``uniquely`` must also be ``forward`` (the paper only ever
  uses "uniquely forward"; "uniquely backward" would be meaningless for the
  disjointness arguments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adds.declaration import AddsType, Direction


@dataclass(frozen=True)
class WellFormednessIssue:
    """One problem found in a declaration."""

    type_name: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.type_name}: {self.message}"


def check_well_formed(adds: AddsType) -> list[WellFormednessIssue]:
    """Return the list of issues for one ADDS type (empty when well formed)."""
    issues: list[WellFormednessIssue] = []

    def error(msg: str) -> None:
        issues.append(WellFormednessIssue(adds.name, "error", msg))

    def warning(msg: str) -> None:
        issues.append(WellFormednessIssue(adds.name, "warning", msg))

    # every field's dimension must exist (constructor already enforces this,
    # but hand-built AddsType objects may skip the constructor)
    for spec in adds.fields.values():
        if spec.dimension not in adds.dimensions:
            error(f"field {spec.name!r} traverses undeclared dimension {spec.dimension!r}")
        if spec.unique and spec.direction is not Direction.FORWARD:
            error(
                f"field {spec.name!r} is declared 'uniquely {spec.direction}'; "
                "only 'uniquely forward' is meaningful"
            )
        if spec.fanout < 1:
            error(f"field {spec.name!r} has non-positive fanout {spec.fanout}")

    # dimensions should be inhabited
    for dim in adds.dimensions.values():
        if not dim.all_fields():
            warning(f"dimension {dim.name!r} is not traversed by any field")
        elif not dim.forward_fields and dim.backward_fields:
            warning(
                f"dimension {dim.name!r} has only backward fields; "
                "no traversal moves away from the origin"
            )

    # independence clauses
    for pair in adds.independences:
        names = sorted(pair)
        if len(names) != 2:
            error(f"independence clause must relate two distinct dimensions: {names}")
            continue
        for d in names:
            if d not in adds.dimensions:
                error(f"independence clause mentions undeclared dimension {d!r}")

    # co-declared groups must share dimension and direction
    groups: dict[int, list] = {}
    for spec in adds.fields.values():
        if spec.group is not None:
            groups.setdefault(spec.group, []).append(spec)
    for group_id, members in groups.items():
        dims = {m.dimension for m in members}
        dirs = {m.direction for m in members}
        if len(dims) > 1:
            error(
                f"fields declared together ({', '.join(m.name for m in members)}) "
                f"traverse different dimensions {sorted(dims)}"
            )
        if len(dirs) > 1:
            error(
                f"fields declared together ({', '.join(m.name for m in members)}) "
                f"have different directions"
            )
    return issues


def check_all(types: dict[str, AddsType]) -> dict[str, list[WellFormednessIssue]]:
    """Check every declaration; only types with issues appear in the result."""
    result: dict[str, list[WellFormednessIssue]] = {}
    for name, adds in types.items():
        issues = check_well_formed(adds)
        if issues:
            result[name] = issues
    return result


def has_errors(issues: list[WellFormednessIssue]) -> bool:
    return any(issue.severity == "error" for issue in issues)
