"""2-D range trees (paper section 3.1.3, Figure 4).

"A two-dimensional range tree is a binary tree of binary trees, where the
leaves of each tree are linked together into a two-way linked list."  The
primary tree is ordered by x; every node of it owns a secondary tree (the
``subtree`` link — the independent ``sub`` dimension) ordered by y over the
points of its x-range; leaves of each tree are threaded with ``next``/``prev``
(the ``leaves`` dimension).  Queries: all points with x in [x1, x2], and all
points inside the rectangle [x1, x2] × [y1, y2].

The structure is static (built once from a point set), which matches how
range trees are used and keeps the pointer construction faithful to the ADDS
declaration: ``left``/``right`` uniquely forward along ``down``, ``subtree``
uniquely forward along the independent ``sub`` dimension, ``next`` uniquely
forward / ``prev`` backward along ``leaves``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.heap import Heap, NULL_REF


class RangeTree2D:
    """A static 2-D range tree over integer points, stored in an explicit heap."""

    TYPE_NAME = "TwoDRangeTree"

    def __init__(self, points: Iterable[tuple[int, int]], heap: Heap | None = None):
        self.heap = heap if heap is not None else Heap()
        self.points = sorted(set(points))
        #: node ref -> (x, y) payload of leaf nodes, or the splitting x of
        #: interior nodes; data stores x (the key the primary tree splits on)
        self._point_of: dict[int, tuple[int, int]] = {}
        self.root: int = self._build_primary(self.points)

    # -- construction ----------------------------------------------------------
    def _new_node(self, data: int) -> int:
        return self.heap.allocate(
            self.TYPE_NAME,
            {
                "data": data,
                "left": NULL_REF,
                "right": NULL_REF,
                "subtree": NULL_REF,
                "next": NULL_REF,
                "prev": NULL_REF,
            },
        )

    def _link_leaves(self, leaves: Sequence[int]) -> None:
        for a, b in zip(leaves, leaves[1:]):
            self.heap.store(a, "next", b)
            self.heap.store(b, "prev", a)

    def _build_primary(self, points: Sequence[tuple[int, int]]) -> int:
        if not points:
            return NULL_REF
        root, leaves = self._build_tree(points, key_index=0, build_secondary=True)
        self._link_leaves(leaves)
        return root

    def _build_secondary(self, points: Sequence[tuple[int, int]]) -> int:
        by_y = sorted(points, key=lambda p: (p[1], p[0]))
        root, leaves = self._build_tree(by_y, key_index=1, build_secondary=False)
        self._link_leaves(leaves)
        return root

    def _build_tree(
        self, points: Sequence[tuple[int, int]], key_index: int, build_secondary: bool
    ) -> tuple[int, list[int]]:
        """Build a balanced binary tree whose leaves are ``points`` in order."""
        if len(points) == 1:
            point = points[0]
            leaf = self._new_node(point[key_index])
            self._point_of[leaf] = point
            if build_secondary:
                self.heap.store(leaf, "subtree", self._build_secondary(points))
            return leaf, [leaf]
        mid = (len(points) + 1) // 2
        left_root, left_leaves = self._build_tree(points[:mid], key_index, build_secondary)
        right_root, right_leaves = self._build_tree(points[mid:], key_index, build_secondary)
        split_key = points[mid - 1][key_index]
        node = self._new_node(split_key)
        self.heap.store(node, "left", left_root)
        self.heap.store(node, "right", right_root)
        if build_secondary:
            self.heap.store(node, "subtree", self._build_secondary(points))
        return node, left_leaves + right_leaves

    # -- queries ---------------------------------------------------------------------
    def _leaves_under(self, ref: int) -> list[int]:
        if ref == NULL_REF:
            return []
        left = self.heap.load(ref, "left")
        right = self.heap.load(ref, "right")
        if left == NULL_REF and right == NULL_REF:
            return [ref]
        return self._leaves_under(left) + self._leaves_under(right)

    def query_x(self, x1: int, x2: int) -> list[tuple[int, int]]:
        """All points with x in [x1, x2], via the primary tree."""
        result = [
            self._point_of[leaf]
            for leaf in self._leaves_under(self.root)
            if x1 <= self._point_of[leaf][0] <= x2
        ]
        return sorted(result)

    def query_rect(self, x1: int, x2: int, y1: int, y2: int) -> list[tuple[int, int]]:
        """All points inside the rectangle [x1,x2] × [y1,y2].

        The classic algorithm: walk the primary tree for the x-range,
        identify O(log n) canonical subtrees, and answer the y-range over
        each canonical node's *secondary* tree (the ``subtree`` link).
        """
        result: set[tuple[int, int]] = set()

        def walk(ref: int, lo: int, hi: int) -> None:
            if ref == NULL_REF:
                return
            leaves = self._leaves_under(ref)
            xs = [self._point_of[l][0] for l in leaves]
            if not xs or xs[-1] < x1 or xs[0] > x2:
                return
            if x1 <= xs[0] and xs[-1] <= x2:
                # canonical subtree: answer the y query in its secondary tree
                secondary = self.heap.load(ref, "subtree")
                result.update(self._query_secondary_y(secondary, y1, y2))
                return
            walk(self.heap.load(ref, "left"), lo, hi)
            walk(self.heap.load(ref, "right"), lo, hi)

        walk(self.root, x1, x2)
        return sorted(result)

    def _query_secondary_y(self, ref: int, y1: int, y2: int) -> list[tuple[int, int]]:
        return [
            self._point_of[leaf]
            for leaf in self._leaves_under(ref)
            if y1 <= self._point_of[leaf][1] <= y2
        ]

    # -- leaf-list traversals (the ``leaves`` dimension) -------------------------------
    def primary_leaf_points(self) -> list[tuple[int, int]]:
        """Walk the primary tree's leaf list via ``next`` links."""
        leaves = self._leaves_under(self.root)
        if not leaves:
            return []
        # find the list head: the leaf with no prev among primary leaves
        primary = set(leaves)
        head = next(
            (l for l in leaves if self.heap.load(l, "prev") not in primary), leaves[0]
        )
        out = []
        cur = head
        while cur != NULL_REF and cur in primary:
            out.append(self._point_of[cur])
            cur = self.heap.load(cur, "next")
        return out

    def size(self) -> int:
        return len(self.points)

    def node_count(self) -> int:
        return len(self.heap.cells_of_type(self.TYPE_NAME))
