"""One-way linked lists over the analyzable heap (paper section 3.1.1).

:class:`OneWayList` allocates ``OneWayList``-typed cells (field ``data`` plus
a uniquely-forward ``next``), exactly matching the ADDS declaration in
:mod:`repro.adds.library`.  :func:`build_tournament_list` builds the sharing
structure of Figure 1 from the same node type, which the runtime checker
correctly rejects as a ``OneWayList`` — the point the figure makes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lang.heap import Heap, NULL_REF


class OneWayList:
    """A singly linked list of integers stored in an explicit heap."""

    TYPE_NAME = "OneWayList"

    def __init__(self, heap: Heap | None = None):
        self.heap = heap if heap is not None else Heap()
        self.head: int = NULL_REF
        self._length = 0

    # -- construction ---------------------------------------------------------
    def _new_node(self, data: int, next_ref: int = NULL_REF) -> int:
        return self.heap.allocate(self.TYPE_NAME, {"data": data, "next": next_ref})

    def push_front(self, data: int) -> int:
        """Insert at the head; O(1)."""
        self.head = self._new_node(data, self.head)
        self._length += 1
        return self.head

    def append(self, data: int) -> int:
        """Insert at the tail; O(n)."""
        node = self._new_node(data)
        if self.head == NULL_REF:
            self.head = node
        else:
            cur = self.head
            while self.heap.load(cur, "next") != NULL_REF:
                cur = self.heap.load(cur, "next")
            self.heap.store(cur, "next", node)
        self._length += 1
        return node

    @classmethod
    def from_iterable(cls, values: Iterable[int], heap: Heap | None = None) -> "OneWayList":
        lst = cls(heap)
        for v in values:
            lst.append(v)
        return lst

    # -- traversal -----------------------------------------------------------------
    def refs(self) -> Iterator[int]:
        cur = self.head
        seen: set[int] = set()
        while cur != NULL_REF:
            if cur in seen:
                raise RuntimeError("list traversal revisited a node (cycle)")
            seen.add(cur)
            yield cur
            cur = self.heap.load(cur, "next")

    def __iter__(self) -> Iterator[int]:
        for ref in self.refs():
            yield self.heap.load(ref, "data")

    def to_list(self) -> list[int]:
        return list(self)

    def __len__(self) -> int:
        return self._length

    # -- mutation -----------------------------------------------------------------
    def map_in_place(self, func) -> None:
        """Apply ``func`` to every ``data`` field (the paper's ``p->coef * c`` loop)."""
        for ref in self.refs():
            self.heap.store(ref, "data", func(self.heap.load(ref, "data")))

    def insert_after(self, ref: int, data: int) -> int:
        node = self._new_node(data, self.heap.load(ref, "next"))
        self.heap.store(ref, "next", node)
        self._length += 1
        return node

    def delete_after(self, ref: int) -> None:
        victim = self.heap.load(ref, "next")
        if victim == NULL_REF:
            return
        self.heap.store(ref, "next", self.heap.load(victim, "next"))
        self._length -= 1

    def reverse_in_place(self) -> None:
        """Reverse the list by pointer surgery (keeps the shape a valid OneWayList)."""
        prev = NULL_REF
        cur = self.head
        while cur != NULL_REF:
            nxt = self.heap.load(cur, "next")
            self.heap.store(cur, "next", prev)
            prev = cur
            cur = nxt
        self.head = prev

    def make_cycle(self) -> None:
        """Deliberately close a cycle (for tests of the runtime checker)."""
        if self.head == NULL_REF:
            return
        last = self.head
        while self.heap.load(last, "next") != NULL_REF:
            last = self.heap.load(last, "next")
        self.heap.store(last, "next", self.head)


def build_tournament_list(values: list[int], heap: Heap | None = None) -> tuple[Heap, int]:
    """Build the "tournament" structure of Figure 1 from OneWayList nodes.

    Several nodes point at the same successor, so ``next`` is forward but not
    *uniquely* forward — a shape the OneWayList declaration excludes.
    Returns (heap, ref of a designated entry node).
    """
    h = heap if heap is not None else Heap()
    if not values:
        return h, NULL_REF
    # leaves of the "tournament": every pair of consecutive leaves points at a
    # shared winner node, winners point at the next round's shared node, etc.
    level = [h.allocate(OneWayList.TYPE_NAME, {"data": v, "next": NULL_REF}) for v in values]
    while len(level) > 1:
        nxt_level = []
        for i in range(0, len(level), 2):
            group = level[i:i + 2]
            winner_val = max(h.load(r, "data") for r in group)
            winner = h.allocate(OneWayList.TYPE_NAME, {"data": winner_val, "next": NULL_REF})
            for r in group:
                h.store(r, "next", winner)
            nxt_level.append(winner)
        level = nxt_level
    return h, level[0]
