"""Sparse matrices as orthogonal lists (paper section 3.1.3, Figure 3).

Each stored element is an ``OrthList`` node with four links: ``across`` /
``back`` along the row dimension X and ``down`` / ``up`` along the column
dimension Y.  Row and column header nodes (one per row/column, data = 0,
stored at column/row index −1 conceptually) are what the paper's ``r4`` /
``c3`` pointers denote.  The class provides enough of a sparse-matrix API —
get/set, row/column iteration, sparse matrix–vector product, transpose-free
column sums — to exercise every link direction.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.heap import Heap, NULL_REF


class OrthogonalListMatrix:
    """A sparse ``rows`` × ``cols`` integer matrix over OrthList nodes."""

    TYPE_NAME = "OrthList"

    def __init__(self, rows: int, cols: int, heap: Heap | None = None):
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        self.heap = heap if heap is not None else Heap()
        self.rows = rows
        self.cols = cols
        #: per-row header refs (start of each row's ``across`` chain)
        self.row_heads: list[int] = [self._new_node(0) for _ in range(rows)]
        #: per-column header refs (start of each column's ``down`` chain)
        self.col_heads: list[int] = [self._new_node(0) for _ in range(cols)]
        #: (row, col) -> ref, kept for O(1) lookup in tests; the pointer
        #: structure itself is authoritative
        self._index: dict[tuple[int, int], int] = {}

    def _new_node(self, data: int) -> int:
        return self.heap.allocate(
            self.TYPE_NAME,
            {
                "data": data,
                "across": NULL_REF,
                "back": NULL_REF,
                "down": NULL_REF,
                "up": NULL_REF,
            },
        )

    # -- element access ---------------------------------------------------------
    def set(self, row: int, col: int, value: int) -> None:
        """Store ``value`` at (row, col); zero removes nothing (kept simple)."""
        self._check(row, col)
        existing = self._find(row, col)
        if existing != NULL_REF:
            self.heap.store(existing, "data", value)
            return
        node = self._new_node(value)
        self._link_into_row(row, col, node)
        self._link_into_col(row, col, node)
        self._index[(row, col)] = node

    def get(self, row: int, col: int) -> int:
        self._check(row, col)
        ref = self._find(row, col)
        return self.heap.load(ref, "data") if ref != NULL_REF else 0

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols} matrix")

    def _find(self, row: int, col: int) -> int:
        return self._index.get((row, col), NULL_REF)

    def _column_of(self, ref: int) -> int:
        for (r, c), node in self._index.items():
            if node == ref:
                return c
        return -1

    def _row_of(self, ref: int) -> int:
        for (r, c), node in self._index.items():
            if node == ref:
                return r
        return -1

    def _link_into_row(self, row: int, col: int, node: int) -> None:
        prev = self.row_heads[row]
        cur = self.heap.load(prev, "across")
        while cur != NULL_REF and self._column_of(cur) < col:
            prev = cur
            cur = self.heap.load(cur, "across")
        self.heap.store(node, "across", cur)
        self.heap.store(node, "back", prev)
        self.heap.store(prev, "across", node)
        if cur != NULL_REF:
            self.heap.store(cur, "back", node)

    def _link_into_col(self, row: int, col: int, node: int) -> None:
        prev = self.col_heads[col]
        cur = self.heap.load(prev, "down")
        while cur != NULL_REF and self._row_of(cur) < row:
            prev = cur
            cur = self.heap.load(cur, "down")
        self.heap.store(node, "down", cur)
        self.heap.store(node, "up", prev)
        self.heap.store(prev, "down", node)
        if cur != NULL_REF:
            self.heap.store(cur, "up", node)

    # -- traversals ---------------------------------------------------------------
    def row_refs(self, row: int) -> Iterator[int]:
        cur = self.heap.load(self.row_heads[row], "across")
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "across")

    def col_refs(self, col: int) -> Iterator[int]:
        cur = self.heap.load(self.col_heads[col], "down")
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "down")

    def row_values(self, row: int) -> list[int]:
        return [self.heap.load(r, "data") for r in self.row_refs(row)]

    def col_values(self, col: int) -> list[int]:
        return [self.heap.load(r, "data") for r in self.col_refs(col)]

    def nonzero_count(self) -> int:
        return len(self._index)

    def to_dense(self) -> list[list[int]]:
        dense = [[0] * self.cols for _ in range(self.rows)]
        for (r, c), ref in self._index.items():
            dense[r][c] = self.heap.load(ref, "data")
        return dense

    # -- numeric operations ------------------------------------------------------------
    def matvec(self, vector: list[int]) -> list[int]:
        """Sparse matrix–vector product using row traversals (each row is disjoint)."""
        if len(vector) != self.cols:
            raise ValueError("vector length does not match column count")
        result = [0] * self.rows
        for row in range(self.rows):
            total = 0
            for ref in self.row_refs(row):
                col = self._column_of(ref)
                total += self.heap.load(ref, "data") * vector[col]
            result[row] = total
        return result

    def column_sums(self) -> list[int]:
        """Per-column sums using the Y-dimension traversals."""
        return [sum(self.col_values(c)) for c in range(self.cols)]

    def scale_row_in_place(self, row: int, factor: int) -> None:
        for ref in self.row_refs(row):
            self.heap.store(ref, "data", self.heap.load(ref, "data") * factor)

    @classmethod
    def from_dense(cls, dense: list[list[int]], heap: Heap | None = None) -> "OrthogonalListMatrix":
        rows = len(dense)
        cols = len(dense[0]) if rows else 0
        matrix = cls(rows, cols, heap)
        for r in range(rows):
            for c in range(cols):
                if dense[r][c] != 0:
                    matrix.set(r, c, dense[r][c])
        return matrix
