"""Arbitrary-precision integers stored as digit lists (paper section 3.1.1).

"A bignum can be represented by a list of nodes, where each node in the list
contains a fixed number of digits ... the integer is stored in reverse order
for ease of manipulation."  We use three decimal digits per node (base 1000),
matching the paper's 3,298,991 example, and implement addition,
multiplication and comparison over the linked representation — enough to
exercise real traversals and allocations over the analyzable heap.
"""

from __future__ import annotations

from repro.lang.heap import Heap, NULL_REF
from repro.structures.linked_list import OneWayList


#: decimal digits per node
DIGITS_PER_NODE = 3
BASE = 10 ** DIGITS_PER_NODE


class BigNum:
    """A non-negative arbitrary-precision integer over a digit list."""

    def __init__(self, heap: Heap | None = None):
        self.list = OneWayList(heap)

    # -- conversions ---------------------------------------------------------
    @classmethod
    def from_int(cls, value: int, heap: Heap | None = None) -> "BigNum":
        if value < 0:
            raise ValueError("BigNum represents non-negative integers")
        num = cls(heap)
        if value == 0:
            num.list.append(0)
            return num
        while value > 0:
            num.list.append(value % BASE)   # least-significant chunk first
            value //= BASE
        return num

    def to_int(self) -> int:
        total = 0
        for i, chunk in enumerate(self.list):
            total += chunk * (BASE ** i)
        return total

    @property
    def heap(self) -> Heap:
        return self.list.heap

    def chunks(self) -> list[int]:
        return self.list.to_list()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BigNum({self.to_int()})"

    # -- arithmetic ----------------------------------------------------------------
    def add(self, other: "BigNum") -> "BigNum":
        """Schoolbook addition over the digit lists (carries propagate forward)."""
        result = BigNum(self.heap)
        carry = 0
        a = self.chunks()
        b = other.chunks()
        for i in range(max(len(a), len(b))):
            total = carry
            if i < len(a):
                total += a[i]
            if i < len(b):
                total += b[i]
            result.list.append(total % BASE)
            carry = total // BASE
        if carry:
            result.list.append(carry)
        return result

    def multiply_small(self, factor: int) -> "BigNum":
        """Multiply by a machine integer (0 <= factor < BASE)."""
        if not (0 <= factor < BASE):
            raise ValueError(f"factor must be in [0, {BASE})")
        result = BigNum(self.heap)
        carry = 0
        for chunk in self.chunks():
            total = chunk * factor + carry
            result.list.append(total % BASE)
            carry = total // BASE
        while carry:
            result.list.append(carry % BASE)
            carry //= BASE
        if len(result.list) == 0:
            result.list.append(0)
        return result

    def multiply(self, other: "BigNum") -> "BigNum":
        """Full long multiplication via shifted partial products."""
        result = BigNum.from_int(0, self.heap)
        for i, chunk in enumerate(other.chunks()):
            partial = self.multiply_small(chunk)
            shifted = BigNum(self.heap)
            for _ in range(i):
                shifted.list.append(0)
            for c in partial.chunks():
                shifted.list.append(c)
            result = result.add(shifted)
        return result._normalized()

    def _normalized(self) -> "BigNum":
        """Strip leading (most-significant) zero chunks, keeping at least one node."""
        chunks = self.chunks()
        while len(chunks) > 1 and chunks[-1] == 0:
            chunks.pop()
        out = BigNum(self.heap)
        for c in chunks:
            out.list.append(c)
        return out

    # -- comparisons ------------------------------------------------------------------
    def compare(self, other: "BigNum") -> int:
        a = self._normalized().chunks()
        b = other._normalized().chunks()
        if len(a) != len(b):
            return -1 if len(a) < len(b) else 1
        for x, y in zip(reversed(a), reversed(b)):
            if x != y:
                return -1 if x < y else 1
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BigNum) and self.compare(other) == 0

    def __hash__(self) -> int:
        return hash(self.to_int())
