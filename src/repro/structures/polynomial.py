"""Sparse polynomials as coefficient/exponent lists (paper section 3.1.1).

"The polynomial 451x^31 + 10x^13 + 4 could be stored in a linked-list such
that each node contains the coefficient and exponent for x."  Nodes are
``ListNode``-typed heap cells (``coef``, ``exp``, ``next``), kept sorted by
decreasing exponent.  The operations — evaluation, scaling (the worked alias
-analysis example of section 3.3.2), addition and multiplication — all
traverse the pointer representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lang.heap import Heap, NULL_REF


class Polynomial:
    """A sparse integer polynomial stored as a linked list of terms."""

    TYPE_NAME = "ListNode"

    def __init__(self, heap: Heap | None = None):
        self.heap = heap if heap is not None else Heap()
        self.head: int = NULL_REF

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_terms(
        cls, terms: Iterable[tuple[int, int]], heap: Heap | None = None
    ) -> "Polynomial":
        """Build from (coefficient, exponent) pairs; zero coefficients are dropped."""
        poly = cls(heap)
        cleaned: dict[int, int] = {}
        for coef, exp in terms:
            if exp < 0:
                raise ValueError("exponents must be non-negative")
            cleaned[exp] = cleaned.get(exp, 0) + coef
        for exp in sorted(cleaned, reverse=True):
            coef = cleaned[exp]
            if coef != 0:
                poly._append_term(coef, exp)
        return poly

    def _append_term(self, coef: int, exp: int) -> int:
        node = self.heap.allocate(
            self.TYPE_NAME, {"coef": coef, "exp": exp, "next": NULL_REF}
        )
        if self.head == NULL_REF:
            self.head = node
            return node
        cur = self.head
        while self.heap.load(cur, "next") != NULL_REF:
            cur = self.heap.load(cur, "next")
        self.heap.store(cur, "next", node)
        return node

    # -- traversal ------------------------------------------------------------------
    def refs(self) -> Iterator[int]:
        cur = self.head
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "next")

    def terms(self) -> list[tuple[int, int]]:
        return [
            (self.heap.load(r, "coef"), self.heap.load(r, "exp")) for r in self.refs()
        ]

    def degree(self) -> int:
        terms = self.terms()
        return terms[0][1] if terms else 0

    def __len__(self) -> int:
        return sum(1 for _ in self.refs())

    # -- operations ---------------------------------------------------------------------
    def evaluate(self, x: int) -> int:
        return sum(coef * (x ** exp) for coef, exp in self.terms())

    def scale_in_place(self, c: int) -> None:
        """Multiply every coefficient by ``c`` — the loop of section 3.3.2.

        This is exactly the traversal whose parallelization the worked
        path-matrix example justifies: each node is visited once and only its
        own ``coef`` field is written.
        """
        for ref in self.refs():
            self.heap.store(ref, "coef", self.heap.load(ref, "coef") * c)

    def add(self, other: "Polynomial") -> "Polynomial":
        merged: dict[int, int] = {}
        for coef, exp in self.terms() + other.terms():
            merged[exp] = merged.get(exp, 0) + coef
        return Polynomial.from_terms(
            [(c, e) for e, c in merged.items()], heap=self.heap
        )

    def multiply(self, other: "Polynomial") -> "Polynomial":
        product: dict[int, int] = {}
        for c1, e1 in self.terms():
            for c2, e2 in other.terms():
                product[e1 + e2] = product.get(e1 + e2, 0) + c1 * c2
        return Polynomial.from_terms(
            [(c, e) for e, c in product.items()], heap=self.heap
        )

    def derivative(self) -> "Polynomial":
        return Polynomial.from_terms(
            [(coef * exp, exp - 1) for coef, exp in self.terms() if exp > 0],
            heap=self.heap,
        )

    def to_dict(self) -> dict[int, int]:
        return {exp: coef for coef, exp in self.terms()}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_dict().items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}x^{e}" for c, e in self.terms()]
        return "Polynomial(" + (" + ".join(parts) if parts else "0") + ")"
