"""Point-region quadtrees (section 1 cites quadtrees as a motivating structure).

The 2-D analogue of the Barnes–Hut octree: each node owns a square region and
has up to four children, leaves hold one point each, and the leaves are
threaded onto a one-way list (matching the ``QuadTree`` ADDS declaration of
:mod:`repro.adds.library`).  Used by examples and tests as a second,
independent client of the heap + ADDS runtime-checking machinery.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lang.heap import Heap, NULL_REF


class PointRegionQuadTree:
    """A PR quadtree over 2-D points with mass, stored in an explicit heap."""

    TYPE_NAME = "QuadTree"

    def __init__(
        self,
        center: tuple[float, float] = (0.0, 0.0),
        half_size: float = 1.0,
        heap: Heap | None = None,
    ):
        self.heap = heap if heap is not None else Heap()
        self.root = self._new_node(center[0], center[1], mass=0.0, is_leaf=False)
        self._half: dict[int, float] = {self.root: half_size}
        self._leaf_head: int = NULL_REF
        self._leaf_tail: int = NULL_REF
        self.count = 0

    def _new_node(self, x: float, y: float, mass: float, is_leaf: bool) -> int:
        return self.heap.allocate(
            self.TYPE_NAME,
            {
                "mass": mass,
                "x": x,
                "y": y,
                "node_type": is_leaf,
                "subtrees": [NULL_REF] * 4,
                "next": NULL_REF,
            },
        )

    # -- insertion ---------------------------------------------------------------
    def insert(self, x: float, y: float, mass: float = 1.0) -> int:
        leaf = self._new_node(x, y, mass, is_leaf=True)
        self._insert_ref(leaf, self.root)
        self._append_leaf(leaf)
        self.count += 1
        return leaf

    def _append_leaf(self, leaf: int) -> None:
        if self._leaf_head == NULL_REF:
            self._leaf_head = self._leaf_tail = leaf
        else:
            self.heap.store(self._leaf_tail, "next", leaf)
            self._leaf_tail = leaf

    def _quadrant(self, node: int, x: float, y: float) -> int:
        nx = self.heap.load(node, "x")
        ny = self.heap.load(node, "y")
        index = 0
        if x >= nx:
            index |= 1
        if y >= ny:
            index |= 2
        return index

    def _quadrant_center(self, node: int, index: int) -> tuple[float, float]:
        nx = self.heap.load(node, "x")
        ny = self.heap.load(node, "y")
        quarter = self._half[node] / 2.0
        dx = quarter if (index & 1) else -quarter
        dy = quarter if (index & 2) else -quarter
        return nx + dx, ny + dy

    def _insert_ref(self, leaf: int, node: int, depth: int = 0) -> None:
        if depth > 64:
            raise RuntimeError("quadtree insertion exceeded maximum depth")
        x = self.heap.load(leaf, "x")
        y = self.heap.load(leaf, "y")
        index = self._quadrant(node, x, y)
        subtrees = self.heap.load(node, "subtrees")
        child = subtrees[index]
        if child == NULL_REF:
            subtrees[index] = leaf
            return
        if self.heap.load(child, "node_type"):
            # occupied by another point: subdivide (overwrite the parent slot
            # first so the uniquely-forward property never breaks)
            cx, cy = self._quadrant_center(node, index)
            interior = self._new_node(cx, cy, 0.0, is_leaf=False)
            self._half[interior] = self._half[node] / 2.0
            subtrees[index] = interior
            competitor_index = self._quadrant(
                interior, self.heap.load(child, "x"), self.heap.load(child, "y")
            )
            self.heap.load(interior, "subtrees")[competitor_index] = child
            self._insert_ref(leaf, interior, depth + 1)
        else:
            self._insert_ref(leaf, child, depth + 1)

    @classmethod
    def from_points(
        cls,
        points: Iterable[tuple[float, float]],
        half_size: float = 1.0,
        heap: Heap | None = None,
    ) -> "PointRegionQuadTree":
        tree = cls(half_size=half_size, heap=heap)
        for x, y in points:
            tree.insert(x, y)
        return tree

    # -- traversals ---------------------------------------------------------------------
    def leaf_refs(self) -> Iterator[int]:
        cur = self._leaf_head
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "next")

    def leaf_points(self) -> list[tuple[float, float]]:
        return [
            (self.heap.load(r, "x"), self.heap.load(r, "y")) for r in self.leaf_refs()
        ]

    def node_refs(self) -> Iterator[int]:
        stack = [self.root]
        while stack:
            ref = stack.pop()
            yield ref
            for child in self.heap.load(ref, "subtrees"):
                if child != NULL_REF:
                    stack.append(child)

    def depth(self) -> int:
        def go(ref: int) -> int:
            children = [c for c in self.heap.load(ref, "subtrees") if c != NULL_REF]
            if not children:
                return 1
            return 1 + max(go(c) for c in children)

        return go(self.root)

    def total_mass(self) -> float:
        return sum(self.heap.load(r, "mass") for r in self.leaf_refs())

    def points_in_rect(
        self, x1: float, x2: float, y1: float, y2: float
    ) -> list[tuple[float, float]]:
        """All stored points inside the axis-aligned rectangle."""
        return [
            (x, y) for x, y in self.leaf_points() if x1 <= x <= x2 and y1 <= y <= y2
        ]
