"""Binary search trees (the paper's BinTree example, sections 2.2 and 3.3.1).

Besides the usual insert/contains/traversal operations, the class exposes the
two-statement *subtree move* of section 3.3.1 — the canonical temporary
abstraction break::

    p1->left = p2->left;     # the subtree is momentarily shared
    p2->left = NULL;         # sharing removed, abstraction valid again

``move_left_subtree`` performs the repaired sequence;
``share_left_subtree`` stops after the first statement, leaving the heap in
the violating state so tests can watch the runtime checker flag it.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.heap import Heap, NULL_REF


class BinarySearchTree:
    """An integer BST over ``BinTree``-typed heap cells."""

    TYPE_NAME = "BinTree"

    def __init__(self, heap: Heap | None = None):
        self.heap = heap if heap is not None else Heap()
        self.root: int = NULL_REF

    # -- construction ---------------------------------------------------------
    def _new_node(self, data: int) -> int:
        return self.heap.allocate(
            self.TYPE_NAME, {"data": data, "left": NULL_REF, "right": NULL_REF}
        )

    def insert(self, data: int) -> int:
        node = self._new_node(data)
        if self.root == NULL_REF:
            self.root = node
            return node
        cur = self.root
        while True:
            cur_data = self.heap.load(cur, "data")
            side = "left" if data < cur_data else "right"
            child = self.heap.load(cur, side)
            if child == NULL_REF:
                self.heap.store(cur, side, node)
                return node
            cur = child

    @classmethod
    def from_iterable(cls, values, heap: Heap | None = None) -> "BinarySearchTree":
        tree = cls(heap)
        for v in values:
            tree.insert(v)
        return tree

    # -- queries ---------------------------------------------------------------------
    def contains(self, data: int) -> bool:
        cur = self.root
        while cur != NULL_REF:
            cur_data = self.heap.load(cur, "data")
            if data == cur_data:
                return True
            cur = self.heap.load(cur, "left" if data < cur_data else "right")
        return False

    def in_order(self) -> list[int]:
        result: list[int] = []

        def visit(ref: int) -> None:
            if ref == NULL_REF:
                return
            visit(self.heap.load(ref, "left"))
            result.append(self.heap.load(ref, "data"))
            visit(self.heap.load(ref, "right"))

        visit(self.root)
        return result

    def height(self) -> int:
        def depth(ref: int) -> int:
            if ref == NULL_REF:
                return 0
            return 1 + max(depth(self.heap.load(ref, "left")),
                           depth(self.heap.load(ref, "right")))

        return depth(self.root)

    def size(self) -> int:
        return len(self.in_order())

    def refs(self) -> Iterator[int]:
        stack = [self.root] if self.root != NULL_REF else []
        while stack:
            ref = stack.pop()
            yield ref
            for side in ("left", "right"):
                child = self.heap.load(ref, side)
                if child != NULL_REF:
                    stack.append(child)

    # -- the section 3.3.1 example ----------------------------------------------------
    def share_left_subtree(self, p1: int, p2: int) -> None:
        """Execute only ``p1->left = p2->left`` — the abstraction-breaking half."""
        self.heap.store(p1, "left", self.heap.load(p2, "left"))

    def repair_shared_subtree(self, p2: int) -> None:
        """Execute ``p2->left = NULL`` — the repairing half."""
        self.heap.store(p2, "left", NULL_REF)

    def move_left_subtree(self, p1: int, p2: int) -> None:
        """The full (repaired) subtree move of section 3.3.1."""
        self.share_left_subtree(p1, p2)
        self.repair_shared_subtree(p2)
