"""Concrete pointer data structures from the paper's motivating examples.

Every structure in this package is built over the same explicit
:class:`~repro.lang.heap.Heap` the toy-language interpreter uses, with field
names matching the ADDS declarations of :mod:`repro.adds.library`.  That
choice is deliberate: the ADDS *runtime checker* can therefore validate each
structure directly against its declaration — the dynamic counterpart of the
figures in section 3 (a one-way list really is uniquely-forward along X, an
orthogonal list really keeps its rows and columns acyclic, a "tournament"
list really violates uniqueness, and so on).

=================  =========================================================
module              structure (paper reference)
=================  =========================================================
``linked_list``     one-way linked list (section 3.1.1)
``two_way_list``    doubly linked list (section 2.2)
``bignum``          arbitrary-precision integers as digit lists (3.1.1)
``polynomial``      sparse polynomials as coefficient/exponent lists (3.1.1)
``bintree``         binary search tree (sections 2.2, 3.3.1)
``orthogonal_list`` sparse matrices as orthogonal lists (3.1.3, Figure 3)
``range_tree``      2-D range tree (3.1.3, Figure 4)
``quadtree``        point-region quadtree (section 1; 2-D octree analogue)
=================  =========================================================
"""

from repro.structures.linked_list import OneWayList, build_tournament_list
from repro.structures.two_way_list import TwoWayList
from repro.structures.bignum import BigNum
from repro.structures.polynomial import Polynomial
from repro.structures.bintree import BinarySearchTree
from repro.structures.orthogonal_list import OrthogonalListMatrix
from repro.structures.range_tree import RangeTree2D
from repro.structures.quadtree import PointRegionQuadTree

__all__ = [
    "OneWayList",
    "build_tournament_list",
    "TwoWayList",
    "BigNum",
    "Polynomial",
    "BinarySearchTree",
    "OrthogonalListMatrix",
    "RangeTree2D",
    "PointRegionQuadTree",
]
