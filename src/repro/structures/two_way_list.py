"""Doubly linked lists (the paper's TwoWayList example, section 2.2)."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lang.heap import Heap, NULL_REF


class TwoWayList:
    """A doubly linked list whose nodes match the ``TwoWayList`` ADDS declaration.

    ``next`` is uniquely forward along the single dimension ``X`` and ``prev``
    is backward; the forward and backward traversals form benign 2-cycles
    (the "needless cycles" the paper notes ADDS frees the analysis from
    estimating).
    """

    TYPE_NAME = "TwoWayList"

    def __init__(self, heap: Heap | None = None):
        self.heap = heap if heap is not None else Heap()
        self.head: int = NULL_REF
        self.tail: int = NULL_REF
        self._length = 0

    # -- construction ----------------------------------------------------------
    def _new_node(self, data: int) -> int:
        return self.heap.allocate(
            self.TYPE_NAME, {"data": data, "next": NULL_REF, "prev": NULL_REF}
        )

    def append(self, data: int) -> int:
        node = self._new_node(data)
        if self.tail == NULL_REF:
            self.head = self.tail = node
        else:
            self.heap.store(self.tail, "next", node)
            self.heap.store(node, "prev", self.tail)
            self.tail = node
        self._length += 1
        return node

    def push_front(self, data: int) -> int:
        node = self._new_node(data)
        if self.head == NULL_REF:
            self.head = self.tail = node
        else:
            self.heap.store(node, "next", self.head)
            self.heap.store(self.head, "prev", node)
            self.head = node
        self._length += 1
        return node

    @classmethod
    def from_iterable(cls, values: Iterable[int], heap: Heap | None = None) -> "TwoWayList":
        lst = cls(heap)
        for v in values:
            lst.append(v)
        return lst

    # -- traversal ----------------------------------------------------------------
    def forward_refs(self) -> Iterator[int]:
        cur = self.head
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "next")

    def backward_refs(self) -> Iterator[int]:
        cur = self.tail
        while cur != NULL_REF:
            yield cur
            cur = self.heap.load(cur, "prev")

    def forward(self) -> list[int]:
        return [self.heap.load(r, "data") for r in self.forward_refs()]

    def backward(self) -> list[int]:
        return [self.heap.load(r, "data") for r in self.backward_refs()]

    def __iter__(self) -> Iterator[int]:
        return iter(self.forward())

    def __len__(self) -> int:
        return self._length

    # -- mutation -------------------------------------------------------------------
    def remove(self, ref: int) -> None:
        """Unlink ``ref`` while keeping next/prev consistent."""
        prev = self.heap.load(ref, "prev")
        nxt = self.heap.load(ref, "next")
        if prev != NULL_REF:
            self.heap.store(prev, "next", nxt)
        else:
            self.head = nxt
        if nxt != NULL_REF:
            self.heap.store(nxt, "prev", prev)
        else:
            self.tail = prev
        self.heap.store(ref, "next", NULL_REF)
        self.heap.store(ref, "prev", NULL_REF)
        self._length -= 1

    def insert_after(self, ref: int, data: int) -> int:
        node = self._new_node(data)
        nxt = self.heap.load(ref, "next")
        self.heap.store(node, "prev", ref)
        self.heap.store(node, "next", nxt)
        self.heap.store(ref, "next", node)
        if nxt != NULL_REF:
            self.heap.store(nxt, "prev", node)
        else:
            self.tail = node
        self._length += 1
        return node

    def corrupt_prev(self) -> None:
        """Point some ``prev`` at the wrong node (for runtime-checker tests)."""
        refs = list(self.forward_refs())
        if len(refs) >= 3:
            self.heap.store(refs[2], "prev", refs[0])
