"""Regenerate the paper's in-text analysis artifacts (experiments E3–E6).

The paper has no data plots; its "figures" are data-structure drawings and
worked path matrices embedded in the text.  Each function here recomputes one
of those artifacts from the actual analysis implementation and returns both a
machine-checkable summary and a printable rendering:

* :func:`polynomial_pathmatrix_figure` — the section 3.3.2 example: the
  conservative matrix vs. the ADDS-informed matrices for the
  coefficient-scaling loop,
* :func:`bhl1_pathmatrix_figure` — the section 4.3.2 matrix for BHL1 of the
  Barnes–Hut program,
* :func:`precision_comparison` — Figures 1/2 behaviourally: how the three
  analyses (conservative, k-limited, ADDS+GPM) compare on the traversal-
  independence question and on pairwise alias precision,
* :func:`validation_trace_figure` — the section 3.3.1 subtree-move example:
  the abstraction is broken after the first statement and valid again after
  the second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adds.library import merged_into
from repro.lang.ast_nodes import Assign, FieldAssign, Program
from repro.lang.parser import parse_program
from repro.nbody.toy_program import BHL1_FUNCTION, barnes_hut_toy_program
from repro.pathmatrix.analysis import PathMatrixAnalysis, analyze_loop_dependence
from repro.pathmatrix.baseline import ConservativeOracle, conservative_matrix_for
from repro.pathmatrix.klimited import KLimitedAnalysis, KLimitedOracle
from repro.pathmatrix.matrix import PathMatrix
from repro.pathmatrix.rules import TransferContext, apply_statement
from repro.pathmatrix.alias import AliasOracle


#: the polynomial-scaling program of section 3.3.2
POLYNOMIAL_SCALE_SRC = """
function scale(head, c)
{ var p;
  p = head;
  while p <> NULL
  { p->coef = p->coef * c;
    p = p->next;
  }
  return head;
}
"""


@dataclass
class PathMatrixFigure:
    """The reproduced matrices plus the claims they support."""

    title: str
    conservative: PathMatrix
    with_adds_entry: PathMatrix
    with_adds_after_body: PathMatrix
    claims: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"== {self.title} ==", "", "conservative (no structure information):"]
        lines.append(self.conservative.to_table())
        lines.append("")
        lines.append("with the ADDS declaration — at the loop header (fixed point):")
        lines.append(self.with_adds_entry.to_table())
        lines.append("")
        lines.append("with the ADDS declaration — after one loop body (primed analysis):")
        lines.append(self.with_adds_after_body.to_table())
        lines.append("")
        for claim, ok in self.claims.items():
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {claim}")
        return "\n".join(lines)


def polynomial_pathmatrix_figure() -> PathMatrixFigure:
    """Reproduce the worked example of section 3.3.2."""
    program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
    conservative = conservative_matrix_for(program, "scale")
    report = analyze_loop_dependence(program, "scale")
    figure = PathMatrixFigure(
        title="section 3.3.2 — polynomial coefficient scaling",
        conservative=conservative,
        with_adds_entry=report.matrix_at_entry,
        with_adds_after_body=report.matrix_after_body,
    )
    after = report.matrix_after_body
    figure.claims = {
        "conservative analysis: head and p are potential aliases": conservative.may_alias(
            "head", "p"
        ),
        "ADDS analysis: p and p' (previous iteration) are never aliases": not after.may_alias(
            "p", "p'"
        ),
        "ADDS analysis: a next-path (not an alias) links p' to p": any(
            rel.field == "next" for rel in after.get("p'", "p").paths()
        ),
        "loop is parallelizable with ADDS": report.parallelizable,
    }
    return figure


def bhl1_pathmatrix_figure() -> PathMatrixFigure:
    """Reproduce the BHL1 matrix of section 4.3.2 on the toy Barnes–Hut program."""
    program = barnes_hut_toy_program()
    conservative = conservative_matrix_for(program, BHL1_FUNCTION)
    report = analyze_loop_dependence(program, BHL1_FUNCTION)
    after = report.matrix_after_body
    figure = PathMatrixFigure(
        title="section 4.3.2 — BHL1 of the Barnes–Hut tree code",
        conservative=conservative,
        with_adds_entry=report.matrix_at_entry,
        with_adds_after_body=after,
    )
    figure.claims = {
        "p and p' (consecutive iterations) are never aliases": not after.may_alias("p", "p'"),
        "particles reaches p through a next-path (not an alias)": any(
            rel.field == "next" for rel in after.get("particles", "p").paths()
        ),
        "root remains a possible alias of other pointers (as in the paper)": after.may_alias(
            "root", "p"
        ),
        "abstraction (Octree declaration) valid at loop entry": report.abstraction_valid,
        "BHL1 is parallelizable with ADDS": report.parallelizable,
    }
    return figure


# ---------------------------------------------------------------------------
# precision comparison (experiment E5)
# ---------------------------------------------------------------------------
@dataclass
class PrecisionRow:
    analysis: str
    proves_traversal_independent: bool
    non_alias_pairs: int
    precision_score: float


@dataclass
class PrecisionComparison:
    rows: list[PrecisionRow] = field(default_factory=list)

    def row(self, name: str) -> PrecisionRow:
        for r in self.rows:
            if r.analysis == name:
                return r
        raise KeyError(name)

    def render(self) -> str:
        lines = ["analysis            traversal-independent   non-alias pairs   precision"]
        for r in self.rows:
            lines.append(
                f"{r.analysis:<20}{str(r.proves_traversal_independent):<24}"
                f"{r.non_alias_pairs:<18}{r.precision_score:.2f}"
            )
        return "\n".join(lines)


def precision_comparison(k: int = 2) -> PrecisionComparison:
    """Compare the three analyses on the polynomial traversal loop."""
    program = merged_into(POLYNOMIAL_SCALE_SRC, "ListNode")
    result = PrecisionComparison()

    # conservative
    cons = ConservativeOracle(["head", "p", "c"])
    result.rows.append(
        PrecisionRow(
            analysis="conservative",
            proves_traversal_independent=False,
            non_alias_pairs=len(cons.not_aliased_pairs()),
            precision_score=cons.precision_score(),
        )
    )

    # k-limited storage graphs
    klim = KLimitedAnalysis(program, k=k)
    k_oracle = KLimitedOracle(klim.state_before_loop("scale"))
    result.rows.append(
        PrecisionRow(
            analysis=f"k-limited (k={k})",
            proves_traversal_independent=klim.loop_traversal_independent("scale"),
            non_alias_pairs=len(k_oracle.not_aliased_pairs()),
            precision_score=k_oracle.precision_score(),
        )
    )

    # ADDS + general path matrix analysis
    report = analyze_loop_dependence(program, "scale")
    oracle = AliasOracle(report.matrix_after_body)
    result.rows.append(
        PrecisionRow(
            analysis="ADDS + GPM",
            proves_traversal_independent=bool(report.independent_vars),
            non_alias_pairs=len(oracle.not_aliased_pairs()),
            precision_score=oracle.precision_score(),
        )
    )
    return result


# ---------------------------------------------------------------------------
# abstraction validation trace (experiment E6)
# ---------------------------------------------------------------------------
SUBTREE_MOVE_SRC = """
procedure move_subtree(p1, p2)
{ p1->left = p2->left;
  p2->left = NULL;
}
"""


@dataclass
class ValidationTrace:
    """Validity of the BinTree abstraction after each statement."""

    statements: list[str] = field(default_factory=list)
    valid_after: list[bool] = field(default_factory=list)
    violations_after: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        lines = ["abstraction validation trace (section 3.3.1 subtree move):"]
        for stmt, ok, viols in zip(self.statements, self.valid_after, self.violations_after):
            status = "valid" if ok else "BROKEN"
            lines.append(f"  after `{stmt}`: {status}")
            for v in viols:
                lines.append(f"      {v}")
        return "\n".join(lines)


def validation_trace_figure() -> ValidationTrace:
    """Run the two-statement subtree move and record validity after each statement."""
    program = merged_into(SUBTREE_MOVE_SRC, "BinTree")
    analysis = PathMatrixAnalysis(program)
    func = program.function_named("move_subtree")
    assert func is not None
    ctx = analysis._context_for(func)
    pm = analysis.initial_matrix(func, ctx)

    trace = ValidationTrace()
    for stmt in func.body.statements:
        pm = apply_statement(pm, stmt, ctx)
        if isinstance(stmt, FieldAssign):
            text = f"{stmt.base}->{stmt.field} = {stmt.value}"
        elif isinstance(stmt, Assign):
            text = f"{stmt.target} = {stmt.value}"
        else:
            text = type(stmt).__name__
        trace.statements.append(text)
        trace.valid_after.append(pm.validation.is_valid_for("BinTree"))
        trace.violations_after.append([str(v) for v in pm.validation.violations])
    return trace
