"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.bench.expected` — the numbers printed in the paper (section 4.4),
* :mod:`repro.bench.tables` — the TIMES and SPEEDUP tables (experiments E1/E2),
* :mod:`repro.bench.figures` — the in-text path matrices and precision/
  validation demonstrations (experiments E3–E6),
* :mod:`repro.bench.ablation` — the speedup-loss attribution sweeps (E8) and
  the strip-mine ablation (E7),
* :mod:`repro.bench.stress` — generated stress programs for the path-matrix
  fixpoint performance suite (``benchmarks/test_perf_pathmatrix.py``).

``benchmarks/`` contains one pytest-benchmark target per experiment, each a
thin wrapper over the functions here; ``examples/nbody_speedup_table.py``
prints the full tables from the command line.
"""

from repro.bench.expected import (
    PAPER_TIMES,
    PAPER_SPEEDUPS,
    PAPER_NS,
    PAPER_PE_COUNTS,
    PAPER_TIME_STEPS,
)
from repro.bench.tables import (
    SpeedupCell,
    SpeedupTable,
    run_speedup_experiment,
    format_times_table,
    format_speedup_table,
    compare_with_paper,
)
from repro.bench.figures import (
    polynomial_pathmatrix_figure,
    bhl1_pathmatrix_figure,
    precision_comparison,
    validation_trace_figure,
)
from repro.bench.stress import (
    deep_program,
    random_program,
    wide_program,
)
from repro.bench.ablation import (
    AblationResult,
    loss_attribution,
    scheduling_ablation,
    sync_cost_ablation,
    subtree_parallelism_ablation,
)

__all__ = [
    "PAPER_TIMES",
    "PAPER_SPEEDUPS",
    "PAPER_NS",
    "PAPER_PE_COUNTS",
    "PAPER_TIME_STEPS",
    "SpeedupCell",
    "SpeedupTable",
    "run_speedup_experiment",
    "format_times_table",
    "format_speedup_table",
    "compare_with_paper",
    "polynomial_pathmatrix_figure",
    "bhl1_pathmatrix_figure",
    "precision_comparison",
    "validation_trace_figure",
    "AblationResult",
    "loss_attribution",
    "scheduling_ablation",
    "sync_cost_ablation",
    "subtree_parallelism_ablation",
    "wide_program",
    "deep_program",
    "random_program",
]
