"""The paper's reported numbers (section 4.4).

The original experiment: the transformed Barnes–Hut program on a Sequent
multiprocessor, 80 time steps, N ∈ {128, 512, 1024}, sequential vs. 4 and 7
processors.  "All times represent seconds."
"""

from __future__ import annotations


#: problem sizes of the paper's table
PAPER_NS: tuple[int, ...] = (128, 512, 1024)

#: processor counts of the paper's table (1 == the sequential run)
PAPER_PE_COUNTS: tuple[int, ...] = (1, 4, 7)

#: simulation length used by the paper
PAPER_TIME_STEPS: int = 80

#: TIMES table, seconds: PAPER_TIMES[pes][n]
PAPER_TIMES: dict[int, dict[int, float]] = {
    1: {128: 188.0, 512: 1496.0, 1024: 3768.0},
    4: {128: 75.0, 512: 548.0, 1024: 1343.0},
    7: {128: 57.0, 512: 369.0, 1024: 873.0},
}

#: SPEEDUP table: PAPER_SPEEDUPS[pes][n]
PAPER_SPEEDUPS: dict[int, dict[int, float]] = {
    1: {128: 1.0, 512: 1.0, 1024: 1.0},
    4: {128: 2.5, 512: 2.7, 1024: 2.8},
    7: {128: 3.3, 512: 4.1, 1024: 4.3},
}


def paper_speedup(pes: int, n: int) -> float:
    return PAPER_SPEEDUPS[pes][n]


def paper_time(pes: int, n: int) -> float:
    return PAPER_TIMES[pes][n]


def paper_qualitative_claims() -> list[str]:
    """The shape properties the reproduction is expected to preserve."""
    return [
        "par(4) and par(7) are both faster than sequential for every N",
        "par(7) is faster than par(4) for every N",
        "speedups are sub-linear (below the processor count)",
        "speedup improves (weakly) as N grows, for both 4 and 7 processors",
        "4-processor speedup lies in roughly the 2.3-3.1 band",
        "7-processor speedup lies in roughly the 3.1-4.7 band",
    ]
