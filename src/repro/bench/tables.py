"""Regenerate the paper's TIMES and SPEEDUP tables (experiments E1 and E2).

The measured quantity is the simulated elapsed time of the strip-mined
Barnes–Hut program on the Sequent-like machine model, in abstract work units
(one unit = one particle–node interaction).  For the TIMES table the unit
times are rescaled so that the sequential N=128 entry matches the paper's 188
seconds — absolute times on 1990 hardware are not reproducible, but after
this single-point calibration the *relative* times (and hence every speedup)
are genuine outputs of the reproduction.

The default workload is smaller than the paper's 80 time steps so the table
regenerates in seconds on a laptop; per-step work is essentially constant
over short horizons, so speedups are unaffected (pass ``steps=80`` to match
the paper exactly if you have the patience).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.expected import PAPER_NS, PAPER_SPEEDUPS, PAPER_TIMES
from repro.machine.costmodel import MachineConfig, SEQUENT_LIKE
from repro.nbody.datasets import make_particles
from repro.nbody.parallel import StripMinedParallelSimulation
from repro.nbody.simulation import BarnesHutSimulation, SimulationConfig


#: workload defaults chosen to match the paper's setup qualitatively
DEFAULT_DISTRIBUTION = "uniform"
DEFAULT_THETA = 0.4
DEFAULT_STEPS = 2
DEFAULT_SEED = 3


@dataclass
class SpeedupCell:
    """One (N, PEs) measurement."""

    n: int
    pes: int
    elapsed_units: float
    speedup: float

    def scaled_seconds(self, scale: float) -> float:
        return self.elapsed_units * scale


@dataclass
class SpeedupTable:
    """All measurements of one experiment run."""

    ns: list[int]
    pe_counts: list[int]
    steps: int
    cells: dict[tuple[int, int], SpeedupCell] = field(default_factory=dict)

    def cell(self, n: int, pes: int) -> SpeedupCell:
        return self.cells[(n, pes)]

    def speedup(self, n: int, pes: int) -> float:
        return self.cells[(n, pes)].speedup

    def sequential_units(self, n: int) -> float:
        return self.cells[(n, 1)].elapsed_units

    def calibration_scale(self, reference_n: int = 128, reference_seconds: float = 188.0) -> float:
        """Seconds per work unit so that seq(reference_n) == reference_seconds."""
        if (reference_n, 1) not in self.cells:
            reference_n = self.ns[0]
        return reference_seconds / self.cells[(reference_n, 1)].elapsed_units


def run_speedup_experiment(
    ns: tuple[int, ...] = PAPER_NS,
    pe_counts: tuple[int, ...] = (4, 7),
    steps: int = DEFAULT_STEPS,
    theta: float = DEFAULT_THETA,
    distribution: str = DEFAULT_DISTRIBUTION,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig = SEQUENT_LIKE,
) -> SpeedupTable:
    """Run the sequential and strip-mined parallel simulations for every cell."""
    table = SpeedupTable(ns=list(ns), pe_counts=[1] + list(pe_counts), steps=steps)
    for n in ns:
        config = SimulationConfig(
            n=n, steps=steps, theta=theta, distribution=distribution, seed=seed
        )
        particles = make_particles(n, distribution, seed=seed)
        sequential = BarnesHutSimulation(particles, config).run()
        seq_units = sequential.total_work
        table.cells[(n, 1)] = SpeedupCell(n=n, pes=1, elapsed_units=seq_units, speedup=1.0)
        for pes in pe_counts:
            fresh = make_particles(n, distribution, seed=seed)
            parallel = StripMinedParallelSimulation(
                fresh, config, machine.with_pes(pes)
            ).run()
            table.cells[(n, pes)] = SpeedupCell(
                n=n,
                pes=pes,
                elapsed_units=parallel.elapsed,
                speedup=parallel.speedup_against(seq_units),
            )
    return table


# ---------------------------------------------------------------------------
# formatting
# ---------------------------------------------------------------------------
def _format_grid(header: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
    def fmt(row):
        return " | ".join(str(c).rjust(w) for c, w in zip(row, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep] + [fmt(r) for r in rows])


def format_times_table(table: SpeedupTable, calibrate: bool = True) -> str:
    """Render the TIMES table (seconds after single-point calibration)."""
    scale = table.calibration_scale() if calibrate else 1.0
    unit = "s" if calibrate else "units"
    header = ["TIMES"] + [f"N = {n}" for n in table.ns]
    rows = []
    for pes in table.pe_counts:
        label = "seq" if pes == 1 else f"par({pes})"
        row = [label]
        for n in table.ns:
            row.append(f"{table.cell(n, pes).elapsed_units * scale:.0f}")
        rows.append(row)
    return f"(measured, {unit})\n" + _format_grid(header, rows)


def format_speedup_table(table: SpeedupTable) -> str:
    """Render the SPEEDUP table."""
    header = ["SPEEDUP"] + [f"N = {n}" for n in table.ns]
    rows = []
    for pes in table.pe_counts:
        label = "seq" if pes == 1 else f"par({pes})"
        row = [label]
        for n in table.ns:
            row.append(f"{table.speedup(n, pes):.1f}")
        rows.append(row)
    return _format_grid(header, rows)


def compare_with_paper(table: SpeedupTable) -> str:
    """Side-by-side paper vs. measured speedups plus the qualitative checks."""
    lines = ["paper vs. measured speedup:"]
    header = ["PEs"] + [f"N={n} paper/ours" for n in table.ns]
    rows = []
    for pes in [p for p in table.pe_counts if p != 1]:
        row = [f"par({pes})"]
        for n in table.ns:
            paper = PAPER_SPEEDUPS.get(pes, {}).get(n)
            ours = table.speedup(n, pes)
            row.append(f"{paper if paper is not None else '—'} / {ours:.2f}")
        rows.append(row)
    lines.append(_format_grid(header, rows))
    lines.append("")
    lines.append("shape checks:")
    for claim, ok in qualitative_checks(table):
        lines.append(f"  [{'ok' if ok else 'FAIL'}] {claim}")
    return "\n".join(lines)


def qualitative_checks(table: SpeedupTable) -> list[tuple[str, bool]]:
    """Evaluate the shape properties the reproduction must preserve."""
    checks: list[tuple[str, bool]] = []
    parallel_counts = [p for p in table.pe_counts if p != 1]
    checks.append(
        (
            "every parallel configuration beats sequential",
            all(table.speedup(n, p) > 1.0 for n in table.ns for p in parallel_counts),
        )
    )
    if len(parallel_counts) >= 2:
        lo, hi = min(parallel_counts), max(parallel_counts)
        checks.append(
            (
                f"par({hi}) beats par({lo}) for every N",
                all(table.speedup(n, hi) > table.speedup(n, lo) for n in table.ns),
            )
        )
    checks.append(
        (
            "speedups are sub-linear",
            all(table.speedup(n, p) < p for n in table.ns for p in parallel_counts),
        )
    )
    checks.append(
        (
            "speedup does not decrease as N grows",
            all(
                table.speedup(table.ns[i + 1], p) >= table.speedup(table.ns[i], p) - 0.05
                for p in parallel_counts
                for i in range(len(table.ns) - 1)
            ),
        )
    )
    if 4 in parallel_counts:
        checks.append(
            (
                "4-PE speedups within ±0.5 of the paper's 2.5–2.8",
                all(
                    abs(table.speedup(n, 4) - PAPER_SPEEDUPS[4][n]) <= 0.5
                    for n in table.ns
                    if n in PAPER_SPEEDUPS[4]
                ),
            )
        )
    if 7 in parallel_counts:
        checks.append(
            (
                "7-PE speedups within ±0.7 of the paper's 3.3–4.3",
                all(
                    abs(table.speedup(n, 7) - PAPER_SPEEDUPS[7][n]) <= 0.7
                    for n in table.ns
                    if n in PAPER_SPEEDUPS[7]
                ),
            )
        )
    return checks
