"""Ablation studies: attribute the lost speedup to the paper's four causes.

Under its results table the paper explains the sub-linear speedups by:

1. "simple static scheduling is being used",
2. "the parallelism inherent in the independent subtree computations (within
   compute_force) is not yet being exploited",
3. "synchronization on a Sequent is rather slow",
4. "no attempt is made to optimize the granularity of iterations".

Each ablation below removes exactly one of these costs from the simulated
machine (or schedule) and reports how much speedup returns, on the same
workload as the headline table.  ``loss_attribution`` runs all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.costmodel import MachineConfig, SEQUENT_LIKE
from repro.machine.simulator import MachineSimulator, SimulationTrace
from repro.nbody.datasets import make_particles
from repro.nbody.parallel import StripMinedParallelSimulation
from repro.nbody.simulation import BarnesHutSimulation, SimulationConfig
from repro.bench.tables import DEFAULT_DISTRIBUTION, DEFAULT_SEED, DEFAULT_STEPS, DEFAULT_THETA


@dataclass
class AblationResult:
    """Speedups of one configuration sweep at a fixed N and PE count."""

    name: str
    n: int
    pes: int
    baseline_speedup: float
    variants: dict[str, float] = field(default_factory=dict)

    def improvement(self, variant: str) -> float:
        return self.variants[variant] - self.baseline_speedup

    def render(self) -> str:
        lines = [f"{self.name} (N={self.n}, {self.pes} PEs)"]
        lines.append(f"  baseline (paper configuration): {self.baseline_speedup:.2f}")
        for name, value in self.variants.items():
            delta = value - self.baseline_speedup
            lines.append(f"  {name}: {value:.2f} ({delta:+.2f})")
        return "\n".join(lines)


def _sequential_and_costs(
    n: int, steps: int, theta: float, distribution: str, seed: int
) -> tuple[float, list[list[float]], list[float], float]:
    """Run the sequential simulation once and extract per-step cost vectors.

    Returns (sequential work, per-step force costs, per-step build costs,
    per-particle update cost).
    """
    config = SimulationConfig(n=n, steps=steps, theta=theta, distribution=distribution, seed=seed)
    particles = make_particles(n, distribution, seed=seed)
    seq = BarnesHutSimulation(particles, config).run()
    force_costs = [list(s.per_particle_force_work) for s in seq.steps]
    build_costs = [s.build_work for s in seq.steps]
    update_cost = seq.steps[0].per_particle_update_work[0] if seq.steps[0].per_particle_update_work else 4.0
    return seq.total_work, force_costs, build_costs, update_cost


def _replay(
    machine: MachineConfig,
    force_costs: list[list[float]],
    build_costs: list[float],
    update_cost: float,
    n: int,
    scheduler: str | None = None,
    whole_pass_forkjoin: bool = False,
    parallel_build: bool = False,
    subtree_factor: float = 1.0,
    chunk: int = 1,
) -> float:
    """Replay the recorded per-step costs on a machine variant; returns elapsed."""
    simulator = MachineSimulator(machine)
    trace = SimulationTrace(config=machine)
    for step_force, build in zip(force_costs, build_costs):
        costs = list(step_force)
        if subtree_factor > 1.0:
            # Exploiting the independent subtree computations inside
            # compute_force lets an otherwise-idle PE help with the group's
            # longest iteration: the group's critical path drops toward the
            # group mean (perfect balance), but never below it — the total
            # work is unchanged.
            costs = _balance_groups(costs, machine.num_pes, subtree_factor)
        if chunk > 1:
            costs = [
                sum(costs[i:i + chunk]) for i in range(0, len(costs), chunk)
            ]
        build_time = build / machine.num_pes if parallel_build else build
        trace.add_sequential(build_time)
        updates = [update_cost] * n
        if chunk > 1:
            updates = [
                sum(updates[i:i + chunk]) for i in range(0, len(updates), chunk)
            ]
        if whole_pass_forkjoin:
            simulator.simulate_doall(costs, scheduler_name=scheduler, trace=trace)
            simulator.simulate_doall(updates, scheduler_name=scheduler, trace=trace)
        else:
            simulator.simulate_stripmined_pass(costs, trace=trace)
            simulator.simulate_stripmined_pass(updates, trace=trace)
    return trace.elapsed


def _balance_groups(costs: list[float], pes: int, factor: float) -> list[float]:
    """Rebalance each group of ``pes`` costs as if its critical path shrank.

    The group's slowest iteration is reduced by ``factor`` (its subtrees run
    on idle PEs) but the group's elapsed time can never drop below the mean
    (total work is conserved); every other iteration is left unchanged.
    """
    balanced: list[float] = []
    for start in range(0, len(costs), pes):
        group = list(costs[start:start + pes])
        if not group:
            continue
        mean = sum(group) / len(group)
        longest = max(group)
        new_max = max(longest / factor, mean)
        shaved = longest - new_max
        idx = group.index(longest)
        group[idx] = new_max
        # the shaved work does not disappear: it is redistributed to the
        # other members of the group (the PEs that would otherwise idle)
        others = [i for i in range(len(group)) if i != idx]
        if others and shaved > 0:
            share = shaved / len(others)
            for i in others:
                group[i] += share
        elif shaved > 0:
            group[idx] += shaved
        balanced.extend(group)
    return balanced


def loss_attribution(
    n: int = 512,
    pes: int = 4,
    steps: int = DEFAULT_STEPS,
    theta: float = DEFAULT_THETA,
    distribution: str = DEFAULT_DISTRIBUTION,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig = SEQUENT_LIKE,
) -> AblationResult:
    """Remove each of the paper's four loss causes in turn."""
    seq_work, force_costs, build_costs, update_cost = _sequential_and_costs(
        n, steps, theta, distribution, seed
    )
    m = machine.with_pes(pes)

    def speedup(**kwargs) -> float:
        elapsed = _replay(m, force_costs, build_costs, update_cost, n, **kwargs)
        return seq_work / elapsed

    baseline = speedup()
    result = AblationResult(
        name="speedup-loss attribution", n=n, pes=pes, baseline_speedup=baseline
    )
    # (1) replace static interleaved scheduling with dynamic self-scheduling
    #     over a whole-pass fork/join
    result.variants["dynamic scheduling (one fork/join per pass)"] = speedup(
        scheduler="dynamic", whole_pass_forkjoin=True
    )
    # (2) exploit the independent subtree computations inside compute_force
    result.variants["exploit subtree parallelism (factor 2 critical path)"] = speedup(
        subtree_factor=2.0
    )
    # (3) free synchronization
    free_sync = m.with_sync_cost(0.0)
    result.variants["zero-cost synchronization"] = (
        seq_work
        / _replay(free_sync, force_costs, build_costs, update_cost, n)
    )
    # (4) coarser granularity: each task processes 4 consecutive particles
    result.variants["coarser granularity (4 particles per task)"] = speedup(chunk=4)
    # combined upper bound: everything at once plus a parallel tree build
    combined_machine = m.with_sync_cost(0.0)
    result.variants["all of the above + parallel tree build"] = (
        seq_work
        / _replay(
            combined_machine,
            force_costs,
            build_costs,
            update_cost,
            n,
            scheduler="dynamic",
            whole_pass_forkjoin=True,
            parallel_build=True,
            subtree_factor=2.0,
            chunk=4,
        )
    )
    return result


def scheduling_ablation(
    n: int = 512, pes: int = 7, steps: int = DEFAULT_STEPS
) -> AblationResult:
    """Static interleaved vs. static block vs. dynamic scheduling."""
    seq_work, force_costs, build_costs, update_cost = _sequential_and_costs(
        n, steps, DEFAULT_THETA, DEFAULT_DISTRIBUTION, DEFAULT_SEED
    )
    m = SEQUENT_LIKE.with_pes(pes)
    result = AblationResult(
        name="scheduling policy ablation",
        n=n,
        pes=pes,
        baseline_speedup=seq_work
        / _replay(m, force_costs, build_costs, update_cost, n),
    )
    for scheduler in ("static-block", "dynamic", "dynamic-lpt"):
        result.variants[scheduler] = seq_work / _replay(
            m,
            force_costs,
            build_costs,
            update_cost,
            n,
            scheduler=scheduler,
            whole_pass_forkjoin=True,
        )
    return result


def sync_cost_ablation(
    n: int = 512, pes: int = 4, sync_costs: tuple[float, ...] = (0.0, 5.0, 10.0, 30.0, 100.0)
) -> AblationResult:
    """Sweep the barrier cost to show its effect on the strip-mined schedule."""
    seq_work, force_costs, build_costs, update_cost = _sequential_and_costs(
        n, DEFAULT_STEPS, DEFAULT_THETA, DEFAULT_DISTRIBUTION, DEFAULT_SEED
    )
    base = SEQUENT_LIKE.with_pes(pes)
    result = AblationResult(
        name="synchronization cost ablation",
        n=n,
        pes=pes,
        baseline_speedup=seq_work
        / _replay(base, force_costs, build_costs, update_cost, n),
    )
    for sync in sync_costs:
        m = base.with_sync_cost(sync)
        result.variants[f"sync={sync:g}"] = seq_work / _replay(
            m, force_costs, build_costs, update_cost, n
        )
    return result


def subtree_parallelism_ablation(n: int = 512, pes: int = 7) -> AblationResult:
    """How much the unexploited intra-compute_force parallelism costs."""
    seq_work, force_costs, build_costs, update_cost = _sequential_and_costs(
        n, DEFAULT_STEPS, DEFAULT_THETA, DEFAULT_DISTRIBUTION, DEFAULT_SEED
    )
    m = SEQUENT_LIKE.with_pes(pes)
    result = AblationResult(
        name="subtree-parallelism ablation",
        n=n,
        pes=pes,
        baseline_speedup=seq_work
        / _replay(m, force_costs, build_costs, update_cost, n),
    )
    for factor in (1.5, 2.0, 4.0):
        result.variants[f"critical path / {factor:g}"] = seq_work / _replay(
            m, force_costs, build_costs, update_cost, n, subtree_factor=factor
        )
    return result
