"""Generated stress programs for the path-matrix performance suite.

The paper's worked examples have a handful of pointer variables and a couple
of blocks; the fixpoint core is supposed to scale far beyond that ("as fast
as the hardware allows").  This module generates toy-language programs that
stress the two axes that dominate solver cost:

* **wide** programs — many simultaneously live pointer variables, so every
  matrix operation touches a large entry set;
* **deep** programs — long chains of nested loops and branches, so the
  round-robin engine pays many whole-CFG sweeps while the worklist engine
  only revisits the region that changed;
* **random** programs — small, seeded, arbitrary statement mixes used by the
  golden-equivalence property tests.

All programs use the paper's ``ListNode`` ADDS declaration (uniquely-forward
``next``), so both precise and conservative rules get exercised.
"""

from __future__ import annotations

import random

from repro.adds.library import merged_into
from repro.lang.ast_nodes import Program


def wide_program_source(num_vars: int = 50, scalar_run: int = 4) -> str:
    """A single loop over a list with ``num_vars`` live pointer variables.

    Every variable holds a position somewhere down the list, so the matrix
    carries O(num_vars^2) path facts.  Between pointer updates sit runs of
    data-field stores (``p->coef = ...``) that a copy-on-write transfer can
    skip for free.
    """
    lines = ["function stress(head)", "{"]
    for i in range(num_vars):
        lines.append(f"  var p{i};")
    lines.append("  p0 = head;")
    for i in range(1, num_vars):
        if i % 7 == 3:
            lines.append(f"  p{i} = p{i - 1};")
        else:
            lines.append(f"  p{i} = p{i - 1}->next;")
        for s in range(scalar_run):
            lines.append(f"  p{i}->coef = p{i}->coef + {s};")
    lines.append("  while p0 <> NULL")
    lines.append("  {")
    lines.append("    p0->coef = p0->coef * 2;")
    lines.append(f"    p{num_vars - 1} = p{num_vars - 1}->next;")
    lines.append("    p0 = p0->next;")
    lines.append("  }")
    lines.append("  return head;")
    lines.append("}")
    return "\n".join(lines)


def deep_program_source(depth: int = 8, segment: int = 6, num_vars: int = 12) -> str:
    """``depth`` nested traversal loops with branchy straight-line segments."""
    num_vars = max(num_vars, depth + 2)
    lines = ["function deep(head)", "{"]
    for i in range(num_vars):
        lines.append(f"  var q{i};")
    lines.append("  q0 = head;")
    for i in range(1, num_vars - depth):
        lines.append(f"  q{i} = q{i - 1}->next;")

    def indent(level: int) -> str:
        return "  " * (level + 1)

    def emit_loop(level: int) -> None:
        var = f"q{num_vars - depth + level}"
        prev = f"q{num_vars - depth + level - 1}" if level > 0 else "q0"
        pad = indent(level)
        lines.append(f"{pad}{var} = {prev};")
        lines.append(f"{pad}while {var} <> NULL")
        lines.append(f"{pad}{{")
        inner = indent(level + 1)
        for s in range(segment):
            lines.append(f"{inner}{var}->coef = {var}->coef + {s};")
        lines.append(f"{inner}if {var}->coef > 10")
        lines.append(f"{inner}{{ {var}->exp = 0; }}")
        lines.append(f"{inner}else")
        lines.append(f"{inner}{{ {var}->exp = 1; }}")
        if level + 1 < depth:
            emit_loop(level + 1)
        lines.append(f"{inner}{var} = {var}->next;")
        lines.append(f"{pad}}}")

    emit_loop(0)
    lines.append("  return head;")
    lines.append("}")
    return "\n".join(lines)


def random_program_source(
    rng: random.Random,
    num_vars: int = 4,
    num_statements: int = 14,
    max_depth: int = 2,
) -> str:
    """A small random program over ``num_vars`` pointer variables.

    Statements cover every transfer rule: nil/new/copy assignments, acyclic
    field loads, pointer-field stores (which trigger abstraction
    validation), data stores, and nested ``if``/``while`` structures.
    """
    names = [f"v{i}" for i in range(num_vars)]

    def statement(depth: int) -> list[str]:
        pad = "  " * (depth + 1)
        a, b = rng.choice(names), rng.choice(names)
        kind = rng.randrange(10)
        if kind == 0:
            return [f"{pad}{a} = NULL;"]
        if kind == 1:
            return [f"{pad}{a} = new ListNode;"]
        if kind == 2:
            return [f"{pad}{a} = {b};"]
        if kind in (3, 4):
            return [f"{pad}{a} = {b}->next;"]
        if kind == 5:
            return [f"{pad}{a}->next = {b};"]
        if kind == 6:
            return [f"{pad}{a}->coef = {a}->coef + 1;"]
        if kind == 7 and depth < max_depth:
            body = statement(depth + 1) + statement(depth + 1)
            return [f"{pad}if {a} <> NULL", f"{pad}{{", *body, f"{pad}}}"]
        if kind == 8 and depth < max_depth:
            body = statement(depth + 1) + [f"{pad}  {a} = {a}->next;"]
            return [f"{pad}while {a} <> NULL", f"{pad}{{", *body, f"{pad}}}"]
        return [f"{pad}{a}->exp = 2;"]

    lines = [f"function chaos({names[0]})", "{"]
    for name in names[1:]:
        lines.append(f"  var {name};")
        lines.append(f"  {name} = {names[0]};")
    for _ in range(num_statements):
        lines.extend(statement(0))
    lines.append(f"  return {names[0]};")
    lines.append("}")
    return "\n".join(lines)


def wide_program(num_vars: int = 50, scalar_run: int = 4) -> Program:
    return merged_into(wide_program_source(num_vars, scalar_run), "ListNode")


def deep_program(depth: int = 8, segment: int = 6, num_vars: int = 12) -> Program:
    return merged_into(deep_program_source(depth, segment, num_vars), "ListNode")


def random_program(seed: int, **kwargs) -> Program:
    rng = random.Random(seed)
    return merged_into(random_program_source(rng, **kwargs), "ListNode")
