"""Generated stress programs for the path-matrix performance suite.

The paper's worked examples have a handful of pointer variables and a couple
of blocks; the fixpoint core is supposed to scale far beyond that ("as fast
as the hardware allows").  This module generates toy-language programs that
stress the two axes that dominate solver cost:

* **wide** programs — many simultaneously live pointer variables, so every
  matrix operation touches a large entry set;
* **deep** programs — long chains of nested loops and branches, so the
  round-robin engine pays many whole-CFG sweeps while the worklist engine
  only revisits the region that changed;
* **random** programs — small, seeded, arbitrary statement mixes used by the
  golden-equivalence property tests.

All programs use the paper's ``ListNode`` ADDS declaration (uniquely-forward
``next``), so both precise and conservative rules get exercised.
"""

from __future__ import annotations

import random

from repro.adds.library import merged_into
from repro.lang.ast_nodes import Program


def wide_program_source(num_vars: int = 50, scalar_run: int = 4) -> str:
    """A single loop over a list with ``num_vars`` live pointer variables.

    Every variable holds a position somewhere down the list, so the matrix
    carries O(num_vars^2) path facts.  Between pointer updates sit runs of
    data-field stores (``p->coef = ...``) that a copy-on-write transfer can
    skip for free.
    """
    lines = ["function stress(head)", "{"]
    for i in range(num_vars):
        lines.append(f"  var p{i};")
    lines.append("  p0 = head;")
    for i in range(1, num_vars):
        if i % 7 == 3:
            lines.append(f"  p{i} = p{i - 1};")
        else:
            lines.append(f"  p{i} = p{i - 1}->next;")
        for s in range(scalar_run):
            lines.append(f"  p{i}->coef = p{i}->coef + {s};")
    lines.append("  while p0 <> NULL")
    lines.append("  {")
    lines.append("    p0->coef = p0->coef * 2;")
    lines.append(f"    p{num_vars - 1} = p{num_vars - 1}->next;")
    lines.append("    p0 = p0->next;")
    lines.append("  }")
    lines.append("  return head;")
    lines.append("}")
    return "\n".join(lines)


def deep_program_source(depth: int = 8, segment: int = 6, num_vars: int = 12) -> str:
    """``depth`` nested traversal loops with branchy straight-line segments."""
    num_vars = max(num_vars, depth + 2)
    lines = ["function deep(head)", "{"]
    for i in range(num_vars):
        lines.append(f"  var q{i};")
    lines.append("  q0 = head;")
    for i in range(1, num_vars - depth):
        lines.append(f"  q{i} = q{i - 1}->next;")

    def indent(level: int) -> str:
        return "  " * (level + 1)

    def emit_loop(level: int) -> None:
        var = f"q{num_vars - depth + level}"
        prev = f"q{num_vars - depth + level - 1}" if level > 0 else "q0"
        pad = indent(level)
        lines.append(f"{pad}{var} = {prev};")
        lines.append(f"{pad}while {var} <> NULL")
        lines.append(f"{pad}{{")
        inner = indent(level + 1)
        for s in range(segment):
            lines.append(f"{inner}{var}->coef = {var}->coef + {s};")
        lines.append(f"{inner}if {var}->coef > 10")
        lines.append(f"{inner}{{ {var}->exp = 0; }}")
        lines.append(f"{inner}else")
        lines.append(f"{inner}{{ {var}->exp = 1; }}")
        if level + 1 < depth:
            emit_loop(level + 1)
        lines.append(f"{inner}{var} = {var}->next;")
        lines.append(f"{pad}}}")

    emit_loop(0)
    lines.append("  return head;")
    lines.append("}")
    return "\n".join(lines)


def random_program_source(
    rng: random.Random,
    num_vars: int = 4,
    num_statements: int = 14,
    max_depth: int = 2,
) -> str:
    """A small random program over ``num_vars`` pointer variables.

    Statements cover every transfer rule: nil/new/copy assignments, acyclic
    field loads, pointer-field stores (which trigger abstraction
    validation), data stores, and nested ``if``/``while`` structures.
    """
    names = [f"v{i}" for i in range(num_vars)]

    def statement(depth: int) -> list[str]:
        pad = "  " * (depth + 1)
        a, b = rng.choice(names), rng.choice(names)
        kind = rng.randrange(10)
        if kind == 0:
            return [f"{pad}{a} = NULL;"]
        if kind == 1:
            return [f"{pad}{a} = new ListNode;"]
        if kind == 2:
            return [f"{pad}{a} = {b};"]
        if kind in (3, 4):
            return [f"{pad}{a} = {b}->next;"]
        if kind == 5:
            return [f"{pad}{a}->next = {b};"]
        if kind == 6:
            return [f"{pad}{a}->coef = {a}->coef + 1;"]
        if kind == 7 and depth < max_depth:
            body = statement(depth + 1) + statement(depth + 1)
            return [f"{pad}if {a} <> NULL", f"{pad}{{", *body, f"{pad}}}"]
        if kind == 8 and depth < max_depth:
            body = statement(depth + 1) + [f"{pad}  {a} = {a}->next;"]
            return [f"{pad}while {a} <> NULL", f"{pad}{{", *body, f"{pad}}}"]
        return [f"{pad}{a}->exp = 2;"]

    lines = [f"function chaos({names[0]})", "{"]
    for name in names[1:]:
        lines.append(f"  var {name};")
        lines.append(f"  {name} = {names[0]};")
    for _ in range(num_statements):
        lines.extend(statement(0))
    lines.append(f"  return {names[0]};")
    lines.append("}")
    return "\n".join(lines)


def call_web_program_source(
    num_functions: int = 200,
    seed: int = 0,
    max_fanout: int = 3,
    recursive_every: int = 40,
    prefix: str = "web",
) -> str:
    """A program of ``num_functions`` small functions over a call DAG.

    This is the batch scheduler's stress corpus: many cheap work units whose
    call graph has both width (many independent leaves per depth layer) and
    depth (callers that only become runnable once their callees land), plus
    a mutually recursive pair every ``recursive_every`` functions so the
    condensation contains components larger than one function.  Every body
    embeds its function index in a constant and every name carries
    ``prefix``, so no two functions — within one web or across differently
    prefixed webs of one corpus — are content-identical: a cold run must
    execute exactly ``num_functions`` analyses (the benchmark asserts that).

    Bodies are deliberately tiny (a few data-field writes, up to
    ``max_fanout`` calls into lower layers; every eighth function carries a
    parallelizable traversal loop, which is where the per-function pipeline
    gets expensive): most units are far cheaper than one task dispatch,
    which is exactly the regime the executor's cost-model chunking exists
    for.
    """
    rng = random.Random(seed)
    lines: list[str] = []
    for i in range(num_functions):
        callees: list[int] = []
        if i > 0:
            # callees come from a recent window so the DAG gains depth
            # instead of every function calling the same few leaves
            window_lo = max(0, i - 25)
            for _ in range(rng.randrange(max_fanout + 1)):
                callees.append(rng.randrange(window_lo, i))
        # mutually recursive pairs: web{k} <-> web{k+1} for k = 1 mod period
        recursive_partner = None
        if recursive_every:
            if i % recursive_every == 1 and i + 1 < num_functions:
                recursive_partner = i + 1
            elif i % recursive_every == 2 and i >= 1:
                recursive_partner = i - 1
        if recursive_partner is not None:
            callees.append(recursive_partner)

        body: list[str] = [
            f"function {prefix}{i}(h)",
            "{",
            "  var p;",
            "  var q;",
            "  p = h;",
        ]
        kind = i % 8
        if kind == 0:
            body += [
                "  while p <> NULL",
                "  {",
                f"    p->coef = p->coef + {i + 1};",
                "    p = p->next;",
                "  }",
                "  p = h;",
            ]
        elif kind in (2, 5):
            body += [
                "  q = new ListNode;",
                f"  q->coef = {i + 1};",
                f"  q->exp = {i};",
                "  p = q;",
            ]
        elif kind in (3, 7):
            body += [
                "  q = p->next;",
                f"  q->exp = q->exp + {i + 1};",
                "  q = q->next;",
                f"  q->coef = {i};",
            ]
        else:
            body += [
                f"  p->exp = {i + 1};",
                "  p = p->next;",
                f"  p->coef = {i + 1};",
            ]
        for j in sorted(set(callees)):
            if j == recursive_partner:  # recursion stays behind a guard
                body += [
                    f"  if p->coef > {i}",
                    f"  {{ p = {prefix}{j}(p); }}",
                ]
            else:
                body.append(f"  p = {prefix}{j}(p);")
        body += ["  return p;", "}"]
        lines.extend(body)
    return "\n".join(lines)


def wide_program(num_vars: int = 50, scalar_run: int = 4) -> Program:
    return merged_into(wide_program_source(num_vars, scalar_run), "ListNode")


def deep_program(depth: int = 8, segment: int = 6, num_vars: int = 12) -> Program:
    return merged_into(deep_program_source(depth, segment, num_vars), "ListNode")


def random_program(seed: int, **kwargs) -> Program:
    rng = random.Random(seed)
    return merged_into(random_program_source(rng, **kwargs), "ListNode")
