"""Execution-driven cost simulation of the strip-mined parallel schedule.

The simulator answers the question the paper's results table answers with a
real Sequent: *how long does the transformed program take on P processors?*
Work is expressed in abstract units supplied by the application (for the
N-body code, one unit per particle–node interaction; for interpreted toy
programs, one unit per interpreter operation).

Two granularities are provided:

* :meth:`MachineSimulator.simulate_stripmined_pass` — models the transformed
  loop exactly: the particle list is processed in groups of ``PEs``
  consecutive iterations, each group is one parallel step ending in a
  barrier, and the sequential FOR1 pointer skip-ahead runs between steps.
* :meth:`MachineSimulator.simulate_doall` — models a single fork/join over
  the whole iteration space with a pluggable scheduler; used by the ablation
  benches (dynamic self-scheduling, block scheduling, one-barrier-per-pass).

The simulator can also be attached to the toy-language interpreter as its
``ParallelFor`` executor, in which case iteration costs are measured in
interpreter operations — this is how the end-to-end integration tests run a
*transformed toy program* on the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.machine.costmodel import MachineConfig, SEQUENT_LIKE
from repro.machine.processor import ProcessingElement
from repro.machine.scheduler import StaticInterleavedScheduler, make_scheduler


@dataclass
class ParallelStepResult:
    """Timing of one parallel step (one group of ``PEs`` iterations)."""

    elapsed: float
    busy: list[float]
    sync: float
    idle: list[float]

    @property
    def max_busy(self) -> float:
        return max(self.busy) if self.busy else 0.0


@dataclass
class SimulationTrace:
    """Accumulated timing of a simulated run."""

    config: MachineConfig
    elapsed: float = 0.0
    sequential_time: float = 0.0
    parallel_steps: int = 0
    total_tasks: int = 0
    pes: list[ProcessingElement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pes:
            self.pes = [ProcessingElement(i) for i in range(self.config.num_pes)]

    # -- accounting -----------------------------------------------------------
    def add_sequential(self, cost: float) -> None:
        self.elapsed += cost
        self.sequential_time += cost

    def add_step(self, step: ParallelStepResult) -> None:
        self.elapsed += step.elapsed
        self.parallel_steps += 1
        for pe, busy, idle in zip(self.pes, step.busy, step.idle):
            pe.busy_time += busy
            pe.idle_time += idle
            pe.sync_time += step.sync
            if busy > 0:
                pe.tasks_executed += 1

    # -- derived metrics ----------------------------------------------------------
    @property
    def busy_time(self) -> float:
        return sum(pe.busy_time for pe in self.pes)

    @property
    def idle_time(self) -> float:
        return sum(pe.idle_time for pe in self.pes)

    @property
    def sync_time(self) -> float:
        return sum(pe.sync_time for pe in self.pes)

    def speedup_against(self, sequential_elapsed: float) -> float:
        return sequential_elapsed / self.elapsed if self.elapsed > 0 else float("inf")

    def efficiency_against(self, sequential_elapsed: float) -> float:
        return self.speedup_against(sequential_elapsed) / self.config.num_pes

    def seconds(self) -> float:
        return self.elapsed / self.config.units_per_second

    def describe(self) -> str:
        lines = [
            f"simulated run on {self.config.describe()}",
            f"  elapsed: {self.elapsed:.1f} units "
            f"({self.parallel_steps} parallel steps, "
            f"{self.sequential_time:.1f} sequential units)",
        ]
        for pe in self.pes:
            lines.append("  " + pe.describe())
        return "\n".join(lines)


class MachineSimulator:
    """Replay doall schedules over the configured machine."""

    def __init__(self, config: MachineConfig = SEQUENT_LIKE):
        self.config = config

    # -- elementary models -----------------------------------------------------
    def simulate_sequential(self, costs: Sequence[float]) -> float:
        """Total time of running all tasks on one processor (no overheads)."""
        return float(sum(costs))

    def _step(self, group: Sequence[float]) -> ParallelStepResult:
        """One strip-mined parallel step: task ``j`` of the group runs on PE ``j``."""
        num_pes = self.config.num_pes
        contention = self.config.contention_factor()
        busy = [0.0] * num_pes
        for j, cost in enumerate(group):
            if j >= num_pes:
                # more tasks than PEs in a group never happens with the
                # strip-mined schedule; fold extras onto the last PE
                busy[num_pes - 1] += (cost + self.config.dispatch_cost) * contention
            else:
                busy[j] = (cost + self.config.dispatch_cost) * contention
        longest = max(busy) if busy else 0.0
        idle = [longest - b for b in busy]
        sync = self.config.sync_cost
        return ParallelStepResult(elapsed=longest + sync, busy=busy, sync=sync, idle=idle)

    # -- the transformed-loop model ------------------------------------------------
    def simulate_stripmined_pass(
        self,
        costs: Sequence[float],
        trace: SimulationTrace | None = None,
        sequential_prologue: float = 0.0,
    ) -> SimulationTrace:
        """Simulate one pass of the transformed loop over ``costs`` iterations.

        ``sequential_prologue`` is charged before the pass (e.g. rebuilding
        the octree at the start of a time step, which the paper leaves
        sequential).  Between parallel steps the sequential FOR1 skip-ahead
        advances the list pointer ``PEs`` times.
        """
        if trace is None:
            trace = SimulationTrace(config=self.config)
        if sequential_prologue:
            trace.add_sequential(sequential_prologue)
        num_pes = self.config.num_pes
        n = len(costs)
        trace.total_tasks += n
        for start in range(0, n, num_pes):
            group = costs[start:start + num_pes]
            trace.add_step(self._step(group))
            # sequential pointer skip-ahead between steps (FOR1)
            advanced = min(num_pes, n - start)
            trace.add_sequential(self.config.traversal_cost * advanced)
        return trace

    # -- whole-loop fork/join model -----------------------------------------------
    def simulate_doall(
        self,
        costs: Sequence[float],
        scheduler_name: str | None = None,
        trace: SimulationTrace | None = None,
    ) -> SimulationTrace:
        """Simulate a single fork/join doall over all iterations.

        Used by the ablation benches: with a dynamic scheduler and one
        barrier for the whole pass, most of the static-scheduling and
        synchronization losses disappear.
        """
        if trace is None:
            trace = SimulationTrace(config=self.config)
        scheduler = make_scheduler(scheduler_name or self.config.scheduling) \
            if (scheduler_name or self.config.scheduling) != "static-interleaved" \
            else StaticInterleavedScheduler()
        num_pes = self.config.num_pes
        contention = self.config.contention_factor()
        assignment = scheduler.assign(costs, num_pes)
        busy = [
            sum((costs[i] + self.config.dispatch_cost) for i in tasks) * contention
            for tasks in assignment
        ]
        longest = max(busy) if busy else 0.0
        idle = [longest - b for b in busy]
        step = ParallelStepResult(
            elapsed=longest + self.config.sync_cost,
            busy=busy,
            sync=self.config.sync_cost,
            idle=idle,
        )
        trace.total_tasks += len(costs)
        trace.add_step(step)
        return trace

    # -- interpreter integration --------------------------------------------------
    def attach_to_interpreter(self, interpreter) -> "InterpreterParallelExecutor":
        """Install this simulator as the interpreter's ``ParallelFor`` executor.

        Returns the executor object, whose ``trace`` accumulates simulated
        timing across every parallel loop the interpreted program executes.
        """
        executor = InterpreterParallelExecutor(self)
        interpreter.set_parallel_executor(executor)
        return executor


class InterpreterParallelExecutor:
    """Runs toy-language ``ParallelFor`` loops and charges them to the simulator.

    Iterations execute sequentially (the host has one core); the *cost* of
    each iteration is the number of interpreter operations it performed, and
    those costs are replayed on the simulated machine as one parallel step.
    """

    def __init__(self, simulator: MachineSimulator):
        self.simulator = simulator
        self.trace = SimulationTrace(config=simulator.config)
        self.sequential_cost = 0.0

    def __call__(self, interpreter, stmt, frame) -> None:
        costs: list[float] = []

        def measured_body() -> None:
            before = interpreter.stats.total_operations()
            interpreter.execute_block(stmt.body, frame)
            costs.append(float(interpreter.stats.total_operations() - before))

        # the reference loop drives the iterations, so the simulated run
        # shares its exact semantics (step, descending bounds, loop-variable
        # re-read); only the per-iteration cost measurement is ours
        interpreter.run_counted_loop(stmt, frame, body=measured_body)
        self.sequential_cost += sum(costs)
        self.trace.add_step(self.simulator._step(costs))
