"""Cost model of the simulated shared-memory multiprocessor.

All times are in abstract *work units*; one unit corresponds to one unit of
work reported by the application (for the N-body code, one particle–node
interaction).  The defaults of :data:`SEQUENT_LIKE` are chosen so that the
relative magnitude of the overheads matches the qualitative description in
the paper's results section: simple static scheduling, "synchronization on a
Sequent is rather slow", no granularity optimization — which together push
the observed 4-processor speedup to ~2.5–2.8 and the 7-processor speedup to
~3.3–4.3, improving with N.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated machine.

    ``sync_cost`` is charged once per parallel step (the barrier at the end
    of the strip-mined inner loop); ``dispatch_cost`` once per task assigned
    to a PE (fork/dispatch overhead); ``traversal_cost`` models the
    sequential pointer skip-ahead (FOR1) executed between parallel steps,
    per list node skipped; ``memory_contention`` inflates each PE's busy time
    by a factor ``1 + memory_contention * (num_pes - 1)`` to model bus
    contention on a small shared-bus machine.
    """

    name: str = "sequent-like"
    num_pes: int = 4
    #: barrier / fork-join cost per parallel step, in work units
    #: (one work unit == one particle--node interaction of the N-body code)
    sync_cost: float = 10.0
    #: per-task dispatch overhead, in work units
    dispatch_cost: float = 1.0
    #: cost of one pointer dereference in the sequential skip-ahead loop
    traversal_cost: float = 1.0
    #: fractional busy-time inflation per additional PE (bus contention)
    memory_contention: float = 0.01
    #: scheduling policy: "static-interleaved" (the paper), "static-block", "dynamic"
    scheduling: str = "static-interleaved"
    #: work units per second, used only to convert to "seconds" for display
    units_per_second: float = 1.0

    def with_pes(self, num_pes: int) -> "MachineConfig":
        return replace(self, num_pes=num_pes)

    def with_scheduling(self, scheduling: str) -> "MachineConfig":
        return replace(self, scheduling=scheduling)

    def with_sync_cost(self, sync_cost: float) -> "MachineConfig":
        return replace(self, sync_cost=sync_cost)

    def contention_factor(self) -> float:
        """Busy-time inflation factor for the configured PE count."""
        return 1.0 + self.memory_contention * max(0, self.num_pes - 1)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_pes} PEs, sync={self.sync_cost}, "
            f"dispatch={self.dispatch_cost}, contention={self.memory_contention}, "
            f"scheduling={self.scheduling}"
        )


#: The configuration used for the headline tables — a small bus-based
#: shared-memory machine with slow synchronization, like the Sequent.
SEQUENT_LIKE = MachineConfig()

#: A zero-overhead machine, used by ablation benches to isolate the cost of
#: each overhead the paper lists.
IDEAL_MACHINE = MachineConfig(
    name="ideal",
    sync_cost=0.0,
    dispatch_cost=0.0,
    traversal_cost=0.0,
    memory_contention=0.0,
)
