"""Backends that actually execute independent iterations.

The cost simulator (:mod:`repro.machine.simulator`) answers *how long would
this take on P processors*; these backends answer *does the parallel
schedule compute the right thing*.  ``ThreadPoolExecutorBackend`` runs the
iterations of a doall on a Python thread pool — on this host (one core, plus
the GIL) that gives no speedup, but it does execute the iterations
concurrently and in a nondeterministic order, which is exactly what the
equivalence tests need to demonstrate that the strip-mined schedule has no
hidden iteration-order dependence.  ``SequentialBackend`` is the reference.
"""

from __future__ import annotations

import concurrent.futures
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence


@dataclass
class SequentialBackend:
    """Run tasks one after another on the calling thread."""

    name: str = "sequential"

    def run(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        return [task() for task in tasks]

    def map_indices(self, func: Callable[[int], object], count: int) -> list[object]:
        return [func(i) for i in range(count)]


@dataclass
class ThreadPoolExecutorBackend:
    """Run tasks on a pool of ``num_workers`` Python threads.

    Results are returned in task order regardless of completion order, and
    the number of distinct worker threads observed is recorded so tests can
    assert the work really was spread across workers.
    """

    num_workers: int = 4
    name: str = "threads"
    threads_observed: set[str] = field(default_factory=set)

    def run(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        self.threads_observed = set()
        lock = threading.Lock()

        def wrap(task: Callable[[], object]) -> object:
            with lock:
                self.threads_observed.add(threading.current_thread().name)
            return task()

        with concurrent.futures.ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            futures = [pool.submit(wrap, task) for task in tasks]
            return [f.result() for f in futures]

    def map_indices(self, func: Callable[[int], object], count: int) -> list[object]:
        return self.run([(lambda i=i: func(i)) for i in range(count)])

    def run_stripmined(
        self, func: Callable[[int], object], count: int
    ) -> list[object]:
        """Execute ``func(0..count-1)`` in groups of ``num_workers``.

        Mirrors the transformed loop's structure: each group of
        ``num_workers`` consecutive iterations is one fork/join step.
        """
        results: list[object] = []
        for start in range(0, count, self.num_workers):
            group = range(start, min(start + self.num_workers, count))
            results.extend(self.run([(lambda i=i: func(i)) for i in group]))
        return results
