"""Schedulers mapping doall iterations onto processing elements.

The paper's transformation uses *static interleaved* scheduling: in each pass
over the particle list, PE ``i`` processes the ``i``-th of the next ``PEs``
nodes.  The results section lists "simple static scheduling is being used" as
the first source of lost speedup, so the ablation benches also provide a
static block scheduler and a dynamic (self-scheduling work queue) scheduler
for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence


class Scheduler(Protocol):
    """Assign a list of task costs to ``num_pes`` processors.

    Returns a list of length ``num_pes``; element ``i`` is the list of task
    indices executed (in order) by PE ``i``.
    """

    name: str

    def assign(self, costs: Sequence[float], num_pes: int) -> list[list[int]]:
        ...  # pragma: no cover


@dataclass
class StaticInterleavedScheduler:
    """PE ``i`` takes iterations ``i``, ``i+PEs``, ``i+2*PEs``, ...

    Within one strip-mined parallel *step* (a group of ``PEs`` consecutive
    iterations) this is exactly the paper's assignment: PE 0 processes ``p``,
    PE 1 processes ``p->next``, and so on.
    """

    name: str = "static-interleaved"

    def assign(self, costs: Sequence[float], num_pes: int) -> list[list[int]]:
        assignment: list[list[int]] = [[] for _ in range(num_pes)]
        for idx in range(len(costs)):
            assignment[idx % num_pes].append(idx)
        return assignment


@dataclass
class StaticBlockScheduler:
    """PE ``i`` takes the ``i``-th contiguous block of iterations."""

    name: str = "static-block"

    def assign(self, costs: Sequence[float], num_pes: int) -> list[list[int]]:
        n = len(costs)
        assignment: list[list[int]] = [[] for _ in range(num_pes)]
        base = n // num_pes
        extra = n % num_pes
        start = 0
        for pe in range(num_pes):
            size = base + (1 if pe < extra else 0)
            assignment[pe] = list(range(start, start + size))
            start += size
        return assignment


@dataclass
class DynamicScheduler:
    """Greedy self-scheduling: each task goes to the least-loaded PE.

    This is the "longest processing time first"-style list scheduler when
    ``sort_by_cost`` is true; with the default (program order) it models a
    simple shared work queue from which idle PEs grab the next iteration.
    """

    name: str = "dynamic"
    sort_by_cost: bool = False

    def assign(self, costs: Sequence[float], num_pes: int) -> list[list[int]]:
        order = list(range(len(costs)))
        if self.sort_by_cost:
            order.sort(key=lambda i: -costs[i])
        loads = [0.0] * num_pes
        assignment: list[list[int]] = [[] for _ in range(num_pes)]
        for idx in order:
            pe = min(range(num_pes), key=lambda j: loads[j])
            assignment[pe].append(idx)
            loads[pe] += costs[idx]
        return assignment


def make_scheduler(name: str) -> Scheduler:
    """Factory used by :class:`~repro.machine.simulator.MachineSimulator`."""
    if name == "static-interleaved":
        return StaticInterleavedScheduler()
    if name == "static-block":
        return StaticBlockScheduler()
    if name == "dynamic":
        return DynamicScheduler()
    if name == "dynamic-lpt":
        return DynamicScheduler(sort_by_cost=True, name="dynamic-lpt")
    raise ValueError(f"unknown scheduler {name!r}")
