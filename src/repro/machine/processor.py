"""Per-processing-element accounting for the machine simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProcessingElement:
    """One simulated processor: accumulates busy/idle/sync time and task counts."""

    index: int
    busy_time: float = 0.0
    idle_time: float = 0.0
    sync_time: float = 0.0
    tasks_executed: int = 0

    def run_task(self, cost: float) -> None:
        self.busy_time += cost
        self.tasks_executed += 1

    def wait(self, duration: float) -> None:
        if duration > 0:
            self.idle_time += duration

    def synchronize(self, duration: float) -> None:
        if duration > 0:
            self.sync_time += duration

    @property
    def total_time(self) -> float:
        return self.busy_time + self.idle_time + self.sync_time

    def utilization(self) -> float:
        total = self.total_time
        return self.busy_time / total if total > 0 else 1.0

    def reset(self) -> None:
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.sync_time = 0.0
        self.tasks_executed = 0

    def describe(self) -> str:
        return (
            f"PE{self.index}: busy={self.busy_time:.1f} idle={self.idle_time:.1f} "
            f"sync={self.sync_time:.1f} tasks={self.tasks_executed} "
            f"util={self.utilization():.2%}"
        )
