"""A simulated shared-memory multiprocessor (the paper's Sequent substitute).

The paper's evaluation ran the transformed Barnes–Hut program on a Sequent
multiprocessor with 4 and 7 processors.  That hardware is unavailable (and
this reproduction runs on a single host core), so the speedup experiment is
driven by an **execution-driven cost simulator**: the real Python force
kernels run and report their work in abstract cost units, and the simulator
replays the strip-mined schedule over a configurable number of processing
elements, charging

* per-PE busy time (the work of the iterations assigned to it),
* idle time caused by static scheduling imbalance (a parallel step ends when
  its slowest PE finishes),
* synchronization cost per parallel step (the paper: "synchronization on a
  Sequent is rather slow"),
* sequential sections (tree build, the FOR1 pointer skip-ahead).

The same package also provides a :class:`~repro.machine.executor.ThreadPoolExecutorBackend`
that actually runs iterations on Python threads — used by the equivalence
tests to show the transformed schedule computes identical physics, not for
timing.

Modules: :mod:`costmodel`, :mod:`processor`, :mod:`scheduler`,
:mod:`simulator`, :mod:`executor`.
"""

from repro.machine.costmodel import MachineConfig, SEQUENT_LIKE, IDEAL_MACHINE
from repro.machine.processor import ProcessingElement
from repro.machine.scheduler import (
    Scheduler,
    StaticInterleavedScheduler,
    StaticBlockScheduler,
    DynamicScheduler,
    make_scheduler,
)
from repro.machine.simulator import (
    ParallelStepResult,
    SimulationTrace,
    MachineSimulator,
)
from repro.machine.executor import ThreadPoolExecutorBackend, SequentialBackend

__all__ = [
    "MachineConfig",
    "SEQUENT_LIKE",
    "IDEAL_MACHINE",
    "ProcessingElement",
    "Scheduler",
    "StaticInterleavedScheduler",
    "StaticBlockScheduler",
    "DynamicScheduler",
    "make_scheduler",
    "ParallelStepResult",
    "SimulationTrace",
    "MachineSimulator",
    "ThreadPoolExecutorBackend",
    "SequentialBackend",
]
