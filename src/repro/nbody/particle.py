"""Particles of the N-body simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nbody.vector import Vec3


@dataclass
class Particle:
    """One body: mass, position, velocity, and the force accumulated on it.

    ``next`` is the link of the one-way particle list — the ``leaves``
    dimension of the octree ADDS declaration.  ``interactions`` counts the
    particle–node interactions of the most recent force computation; the
    machine simulator uses it as the per-iteration work of BHL1.
    """

    ident: int
    mass: float = 1.0
    position: Vec3 = field(default_factory=Vec3)
    velocity: Vec3 = field(default_factory=Vec3)
    force: Vec3 = field(default_factory=Vec3)
    next: "Particle | None" = None
    interactions: int = 0

    def reset_force(self) -> None:
        self.force = Vec3.zero()
        self.interactions = 0

    def kinetic_energy(self) -> float:
        return 0.5 * self.mass * self.velocity.norm_squared()

    def state(self) -> tuple:
        """Immutable physics snapshot used by equivalence tests."""
        return (
            self.ident,
            self.mass,
            self.position.as_tuple(),
            self.velocity.as_tuple(),
            self.force.as_tuple(),
        )

    def copy(self) -> "Particle":
        return Particle(
            ident=self.ident,
            mass=self.mass,
            position=self.position,
            velocity=self.velocity,
            force=self.force,
            next=None,
            interactions=self.interactions,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Particle({self.ident}, m={self.mass:.3g}, pos={self.position})"


def link_particles(particles: list[Particle]) -> Particle | None:
    """Link ``particles`` into the one-way list, returning its head."""
    for i in range(len(particles) - 1):
        particles[i].next = particles[i + 1]
    if particles:
        particles[-1].next = None
        return particles[0]
    return None


def iterate_list(head: Particle | None) -> list[Particle]:
    """Collect the particles reachable from ``head`` along ``next``."""
    result: list[Particle] = []
    seen: set[int] = set()
    p = head
    while p is not None:
        if id(p) in seen:
            raise ValueError("particle list contains a cycle")
        seen.add(id(p))
        result.append(p)
        p = p.next
    return result
