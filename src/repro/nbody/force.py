"""Force computation: the Barnes–Hut approximation and the O(N²) baseline.

``compute_force`` is the recursive descent of the paper's pseudo-code::

    function compute_force (p, node)
    { if p and node are WELL-SEPARATED
      then return force computed using node;
      else return the sum of calling compute_force on subtrees;
    }

"Well separated" is the standard Barnes–Hut opening criterion: a node of box
size ``s`` at distance ``d`` from the particle may be treated as a point mass
when ``s / d < theta``.  Every accepted interaction increments the particle's
``interactions`` counter, which doubles as the work metric consumed by the
machine simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nbody.octree import OctreeNode
from repro.nbody.particle import Particle
from repro.nbody.vector import Vec3


#: gravitational constant (natural units)
GRAVITY = 1.0
#: Plummer softening to avoid singular forces at tiny separations
SOFTENING = 1.0e-2


@dataclass
class ForceAccumulator:
    """Mutable force sum plus the interaction count that produced it."""

    fx: float = 0.0
    fy: float = 0.0
    fz: float = 0.0
    interactions: int = 0

    def add_point_mass(
        self, particle: Particle, mass: float, position: Vec3, gravity: float = GRAVITY
    ) -> None:
        dx = position.x - particle.position.x
        dy = position.y - particle.position.y
        dz = position.z - particle.position.z
        dist_sq = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING
        if dist_sq <= 0.0:
            return
        inv_dist = dist_sq ** -0.5
        magnitude = gravity * particle.mass * mass * inv_dist * inv_dist * inv_dist
        self.fx += magnitude * dx
        self.fy += magnitude * dy
        self.fz += magnitude * dz
        self.interactions += 1

    def as_vec(self) -> Vec3:
        return Vec3(self.fx, self.fy, self.fz)


def well_separated(particle: Particle, node: OctreeNode, theta: float) -> bool:
    """The Barnes–Hut opening criterion: ``s / d < theta``."""
    distance = particle.position.distance_to(node.center_of_mass)
    if distance <= 0.0:
        return False
    return (2.0 * node.half_size) / distance < theta


def compute_force(
    particle: Particle,
    node: OctreeNode | None,
    theta: float = 0.5,
    accumulator: ForceAccumulator | None = None,
    gravity: float = GRAVITY,
) -> ForceAccumulator:
    """Accumulate the force on ``particle`` from the subtree rooted at ``node``."""
    acc = accumulator if accumulator is not None else ForceAccumulator()
    if node is None or node.mass == 0.0:
        return acc
    if node.particle is particle:
        return acc  # a particle exerts no force on itself
    if node.particle is not None:
        acc.add_point_mass(particle, node.particle.mass, node.particle.position, gravity)
        return acc
    if well_separated(particle, node, theta):
        acc.add_point_mass(particle, node.mass, node.center_of_mass, gravity)
        return acc
    for child in node.subtrees:
        if child is not None:
            compute_force(particle, child, theta, acc, gravity)
    return acc


def compute_force_on_particle(
    particle: Particle, root: OctreeNode | None, theta: float = 0.5, gravity: float = GRAVITY
) -> int:
    """BHL1's body: store the accumulated force on the particle.

    Returns the number of interactions (the iteration's work).
    """
    acc = compute_force(particle, root, theta, gravity=gravity)
    particle.force = acc.as_vec()
    particle.interactions = acc.interactions
    return acc.interactions


def direct_forces(particles: list[Particle], gravity: float = GRAVITY) -> int:
    """The O(N²) all-pairs force computation (the paper's "obvious implementation").

    Returns the total number of pairwise interactions (N·(N−1)).
    """
    interactions = 0
    for p in particles:
        acc = ForceAccumulator()
        for q in particles:
            if q is p:
                continue
            acc.add_point_mass(p, q.mass, q.position, gravity)
        p.force = acc.as_vec()
        p.interactions = acc.interactions
        interactions += acc.interactions
    return interactions
