"""Bottom-up octree construction, as described in section 4.3.2.

The paper's ``build_tree`` walks the particle list and, for each particle,

1. ``expand_box`` — grows the tree upward (adding new roots) until the root's
   box is large enough to contain the particle,
2. ``insert_particle`` — descends to the particle's octant, subdividing an
   occupied octant until the two competing particles fall into different
   octants.

During the subdivision there is a short period in which the displaced
particle is referenced both from its old leaf and from the new subtree — the
temporary abstraction break the paper's validation analysis tolerates.  The
Python implementation performs the same steps; the toy-language version in
:mod:`repro.nbody.toy_program` is the one the static analysis validates.

``build_tree`` finishes with ``compute_mass_distribution`` (the point-mass
pass) and returns the root together with a :class:`BuildStats` whose ``work``
field is the cost charged to the *sequential* section of a simulated time
step — the transformation of section 4.3.3 does not parallelize the build.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nbody.octree import OctreeNode
from repro.nbody.particle import Particle
from repro.nbody.vector import Vec3


@dataclass
class BuildStats:
    """Work accounting of one tree construction."""

    expansions: int = 0
    insert_descents: int = 0
    subdivisions: int = 0
    mass_pass_nodes: int = 0

    @property
    def work(self) -> float:
        """Total build work in the simulator's abstract units.

        One unit per insertion descent level and per mass-pass node, with the
        (rare) box expansions and subdivisions charged a little more because
        they allocate.
        """
        return (
            2.0 * self.expansions
            + 1.0 * self.insert_descents
            + 2.0 * self.subdivisions
            + 1.0 * self.mass_pass_nodes
        )


def expand_box(particle: Particle, root: OctreeNode | None, stats: BuildStats | None = None) -> OctreeNode:
    """Grow the tree upward until its box contains ``particle``.

    When ``root`` is None a unit box centred on the particle is created.
    Otherwise new roots of twice the size are stacked on top, each holding
    the old root as the child octant nearer the particle, exactly as the
    paper sketches ("extends the tree upward, adding nodes until the tree
    represents a space large enough to include p").
    """
    if root is None:
        return OctreeNode(center=particle.position, half_size=1.0)
    while not root.contains(particle.position):
        if stats is not None:
            stats.expansions += 1
        # choose the direction of growth so the old root ends up in the
        # octant away from the particle
        shift = root.half_size
        cx = root.center.x + (shift if particle.position.x >= root.center.x else -shift)
        cy = root.center.y + (shift if particle.position.y >= root.center.y else -shift)
        cz = root.center.z + (shift if particle.position.z >= root.center.z else -shift)
        new_root = OctreeNode(center=Vec3(cx, cy, cz), half_size=root.half_size * 2.0)
        new_root.subtrees[new_root.octant_of(root.center)] = root
        new_root.mass = root.mass
        new_root.center_of_mass = root.center_of_mass
        root = new_root
    return root


def insert_particle(
    particle: Particle,
    root: OctreeNode,
    stats: BuildStats | None = None,
    max_depth: int = 512,
) -> None:
    """Insert ``particle`` below ``root`` (whose box must contain it)."""
    node = root
    depth = 0
    while True:
        if stats is not None:
            stats.insert_descents += 1
        if node.is_empty:
            node.particle = particle
            return
        if node.particle is not None:
            # an occupied leaf: subdivide until the two particles separate
            competitor = node.particle
            node.particle = None
            if stats is not None:
                stats.subdivisions += 1
            _push_down(node, competitor)
            continue  # re-examine the (now interior) node for our particle
        index = node.octant_of(particle.position)
        child = node.subtrees[index]
        if child is None:
            center = node.octant_center(index)
            # subdivision can only separate particles while the octant
            # centers still move: once the child's center rounds to the
            # parent's (the quarter-size underflowed, or fell below one ulp
            # of the center coordinates), the particles are coincident at
            # floating-point resolution
            if center == node.center:
                raise RuntimeError(
                    "octree subdivision cannot separate particles that "
                    "coincide at floating-point resolution"
                )
            child = OctreeNode(center=center, half_size=node.half_size / 2.0)
            node.subtrees[index] = child
        node = child
        # depth counts actual tree levels, not loop iterations: a subdivision
        # re-examines the same node via `continue` and must not be charged a
        # level, or near-coincident particles trip the cap at half the
        # advertised depth
        depth += 1
        if depth > max_depth:
            raise RuntimeError(
                "octree insertion exceeded the maximum depth; are two particles "
                "at exactly the same position?"
            )


def _push_down(node: OctreeNode, particle: Particle) -> None:
    """Move ``particle`` from ``node`` into the appropriate child octant."""
    index = node.octant_of(particle.position)
    child = node.subtrees[index]
    if child is None:
        child = OctreeNode(center=node.octant_center(index), half_size=node.half_size / 2.0)
        node.subtrees[index] = child
    if child.is_empty:
        child.particle = particle
    else:  # pragma: no cover - only reachable with pathological coordinates
        insert_particle(particle, child)


def compute_mass_distribution(node: OctreeNode, stats: BuildStats | None = None) -> tuple[float, Vec3]:
    """Fill in mass and center of mass bottom-up; returns (mass, com)."""
    if stats is not None:
        stats.mass_pass_nodes += 1
    if node.particle is not None:
        node.mass = node.particle.mass
        node.center_of_mass = node.particle.position
        return node.mass, node.center_of_mass
    total = 0.0
    weighted = Vec3.zero()
    for child in node.subtrees:
        if child is None:
            continue
        mass, com = compute_mass_distribution(child, stats)
        total += mass
        weighted = weighted + com * mass
    node.mass = total
    node.center_of_mass = weighted / total if total > 0 else node.center
    return node.mass, node.center_of_mass


def build_tree(particles: list[Particle] | Particle | None) -> tuple[OctreeNode | None, BuildStats]:
    """Build the Barnes–Hut octree over ``particles``.

    ``particles`` may be a Python list or the head of the linked particle
    list (the paper's calling convention); the traversal below mirrors the
    paper's ``build_tree`` loop.
    """
    stats = BuildStats()
    if particles is None:
        return None, stats
    if isinstance(particles, Particle):
        plist: list[Particle] = []
        p: Particle | None = particles
        while p is not None:
            plist.append(p)
            p = p.next
    else:
        plist = list(particles)
    if not plist:
        return None, stats

    root: OctreeNode | None = None
    for particle in plist:
        root = expand_box(particle, root, stats)
        insert_particle(particle, root, stats)
    assert root is not None
    compute_mass_distribution(root, stats)
    return root, stats
