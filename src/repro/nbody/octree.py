"""The octree data structure of the Barnes–Hut algorithm (Figure 5).

Each node owns a cubic region of space (``center`` / ``half_size``).  An
interior node has up to eight children — one per octant — and carries the
total mass and center of mass of the particles below it (the point-mass
approximation).  A leaf node holds exactly one particle.  The particles are
additionally threaded onto a one-way list, which is the second ADDS
dimension (``leaves``) of the declaration in section 4.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nbody.particle import Particle
from repro.nbody.vector import Vec3


@dataclass
class OctreeNode:
    """One node of the Barnes–Hut octree."""

    center: Vec3
    half_size: float
    #: the eight children, indexed by octant (the ``subtrees[8]`` field)
    subtrees: list["OctreeNode | None"] = field(default_factory=lambda: [None] * 8)
    #: the particle stored here (leaf nodes only)
    particle: Particle | None = None
    #: aggregated mass and center of mass of everything below this node
    mass: float = 0.0
    center_of_mass: Vec3 = field(default_factory=Vec3)

    # -- structural queries ----------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return all(child is None for child in self.subtrees)

    @property
    def is_empty(self) -> bool:
        return self.is_leaf and self.particle is None

    def children(self) -> list["OctreeNode"]:
        return [c for c in self.subtrees if c is not None]

    def octant_of(self, position: Vec3) -> int:
        """Index (0..7) of the octant of ``position`` within this node's box."""
        index = 0
        if position.x >= self.center.x:
            index |= 1
        if position.y >= self.center.y:
            index |= 2
        if position.z >= self.center.z:
            index |= 4
        return index

    def octant_center(self, index: int) -> Vec3:
        """Center of the ``index``-th child octant."""
        quarter = self.half_size / 2.0
        dx = quarter if (index & 1) else -quarter
        dy = quarter if (index & 2) else -quarter
        dz = quarter if (index & 4) else -quarter
        return Vec3(self.center.x + dx, self.center.y + dy, self.center.z + dz)

    def contains(self, position: Vec3) -> bool:
        # A small relative tolerance absorbs floating-point rounding when a
        # particle sits exactly on an octant boundary (common for the very
        # first particle, whose coordinates seed every ancestor's center).
        bound = self.half_size * (1.0 + 1e-9) + 1e-12
        return (
            abs(position.x - self.center.x) <= bound
            and abs(position.y - self.center.y) <= bound
            and abs(position.z - self.center.z) <= bound
        )

    # -- traversals -----------------------------------------------------------------
    def walk(self):
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.subtrees:
            if child is not None:
                yield from child.walk()

    def leaves(self) -> list["OctreeNode"]:
        return [node for node in self.walk() if node.particle is not None]

    def depth(self) -> int:
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    def count_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    def count_particles(self) -> int:
        return sum(1 for node in self.walk() if node.particle is not None)

    def stats(self) -> "OctreeStats":
        nodes = list(self.walk())
        leaves = [n for n in nodes if n.particle is not None]
        interior = [n for n in nodes if n.particle is None and not n.is_empty]
        return OctreeStats(
            nodes=len(nodes),
            leaves=len(leaves),
            interior=len(interior),
            depth=self.depth(),
            total_mass=self.mass,
        )

    # -- invariants used by tests -----------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Structural invariants of a well-formed Barnes–Hut octree.

        Returns a list of violated-invariant descriptions (empty = OK):

        * a node with a particle has no children (leaves are particles),
        * every particle lies inside its leaf's box,
        * every child's box nests inside its parent's box,
        * each node appears under at most one parent (tree-ness of ``down``),
        * interior mass equals the sum of the children's masses.
        """
        problems: list[str] = []
        seen: dict[int, int] = {}
        for node in self.walk():
            if node.particle is not None and node.children():
                problems.append("leaf with particle also has children")
            if node.particle is not None and not node.contains(node.particle.position):
                problems.append(
                    f"particle {node.particle.ident} lies outside its leaf box"
                )
            for child in node.children():
                seen[id(child)] = seen.get(id(child), 0) + 1
                if child.half_size > node.half_size / 2.0 + 1e-12:
                    problems.append("child box larger than half the parent box")
                if not node.contains(child.center):
                    problems.append("child center outside parent box")
            if not node.is_leaf and node.mass > 0:
                child_mass = sum(c.mass for c in node.children())
                if abs(child_mass - node.mass) > 1e-6 * max(1.0, node.mass):
                    problems.append(
                        f"interior mass {node.mass} != sum of child masses {child_mass}"
                    )
        for count in seen.values():
            if count > 1:
                problems.append("a node is referenced by more than one parent")
        return problems


@dataclass(frozen=True)
class OctreeStats:
    """Summary statistics of one octree."""

    nodes: int
    leaves: int
    interior: int
    depth: int
    total_mass: float

    def describe(self) -> str:
        return (
            f"octree: {self.nodes} nodes ({self.leaves} leaves, {self.interior} interior), "
            f"depth {self.depth}, total mass {self.total_mass:.4g}"
        )
