"""Barnes–Hut N-body simulation — the scientific application of section 4.

The package implements the original (pointer-based, recursion-friendly)
Barnes–Hut algorithm exactly as the paper describes it:

* an **octree** whose interior nodes hold point-mass approximations and whose
  leaves — the particles — are linked into a one-way list (the ``leaves``
  ADDS dimension, Figure 5),
* a **bottom-up tree build** per time step: ``expand_box`` grows the root box
  to cover a particle, ``insert_particle`` descends to the particle's empty
  quadrant, subdividing when two particles collide (section 4.3.2),
* the two loops **BHL1** (force computation via ``compute_force`` with the
  well-separated opening criterion) and **BHL2** (velocity/position update),
* a direct **O(N²)** force computation as the accuracy/complexity baseline,
* sequential and **strip-mined parallel** drivers; the parallel driver uses
  the simulated multiprocessor of :mod:`repro.machine` for timing and a
  thread/sequential backend for the actual numerics,
* the corresponding **toy-language program** carrying the ``Octree`` ADDS
  declaration, which the analysis/transformation experiments operate on.
"""

from repro.nbody.vector import Vec3
from repro.nbody.particle import Particle
from repro.nbody.octree import OctreeNode, OctreeStats
from repro.nbody.build import build_tree, expand_box, insert_particle, compute_mass_distribution
from repro.nbody.force import (
    ForceAccumulator,
    compute_force,
    compute_force_on_particle,
    direct_forces,
    GRAVITY,
    SOFTENING,
)
from repro.nbody.integrate import compute_new_vel_pos, advance
from repro.nbody.datasets import (
    uniform_cube,
    plummer_sphere,
    two_clusters,
    make_particles,
)
from repro.nbody.simulation import (
    SimulationConfig,
    StepStats,
    SequentialRunResult,
    BarnesHutSimulation,
)
from repro.nbody.parallel import (
    ParallelRunResult,
    StripMinedParallelSimulation,
)
from repro.nbody.energy import kinetic_energy, potential_energy, total_energy, momentum
from repro.nbody.toy_program import (
    barnes_hut_toy_source,
    barnes_hut_toy_program,
    BHL1_FUNCTION,
    BHL2_FUNCTION,
)

__all__ = [
    "Vec3",
    "Particle",
    "OctreeNode",
    "OctreeStats",
    "build_tree",
    "expand_box",
    "insert_particle",
    "compute_mass_distribution",
    "ForceAccumulator",
    "compute_force",
    "compute_force_on_particle",
    "direct_forces",
    "GRAVITY",
    "SOFTENING",
    "compute_new_vel_pos",
    "advance",
    "uniform_cube",
    "plummer_sphere",
    "two_clusters",
    "make_particles",
    "SimulationConfig",
    "StepStats",
    "SequentialRunResult",
    "BarnesHutSimulation",
    "ParallelRunResult",
    "StripMinedParallelSimulation",
    "kinetic_energy",
    "potential_energy",
    "total_energy",
    "momentum",
    "barnes_hut_toy_source",
    "barnes_hut_toy_program",
    "BHL1_FUNCTION",
    "BHL2_FUNCTION",
]
