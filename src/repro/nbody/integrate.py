"""Velocity/position update — the body of BHL2.

The paper's ``compute_new_vel_pos`` "computes the change in p's velocity and
position" from the freshly computed force; we use the simple symplectic Euler
step (update velocity from the force, then position from the new velocity),
which is what tree codes of that era typically did between tree rebuilds.
"""

from __future__ import annotations

from repro.nbody.particle import Particle
from repro.nbody.vector import Vec3


#: work units charged per particle for the BHL2 update (a handful of flops,
#: small compared to a force interaction but not free)
UPDATE_WORK_UNITS = 4.0


def compute_new_vel_pos(particle: Particle, dt: float) -> float:
    """Advance one particle by ``dt``; returns the work in simulator units."""
    acceleration = particle.force / particle.mass
    particle.velocity = particle.velocity + acceleration * dt
    particle.position = particle.position + particle.velocity * dt
    return UPDATE_WORK_UNITS


def advance(particles: list[Particle], dt: float) -> float:
    """Advance every particle (the sequential BHL2); returns total work."""
    work = 0.0
    for p in particles:
        work += compute_new_vel_pos(p, dt)
    return work
