"""The Barnes–Hut program written in the toy language with an ADDS octree.

This is the program the *analysis and transformation* experiments operate on
(DESIGN.md experiments E4, E6, E7): the ``Octree`` type carries the ADDS
declaration of section 4.3.1, ``build_tree``/``expand_box``/``insert_particle``
follow section 4.3.2, and ``simulate_step`` contains the two loops BHL1 and
BHL2 that the paper parallelizes.  The program is also executable by the
interpreter (a simplified scalar force is used so results stay cheap to
compute and order-independent), which lets the end-to-end tests run the
original and the strip-mined version and compare heaps.

The heavy numeric experiments use the native implementation in
:mod:`repro.nbody.simulation` / :mod:`repro.nbody.parallel`; this module is
about what the *compiler* sees.
"""

from __future__ import annotations

from functools import lru_cache

from repro.adds.library import OCTREE_SRC
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program


#: names of the functions holding the two parallelizable loops
BHL1_FUNCTION = "bh_force_pass"
BHL2_FUNCTION = "bh_update_pass"


_TOY_BODY = """
/* Return the octant index (0..7) of position (px,py,pz) inside node n. */
function octant(n, px, py, pz)
{ var idx;
  idx = 0;
  if px >= n->x then idx = idx + 1;
  if py >= n->y then idx = idx + 2;
  if pz >= n->z then idx = idx + 4;
  return idx;
}

/* Does node n's box contain position (px,py,pz)? */
function contains(n, px, py, pz)
{ if abs(px - n->x) > n->half then return false;
  if abs(py - n->y) > n->half then return false;
  if abs(pz - n->z) > n->half then return false;
  return true;
}

/* Allocate an interior node centred at (cx,cy,cz) with half-size h. */
function make_box(cx, cy, cz, h)
{ var n;
  n = new Octree;
  n->x = cx;
  n->y = cy;
  n->z = cz;
  n->half = h;
  n->node_type = false;
  return n;
}

/* Grow the tree upward until its box contains particle p (section 4.3.2). */
function expand_box(p, root)
{ var bigger; var cx; var cy; var cz; var idx;
  if root == NULL then
  { bigger = make_box(p->x, p->y, p->z, 1.0);
    return bigger;
  }
  while not contains(root, p->x, p->y, p->z)
  { cx = root->x - root->half;
    if p->x >= root->x then cx = root->x + root->half;
    cy = root->y - root->half;
    if p->y >= root->y then cy = root->y + root->half;
    cz = root->z - root->half;
    if p->z >= root->z then cz = root->z + root->half;
    bigger = make_box(cx, cy, cz, root->half * 2.0);
    idx = octant(bigger, root->x, root->y, root->z);
    bigger->subtrees[idx] = root;
    root = bigger;
  }
  return root;
}

/* Centre of the idx-th child octant of node n. */
function child_center_x(n, idx)
{ if idx % 2 >= 1 then return n->x + n->half / 2.0;
  return n->x - n->half / 2.0;
}
function child_center_y(n, idx)
{ if idx % 4 >= 2 then return n->y + n->half / 2.0;
  return n->y - n->half / 2.0;
}
function child_center_z(n, idx)
{ if idx >= 4 then return n->z + n->half / 2.0;
  return n->z - n->half / 2.0;
}

/* Insert particle p below root, subdividing occupied octants.
   Stores are ordered so the uniquely-forward property of `subtrees` is never
   broken even temporarily: the parent's slot is overwritten *before* the
   displaced particle is re-attached (compare the paper's section 4.3.2,
   where the competitor is attached first and the sharing repaired later). */
procedure insert_particle(p, root)
{ var n; var idx; var child; var sub; var cidx;
  n = root;
  while true
  { idx = octant(n, p->x, p->y, p->z);
    child = n->subtrees[idx];
    if child == NULL then
    { n->subtrees[idx] = p;
      return;
    }
    if child->node_type then
    { /* the octant holds another particle: subdivide it */
      sub = make_box(child_center_x(n, idx), child_center_y(n, idx),
                     child_center_z(n, idx), n->half / 2.0);
      n->subtrees[idx] = sub;
      cidx = octant(sub, child->x, child->y, child->z);
      sub->subtrees[cidx] = child;
      n = sub;
    }
    else
    { n = child;
    }
  }
}

/* Post-order pass filling in the point-mass approximation of interior nodes. */
function summarize_mass(node)
{ var i; var child; var m; var total; var wx; var wy; var wz;
  if node == NULL then return 0.0;
  if node->node_type then return node->mass;
  total = 0.0;
  wx = 0.0;
  wy = 0.0;
  wz = 0.0;
  i = 0;
  while i < 8
  { child = node->subtrees[i];
    if child <> NULL then
    { m = summarize_mass(child);
      total = total + m;
      wx = wx + child->x * m;
      wy = wy + child->y * m;
      wz = wz + child->z * m;
    }
    i = i + 1;
  }
  node->mass = total;
  if total > 0.0 then
  { node->x = wx / total;
    node->y = wy / total;
    node->z = wz / total;
  }
  return total;
}

/* Build the octree over the particle list (the paper's build_tree). */
function build_tree(particles)
{ var root; var p;
  root = NULL;
  p = particles;
  while p <> NULL
  { root = expand_box(p, root);
    insert_particle(p, root);
    p = p->next;
  }
  summarize_mass(root);
  return root;
}

/* Recursive force descent (the paper's compute_force).  Returns the scalar
   magnitude sum; the octree reachable from `node` is used read-only. */
function compute_force(p, node, theta)
{ var dx; var dy; var dz; var dist; var total; var i; var child;
  if node == NULL then return 0.0;
  if node->mass <= 0.0 then return 0.0;
  dx = node->x - p->x;
  dy = node->y - p->y;
  dz = node->z - p->z;
  dist = sqrt(dx * dx + dy * dy + dz * dz + 0.0001);
  if node->node_type then
  { if dist < 0.02 then return 0.0;
    return p->mass * node->mass / (dist * dist);
  }
  if node->half * 2.0 / dist < theta then
  { return p->mass * node->mass / (dist * dist);
  }
  total = 0.0;
  i = 0;
  while i < 8
  { child = node->subtrees[i];
    if child <> NULL then
    { total = total + compute_force(p, child, theta);
    }
    i = i + 1;
  }
  return total;
}

/* BHL2's body: update one particle's velocity and position. */
procedure compute_new_vel_pos(p, dt)
{ var accel;
  accel = p->force / p->mass;
  p->vx = p->vx + accel * dt;
  p->x = p->x + p->vx * dt;
}

/* BHL1: the force pass over the particle list. */
procedure bh_force_pass(particles, root, theta)
{ var p;
  p = particles;
  while p <> NULL
  { p->force = compute_force(p, root, theta);
    p = p->next;
  }
}

/* BHL2: the velocity/position pass over the particle list. */
procedure bh_update_pass(particles, dt)
{ var p;
  p = particles;
  while p <> NULL
  { compute_new_vel_pos(p, dt);
    p = p->next;
  }
}

/* Disconnect an old tree's interior nodes from the particles so the next
   time step's rebuild starts from a clean shape (the C program would free
   these nodes; the toy language has no `free`, so we just unlink them). */
procedure detach_tree(node)
{ var i; var child;
  if node == NULL then return;
  if node->node_type then return;
  i = 0;
  while i < 8
  { child = node->subtrees[i];
    if child <> NULL then
    { if not child->node_type then detach_tree(child);
      node->subtrees[i] = NULL;
    }
    i = i + 1;
  }
}

/* One time step: rebuild the tree, then run BHL1 and BHL2. */
procedure simulate_step(particles, theta, dt)
{ var root;
  root = build_tree(particles);
  bh_force_pass(particles, root, theta);
  bh_update_pass(particles, dt);
  detach_tree(root);
}

/* Build a deterministic pseudo-random particle list of length n. */
function make_particles(n)
{ var head; var p; var i; var seed;
  head = NULL;
  i = 0;
  seed = 12345;
  while i < n
  { p = new Octree;
    p->node_type = true;
    p->mass = 1.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    p->x = (seed % 1000) / 500.0 - 1.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    p->y = (seed % 1000) / 500.0 - 1.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    p->z = (seed % 1000) / 500.0 - 1.0;
    p->next = head;
    head = p;
    i = i + 1;
  }
  return head;
}

/* Run `steps` time steps over n particles; returns the particle list head. */
function run_simulation(n, steps, theta, dt)
{ var particles; var s;
  particles = make_particles(n);
  s = 0;
  while s < steps
  { simulate_step(particles, theta, dt);
    s = s + 1;
  }
  return particles;
}

function main()
{ var particles;
  particles = run_simulation(16, 2, 0.5, 0.01);
  return particles;
}
"""


def barnes_hut_toy_source() -> str:
    """The full toy-language source: the ADDS octree declaration plus the program."""
    return OCTREE_SRC + _TOY_BODY


@lru_cache(maxsize=None)
def barnes_hut_toy_program() -> Program:
    """Parse (and cache) the toy Barnes–Hut program."""
    return parse_program(barnes_hut_toy_source())
