"""The strip-mined parallel Barnes–Hut driver (the paper's "par" rows).

The transformed program of section 4.3.3 processes the particle list in
groups of ``PEs`` consecutive particles: one parallel step runs
``_BHL1_iteration`` on each PE, then the sequential FOR1 loop skips the list
pointer ahead by ``PEs`` nodes, and the enclosing ``while`` repeats.  BHL2 is
transformed identically.  The tree build stays sequential.

This driver executes exactly that schedule:

* the **numerics** run through a pluggable backend — sequential by default,
  or a Python thread pool (to demonstrate order-independence); physics
  results are bit-identical to the sequential driver either way, which the
  equivalence tests assert;
* the **timing** is produced by :class:`repro.machine.simulator.MachineSimulator`,
  charging per-particle force work (interaction counts) to the PE that the
  strip-mined schedule assigns it to, one barrier per parallel step, the
  sequential FOR1 pointer advance, and the sequential tree build.

The result therefore reproduces the *structure* of the paper's measurement:
near-linear speedup eroded by static-scheduling imbalance, slow
synchronization, unexploited subtree parallelism, and unoptimized granularity
— the four losses the paper lists under its results table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.costmodel import MachineConfig, SEQUENT_LIKE
from repro.machine.executor import SequentialBackend, ThreadPoolExecutorBackend
from repro.machine.simulator import MachineSimulator, SimulationTrace
from repro.nbody.force import compute_force_on_particle
from repro.nbody.integrate import UPDATE_WORK_UNITS, compute_new_vel_pos
from repro.nbody.particle import Particle, link_particles
from repro.nbody.simulation import BarnesHutSimulation, SimulationConfig, StepStats


@dataclass
class ParallelRunResult:
    """Result of a simulated parallel run."""

    config: SimulationConfig
    machine: MachineConfig
    trace: SimulationTrace
    steps: list[StepStats] = field(default_factory=list)
    final_states: list[tuple] = field(default_factory=list)
    #: number of distinct worker threads observed when the thread backend is used
    threads_observed: int = 0

    @property
    def elapsed(self) -> float:
        return self.trace.elapsed

    def speedup_against(self, sequential_elapsed: float) -> float:
        return self.trace.speedup_against(sequential_elapsed)


class StripMinedParallelSimulation:
    """Run the transformed Barnes–Hut program on the simulated machine."""

    def __init__(
        self,
        particles: list[Particle],
        config: SimulationConfig,
        machine: MachineConfig = SEQUENT_LIKE,
        use_threads: bool = False,
        exploit_subtree_parallelism: bool = False,
    ):
        self.particles = particles
        self.config = config
        self.machine = machine
        self.simulator = MachineSimulator(machine)
        self.head: Particle | None = link_particles(particles)
        self.sequential = BarnesHutSimulation(particles, config)
        self.backend = (
            ThreadPoolExecutorBackend(num_workers=machine.num_pes)
            if use_threads
            else SequentialBackend()
        )
        #: ablation switch — when True, the per-particle force work is divided
        #: across the node's subtrees as if the independent subtree
        #: computations inside compute_force were also run in parallel
        #: (the paper's loss (2): "the parallelism inherent in the independent
        #: subtree computations ... is not yet being exploited")
        self.exploit_subtree_parallelism = exploit_subtree_parallelism
        self._threads_seen: set[str] = set()

    # -- phases ------------------------------------------------------------------
    def _force_phase(self, stats: StepStats, trace: SimulationTrace) -> None:
        """BHL1, strip-mined by the number of processors."""
        pes = self.machine.num_pes
        particles = self.particles
        n = len(particles)
        root = self.sequential.root
        theta = self.config.theta
        gravity = self.config.gravity

        costs: list[float] = [0.0] * n

        def run_one(index: int) -> None:
            p = particles[index]
            interactions = compute_force_on_particle(p, root, theta, gravity)
            costs[index] = float(interactions)

        # execute groups of PEs consecutive iterations (one parallel step each)
        for start in range(0, n, pes):
            group = list(range(start, min(start + pes, n)))
            if isinstance(self.backend, ThreadPoolExecutorBackend):
                self.backend.run([(lambda i=i: run_one(i)) for i in group])
                self._threads_seen |= self.backend.threads_observed
            else:
                for i in group:
                    run_one(i)

        stats.per_particle_force_work = list(costs)
        stats.force_work = sum(costs)
        stats.interactions = int(sum(costs))
        timed_costs = (
            [c / max(1, _mean_subtree_fanout()) for c in costs]
            if self.exploit_subtree_parallelism
            else costs
        )
        self.simulator.simulate_stripmined_pass(timed_costs, trace=trace)

    def _update_phase(self, stats: StepStats, trace: SimulationTrace) -> None:
        """BHL2, strip-mined by the number of processors."""
        pes = self.machine.num_pes
        particles = self.particles
        n = len(particles)
        dt = self.config.dt
        costs: list[float] = [0.0] * n

        def run_one(index: int) -> None:
            costs[index] = compute_new_vel_pos(particles[index], dt)

        for start in range(0, n, pes):
            group = list(range(start, min(start + pes, n)))
            if isinstance(self.backend, ThreadPoolExecutorBackend):
                self.backend.run([(lambda i=i: run_one(i)) for i in group])
                self._threads_seen |= self.backend.threads_observed
            else:
                for i in group:
                    run_one(i)

        stats.per_particle_update_work = list(costs)
        stats.update_work = sum(costs)
        self.simulator.simulate_stripmined_pass(costs, trace=trace)

    def step(self, index: int, trace: SimulationTrace) -> StepStats:
        stats = StepStats(step=index)
        build_stats = self.sequential.build_phase()
        stats.build_work = build_stats.work
        trace.add_sequential(build_stats.work)  # the build is not parallelized
        self._force_phase(stats, trace)
        self._update_phase(stats, trace)
        return stats

    # -- whole runs -------------------------------------------------------------------
    def run(self) -> ParallelRunResult:
        trace = SimulationTrace(config=self.machine)
        result = ParallelRunResult(config=self.config, machine=self.machine, trace=trace)
        for i in range(self.config.steps):
            result.steps.append(self.step(i, trace))
        result.final_states = [p.state() for p in self.particles]
        result.threads_observed = len(self._threads_seen)
        return result


def _mean_subtree_fanout() -> float:
    """Average number of independent subtree computations inside compute_force.

    Used only by the subtree-parallelism ablation: an opened interior node
    recurses into its (up to eight, typically ~4 occupied) children, which
    could be evaluated concurrently.  We use a conservative factor of 2.0 —
    exploiting that parallelism would roughly halve the critical path of a
    single force computation.
    """
    return 2.0
