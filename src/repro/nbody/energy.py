"""Physics diagnostics: energies and momentum.

Used by tests to check that the simulation behaves like gravity (energy is
approximately conserved over short runs, momentum is conserved by the
pairwise-symmetric direct solver) and that the Barnes–Hut approximation stays
close to the O(N²) reference.
"""

from __future__ import annotations

import math

from repro.nbody.force import GRAVITY, SOFTENING
from repro.nbody.particle import Particle
from repro.nbody.vector import Vec3


def kinetic_energy(particles: list[Particle]) -> float:
    return sum(p.kinetic_energy() for p in particles)


def potential_energy(particles: list[Particle], gravity: float = GRAVITY) -> float:
    """Pairwise softened gravitational potential energy."""
    total = 0.0
    n = len(particles)
    for i in range(n):
        pi = particles[i]
        for j in range(i + 1, n):
            pj = particles[j]
            dist = math.sqrt(
                (pi.position.x - pj.position.x) ** 2
                + (pi.position.y - pj.position.y) ** 2
                + (pi.position.z - pj.position.z) ** 2
                + SOFTENING * SOFTENING
            )
            total -= gravity * pi.mass * pj.mass / dist
    return total


def total_energy(particles: list[Particle], gravity: float = GRAVITY) -> float:
    return kinetic_energy(particles) + potential_energy(particles, gravity)


def momentum(particles: list[Particle]) -> Vec3:
    total = Vec3.zero()
    for p in particles:
        total = total + p.velocity * p.mass
    return total


def center_of_mass(particles: list[Particle]) -> Vec3:
    total_mass = sum(p.mass for p in particles)
    weighted = Vec3.zero()
    for p in particles:
        weighted = weighted + p.position * p.mass
    return weighted / total_mass if total_mass else Vec3.zero()
