"""A minimal 3-vector used by the pointer-based Barnes–Hut code.

The octree code is deliberately object/pointer based (that is the point of
the paper), so positions and velocities are small value objects rather than
rows of a NumPy array.  The handful of operations needed by the force and
integration kernels are implemented directly; everything is plain Python
floats to keep per-interaction cost predictable for the machine simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-component vector."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    # -- geometry -------------------------------------------------------------
    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def norm_squared(self) -> float:
        return self.x * self.x + self.y * self.y + self.z * self.z

    def norm(self) -> float:
        return math.sqrt(self.norm_squared())

    def distance_to(self, other: "Vec3") -> float:
        dx = self.x - other.x
        dy = self.y - other.y
        dz = self.z - other.z
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def is_close(self, other: "Vec3", tol: float = 1e-9) -> bool:
        return (
            abs(self.x - other.x) <= tol
            and abs(self.y - other.y) <= tol
            and abs(self.z - other.z) <= tol
        )

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    def __str__(self) -> str:
        return f"({self.x:.6g}, {self.y:.6g}, {self.z:.6g})"


ZERO = Vec3()
