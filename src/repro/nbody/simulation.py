"""Sequential Barnes–Hut driver — the paper's baseline program.

Each time step executes exactly the structure of the paper's pseudo-code::

    root = build_tree(particles);
    while p <> NULL { p->force = compute_force(p, root); p = p->next; }   /* BHL1 */
    while p <> NULL { compute_new_vel_pos(p);           p = p->next; }   /* BHL2 */

and records the per-phase work in the abstract units the machine simulator
consumes (one unit per particle–node interaction, plus the tree-build and
update costs).  :class:`BarnesHutSimulation` is the "seq" row of the paper's
results table; :mod:`repro.nbody.parallel` reuses its phase structure for the
"par" rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nbody.build import BuildStats, build_tree
from repro.nbody.force import compute_force_on_particle, direct_forces
from repro.nbody.integrate import UPDATE_WORK_UNITS, compute_new_vel_pos
from repro.nbody.particle import Particle, iterate_list, link_particles
from repro.nbody.octree import OctreeNode


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one N-body run."""

    n: int = 128
    steps: int = 4
    dt: float = 1.0e-3
    theta: float = 0.5
    distribution: str = "plummer"
    seed: int = 1
    gravity: float = 1.0

    def describe(self) -> str:
        return (
            f"N={self.n}, steps={self.steps}, dt={self.dt}, theta={self.theta}, "
            f"{self.distribution} (seed {self.seed})"
        )


@dataclass
class StepStats:
    """Work accounting of one time step."""

    step: int
    build_work: float = 0.0
    force_work: float = 0.0
    update_work: float = 0.0
    interactions: int = 0
    per_particle_force_work: list[float] = field(default_factory=list)
    per_particle_update_work: list[float] = field(default_factory=list)

    @property
    def total_work(self) -> float:
        return self.build_work + self.force_work + self.update_work


@dataclass
class SequentialRunResult:
    """Result of a sequential run: per-step stats plus the final particle states."""

    config: SimulationConfig
    steps: list[StepStats] = field(default_factory=list)
    final_states: list[tuple] = field(default_factory=list)

    @property
    def total_work(self) -> float:
        return sum(s.total_work for s in self.steps)

    @property
    def total_interactions(self) -> int:
        return sum(s.interactions for s in self.steps)

    @property
    def build_fraction(self) -> float:
        total = self.total_work
        return sum(s.build_work for s in self.steps) / total if total else 0.0


class BarnesHutSimulation:
    """The sequential Barnes–Hut simulation over a linked particle list."""

    def __init__(self, particles: list[Particle], config: SimulationConfig):
        self.particles = particles
        self.config = config
        self.head: Particle | None = link_particles(particles)
        self.root: OctreeNode | None = None
        self.step_stats: list[StepStats] = []

    # -- one time step, phase by phase ---------------------------------------
    def build_phase(self) -> BuildStats:
        self.root, build_stats = build_tree(self.head)
        return build_stats

    def force_phase(self, stats: StepStats) -> None:
        """BHL1: the pointer-chasing force loop."""
        p = self.head
        while p is not None:
            interactions = compute_force_on_particle(
                p, self.root, self.config.theta, self.config.gravity
            )
            stats.interactions += interactions
            stats.per_particle_force_work.append(float(interactions))
            p = p.next
        stats.force_work = sum(stats.per_particle_force_work)

    def update_phase(self, stats: StepStats) -> None:
        """BHL2: the pointer-chasing velocity/position loop."""
        p = self.head
        while p is not None:
            work = compute_new_vel_pos(p, self.config.dt)
            stats.per_particle_update_work.append(work)
            p = p.next
        stats.update_work = sum(stats.per_particle_update_work)

    def step(self, index: int = 0) -> StepStats:
        stats = StepStats(step=index)
        build_stats = self.build_phase()
        stats.build_work = build_stats.work
        self.force_phase(stats)
        self.update_phase(stats)
        self.step_stats.append(stats)
        return stats

    # -- whole runs ---------------------------------------------------------------
    def run(self) -> SequentialRunResult:
        result = SequentialRunResult(config=self.config)
        for i in range(self.config.steps):
            result.steps.append(self.step(i))
        result.final_states = [p.state() for p in self.particles]
        return result

    # -- baselines / diagnostics ----------------------------------------------------
    def run_direct(self) -> SequentialRunResult:
        """The O(N²) algorithm over the same particles (accuracy baseline)."""
        result = SequentialRunResult(config=self.config)
        for i in range(self.config.steps):
            stats = StepStats(step=i)
            interactions = direct_forces(self.particles, self.config.gravity)
            stats.interactions = interactions
            stats.force_work = float(interactions)
            stats.per_particle_force_work = [float(p.interactions) for p in self.particles]
            self.update_phase(stats)
            result.steps.append(stats)
        result.final_states = [p.state() for p in self.particles]
        return result

    def particle_states(self) -> list[tuple]:
        return [p.state() for p in self.particles]
