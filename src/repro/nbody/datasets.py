"""Initial conditions for the N-body experiments.

The paper does not describe its particle distribution beyond "simulation runs
of 80 time steps" for N ∈ {128, 512, 1024}; astrophysical tree-code papers of
the period typically used Plummer spheres or uniform clouds.  We provide
both, plus a deliberately clumpy two-cluster distribution used by the
load-imbalance ablation (clumpier distributions make the per-particle
interaction counts — and therefore the static-scheduling losses — more
uneven).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random

from repro.nbody.particle import Particle, link_particles
from repro.nbody.vector import Vec3


def uniform_cube(
    n: int, seed: int = 1, half_size: float = 1.0, max_speed: float = 0.1, mass: float = 1.0
) -> list[Particle]:
    """``n`` equal-mass particles uniformly distributed in a cube."""
    rng = random.Random(seed)
    particles = []
    for i in range(n):
        position = Vec3(
            rng.uniform(-half_size, half_size),
            rng.uniform(-half_size, half_size),
            rng.uniform(-half_size, half_size),
        )
        velocity = Vec3(
            rng.uniform(-max_speed, max_speed),
            rng.uniform(-max_speed, max_speed),
            rng.uniform(-max_speed, max_speed),
        )
        particles.append(Particle(ident=i, mass=mass, position=position, velocity=velocity))
    link_particles(particles)
    return particles


def plummer_sphere(n: int, seed: int = 1, scale: float = 1.0, mass: float = 1.0) -> list[Particle]:
    """A Plummer-model sphere (the classic stellar-cluster initial condition)."""
    rng = random.Random(seed)
    particles = []
    for i in range(n):
        # radius from the Plummer cumulative mass distribution
        x = rng.uniform(1e-6, 0.999)
        radius = scale / math.sqrt(x ** (-2.0 / 3.0) - 1.0)
        radius = min(radius, 10.0 * scale)
        costheta = rng.uniform(-1.0, 1.0)
        sintheta = math.sqrt(max(0.0, 1.0 - costheta * costheta))
        phi = rng.uniform(0.0, 2.0 * math.pi)
        position = Vec3(
            radius * sintheta * math.cos(phi),
            radius * sintheta * math.sin(phi),
            radius * costheta,
        )
        # small isotropic velocities (a fraction of the local circular speed)
        speed = 0.1 * math.sqrt(1.0 / math.sqrt(1.0 + radius * radius))
        vcostheta = rng.uniform(-1.0, 1.0)
        vsintheta = math.sqrt(max(0.0, 1.0 - vcostheta * vcostheta))
        vphi = rng.uniform(0.0, 2.0 * math.pi)
        velocity = Vec3(
            speed * vsintheta * math.cos(vphi),
            speed * vsintheta * math.sin(vphi),
            speed * vcostheta,
        )
        particles.append(
            Particle(ident=i, mass=mass / n, position=position, velocity=velocity)
        )
    link_particles(particles)
    return particles


def two_clusters(
    n: int, seed: int = 1, separation: float = 4.0, cluster_scale: float = 0.5
) -> list[Particle]:
    """Two compact clusters — a clumpy distribution for load-imbalance studies."""
    rng = random.Random(seed)
    particles = []
    for i in range(n):
        side = -1.0 if i < n // 2 else 1.0
        center = Vec3(side * separation / 2.0, 0.0, 0.0)
        offset = Vec3(
            rng.gauss(0.0, cluster_scale),
            rng.gauss(0.0, cluster_scale),
            rng.gauss(0.0, cluster_scale),
        )
        velocity = Vec3(-side * 0.05, rng.gauss(0.0, 0.02), rng.gauss(0.0, 0.02))
        particles.append(
            Particle(ident=i, mass=1.0, position=center + offset, velocity=velocity)
        )
    link_particles(particles)
    return particles


_GENERATORS = {
    "uniform": uniform_cube,
    "plummer": plummer_sphere,
    "two-clusters": two_clusters,
}


def make_particles(n: int, distribution: str = "plummer", seed: int = 1) -> list[Particle]:
    """Dispatch on the distribution name; used by the benchmark harness."""
    if distribution not in _GENERATORS:
        raise KeyError(
            f"unknown distribution {distribution!r}; available: {sorted(_GENERATORS)}"
        )
    return _GENERATORS[distribution](n, seed=seed)
