"""Differential fuzzing of the pipeline's executors.

The subsystem generates small well-typed programs over the full modelled
language (singly/doubly linked lists, binary trees, DAG-shaped tournament
lists, cyclic rings, with and without ADDS annotations), runs each program
through every executor class the repo has — the reference interpreter, the
simulated multiprocessor, and the output of every applicable transformation
(strip-mining, unrolling, software pipelining) — and diffs the observations:
final return value, printed output, and an exact heap snapshot.

A divergence between the reference run and any other executor is a real
semantics bug in the analysis, a transformation, or the machine model; the
harness shrinks the offending program and stores a replayable JSON record
under ``tests/fuzz_regressions/``.

Entry points: ``python -m repro fuzz`` (see :mod:`repro.driver.cli`) and the
:func:`repro.fuzz.harness.run_campaign` API.
"""

from repro.fuzz.generator import GENERATOR_VERSION, generate_program
from repro.fuzz.harness import (
    FuzzCase,
    FuzzReport,
    load_regression,
    replay_regression,
    run_campaign,
    run_seed,
    run_source,
    save_regression,
)
from repro.fuzz.observation import Observation, observe
from repro.fuzz.shrink import shrink_source

__all__ = [
    "GENERATOR_VERSION",
    "generate_program",
    "FuzzCase",
    "FuzzReport",
    "Observation",
    "observe",
    "load_regression",
    "replay_regression",
    "run_campaign",
    "run_seed",
    "run_source",
    "save_regression",
    "shrink_source",
]
