"""Grammar-driven generator of well-typed seeded random programs.

Unlike :func:`repro.bench.stress.random_program_source` — which exists to
exercise every *transfer rule* and freely produces programs that fault or
never terminate — this generator produces **closed, terminating, well-typed
programs** suitable for differential execution:

* every program has a parameterless ``main`` that builds a structure, runs
  one or more kernels over it, prints and returns a digest of the result;
* every loop terminates by construction: traversal loops only ever advance
  along acyclic chains (relinks may only skip forward), tree descents only
  move toward the leaves, walks over the cyclic scenario use counted loops;
* all arithmetic is total (no division, modulus only by literal constants).

Scenarios cover the modelled structure zoo: singly linked lists (ADDS
``uniquely forward``), doubly linked lists, binary trees, DAG-shaped
tournament lists (shared suffixes — ``forward`` but not unique), and cyclic
rings declared without ADDS guarantees.  Kernel loop bodies are drawn from a
small statement grammar that deliberately includes the patterns the
dependence test must get right: privatizable temporaries, scalar reductions,
conditional field updates, forward relinks, second-pointer reads and
allocation inside loops.

Determinism: the only source of randomness is the ``random.Random`` instance
passed in, so ``generate_program(seed)`` is byte-identical across processes
regardless of ``PYTHONHASHSEED`` (a test pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: bump when generated sources change for a given seed, so stored regression
#: records can say which generator produced them
GENERATOR_VERSION = 1

_SCENARIOS = (
    ("list", 30),
    ("twoway", 15),
    ("tree", 20),
    ("dag", 15),
    ("cycle", 20),
)


@dataclass
class GeneratedProgram:
    """One generated source plus the knobs that shaped it."""

    seed: int
    scenario: str
    source: str
    size: int
    kernels: list[str] = field(default_factory=list)


def generate_program(seed: int) -> GeneratedProgram:
    """Deterministically generate one program for ``seed``."""
    rng = random.Random(seed)
    total = sum(w for _, w in _SCENARIOS)
    pick = rng.randrange(total)
    for name, weight in _SCENARIOS:
        if pick < weight:
            scenario = name
            break
        pick -= weight
    gen = _Generator(rng)
    source, size, kernels = getattr(gen, f"_{scenario}_program")()
    return GeneratedProgram(
        seed=seed, scenario=scenario, source=source, size=size, kernels=kernels
    )


class _Generator:
    """Holds the rng and the per-program expression/statement grammar."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    # -- expression grammar ------------------------------------------------
    def _int_expr(self, reads: list[str], depth: int = 0) -> str:
        """A total integer expression over the readable operands ``reads``."""
        rng = self.rng
        if depth >= 2 or rng.random() < 0.4:
            if reads and rng.random() < 0.7:
                return rng.choice(reads)
            return str(rng.randrange(0, 12))
        left = self._int_expr(reads, depth + 1)
        right = self._int_expr(reads, depth + 1)
        op = rng.choice(["+", "+", "-", "*"])
        if rng.random() < 0.25:
            return f"({left} {op} {right}) % {rng.randrange(3, 11)}"
        return f"({left} {op} {right})"

    def _cond_expr(self, reads: list[str]) -> str:
        left = self._int_expr(reads, depth=1)
        right = self._int_expr(reads, depth=1)
        return f"{left} {self.rng.choice(['<', '>', '==', '<>'])} {right}"

    # -- kernel-body grammar -----------------------------------------------
    def _work_statements(
        self,
        var: str,
        fields: list[str],
        pad: str,
        extra_reads: list[str],
        depth: int = 0,
        allow_acc: bool = True,
        allow_relink: str | None = None,
        allow_alloc: str | None = None,
    ) -> list[str]:
        """1-3 statements of per-node work on ``var`` inside a traversal."""
        rng = self.rng
        reads = [f"{var}->{f}" for f in fields] + list(extra_reads)
        lines: list[str] = []
        for _ in range(rng.randrange(1, 4)):
            kind = rng.randrange(100)
            if kind < 40:
                target = rng.choice(fields)
                lines.append(f"{pad}{var}->{target} = {self._int_expr(reads)};")
            elif kind < 55:
                target = rng.choice(fields)
                lines.append(f"{pad}t = {self._int_expr(reads)};")
                lines.append(f"{pad}{var}->{target} = t + {rng.randrange(1, 5)};")
            elif kind < 70 and depth < 2:
                inner = self._work_statements(
                    var,
                    fields,
                    pad + "  ",
                    extra_reads,
                    depth + 1,
                    allow_acc=allow_acc,
                    allow_relink=allow_relink,
                    allow_alloc=allow_alloc,
                )
                lines.append(f"{pad}if {self._cond_expr(reads)}")
                lines.append(f"{pad}{{")
                lines.extend(inner)
                lines.append(f"{pad}}}")
                if rng.random() < 0.3:
                    other = self._work_statements(
                        var, fields, pad + "  ", extra_reads, depth + 1,
                        allow_acc=allow_acc,
                    )
                    lines.append(f"{pad}else")
                    lines.append(f"{pad}{{")
                    lines.extend(other)
                    lines.append(f"{pad}}}")
            elif kind < 82 and allow_acc:
                lines.append(f"{pad}acc = acc + {self._int_expr(reads)};")
            elif kind < 88:
                lines.append(f"{pad}print({self._int_expr(reads)});")
            elif kind < 94 and allow_relink is not None:
                # forward-only skip of the successor: shape-changing but
                # still terminating (the chain strictly shortens)
                nxt = allow_relink
                lines.append(f"{pad}if {var}->{nxt} <> NULL")
                lines.append(f"{pad}{{ {var}->{nxt} = {var}->{nxt}->{nxt}; }}")
            elif kind < 97 and allow_alloc is not None:
                # an orphan allocation: exercises heap-snapshot comparison
                lines.append(f"{pad}u = new {allow_alloc};")
                lines.append(f"{pad}u->{fields[0]} = {self._int_expr(reads)};")
            else:
                target = rng.choice(fields)
                lines.append(
                    f"{pad}{var}->{target} = {var}->{target} + {rng.randrange(1, 7)};"
                )
        return lines

    def _list_kernel(
        self,
        name: str,
        type_name: str,
        fields: list[str],
        relinks: bool,
        allocs: bool,
    ) -> str:
        """A traversal kernel ``name(head, c)`` over a next-linked chain."""
        rng = self.rng
        use_acc = rng.random() < 0.45
        lines = [f"function {name}(head, c)", "{ var p; var t; var u; var acc;"]
        lines.append("  acc = 0;")
        lines.append("  p = head;")
        lines.append("  while p <> NULL")
        lines.append("  {")
        lines.extend(
            self._work_statements(
                "p",
                fields,
                "    ",
                extra_reads=["c"],
                allow_acc=use_acc,
                allow_relink="next" if relinks and rng.random() < 0.4 else None,
                allow_alloc=type_name if allocs and rng.random() < 0.3 else None,
            )
        )
        lines.append("    p = p->next;")
        lines.append("  }")
        if use_acc:
            lines.append("  print(acc);")
        lines.append("  return head;")
        lines.append("}")
        return "\n".join(lines)

    # -- the list scenario --------------------------------------------------
    def _list_program(self) -> tuple[str, int, list[str]]:
        rng = self.rng
        n = rng.randrange(3, 13)
        parts = [_LIST_TYPE, _list_builder("ListNode", n, self)]
        kernels = [f"kernel{i}" for i in range(rng.randrange(1, 4))]
        for name in kernels:
            parts.append(
                self._list_kernel(
                    name, "ListNode", ["coef", "exp"], relinks=True, allocs=True
                )
            )
        parts.append(_LIST_DIGEST)
        parts.append(_chain_main(kernels, self, n))
        return "\n\n".join(parts), n, kernels

    # -- the doubly linked scenario -----------------------------------------
    def _twoway_program(self) -> tuple[str, int, list[str]]:
        rng = self.rng
        n = rng.randrange(3, 11)
        parts = [_TWOWAY_TYPE, _TWOWAY_BUILD]
        kernels = [f"kernel{i}" for i in range(rng.randrange(1, 3))]
        for name in kernels:
            use_prev = rng.random() < 0.6
            lines = [f"function {name}(head, c)", "{ var p; var t; var u; var acc;"]
            lines.append("  acc = 0;")
            lines.append("  p = head;")
            lines.append("  while p <> NULL")
            lines.append("  {")
            lines.extend(
                self._work_statements("p", ["data"], "    ", extra_reads=["c"])
            )
            if use_prev:
                lines.append("    if p->prev <> NULL")
                lines.append("    { p->prev->data = p->prev->data + 1; }")
            lines.append("    p = p->next;")
            lines.append("  }")
            lines.append("  return head;")
            lines.append("}")
            parts.append("\n".join(lines))
        parts.append(_TWOWAY_DIGEST)
        parts.append(_chain_main(kernels, self, n))
        return "\n\n".join(parts), n, kernels

    # -- the binary-tree scenario -------------------------------------------
    def _tree_program(self) -> tuple[str, int, list[str]]:
        rng = self.rng
        n = rng.randrange(3, 13)
        mul, add, mod = rng.randrange(3, 9), rng.randrange(0, 7), rng.randrange(11, 23)
        parts = [_TREE_TYPE, _TREE_INSERT]
        parts.append(
            "\n".join(
                [
                    "function build(n)",
                    "{ var root; var i;",
                    "  root = NULL;",
                    "  i = 1;",
                    "  while i < n + 1",
                    f"  {{ root = insert(root, ((i * {mul}) + {add}) % {mod});",
                    "    i = i + 1;",
                    "  }",
                    "  return root;",
                    "}",
                ]
            )
        )
        kernels = []
        if rng.random() < 0.7:
            kernels.append("descend")
            probe = rng.randrange(0, 23)
            parts.append(
                "\n".join(
                    [
                        "function descend(root, c)",
                        "{ var t;",
                        "  t = root;",
                        "  while t <> NULL",
                        f"  {{ t->data = t->data + (c % 3);",
                        f"    if {probe} < t->data",
                        "    { t = t->left; }",
                        "    else",
                        "    { t = t->right; }",
                        "  }",
                        "  return root;",
                        "}",
                    ]
                )
            )
        kernels.append("bump")
        parts.append(
            "\n".join(
                [
                    "function bump(t, c)",
                    "{ if t == NULL { return 0; }",
                    f"  t->data = t->data + c;",
                    "  return 1 + bump(t->left, c + 1) + bump(t->right, c + 2);",
                    "}",
                ]
            )
        )
        parts.append(_TREE_DIGEST)
        main = [
            "function main()",
            "{ var h; var d; var k;",
            f"  h = build({n});",
        ]
        if "descend" in kernels:
            main.append(f"  h = descend(h, {rng.randrange(1, 6)});")
        main.append(f"  k = bump(h, {rng.randrange(0, 4)});")
        main.append("  print(k);")
        main.append("  d = digest(h);")
        main.append("  print(d);")
        main.append("  return d;")
        main.append("}")
        parts.append("\n".join(main))
        return "\n\n".join(parts), n, kernels

    # -- the DAG (tournament list) scenario ----------------------------------
    def _dag_program(self) -> tuple[str, int, list[str]]:
        rng = self.rng
        n = rng.randrange(4, 13)
        offset = rng.randrange(1, n)
        parts = [_DAG_TYPE, _list_builder("TournamentList", n, self, data_fields=["data"])]
        parts.append(_DAG_ADVANCE)
        kernels = ["kernel0"]
        parts.append(
            self._list_kernel(
                "kernel0", "TournamentList", ["data"], relinks=False, allocs=False
            )
        )
        parts.append(_DAG_DIGEST)
        parts.append(
            "\n".join(
                [
                    "function main()",
                    "{ var h; var m; var d;",
                    f"  h = build({n});",
                    f"  m = advance(h, {offset});",
                    f"  h = kernel0(h, {rng.randrange(1, 5)});",
                    f"  m = kernel0(m, {rng.randrange(1, 5)});",
                    "  d = digest(h);",
                    "  print(d);",
                    "  return d;",
                    "}",
                ]
            )
        )
        return "\n\n".join(parts), n, kernels

    # -- the cyclic-ring scenario --------------------------------------------
    def _cycle_program(self) -> tuple[str, int, list[str]]:
        rng = self.rng
        n = rng.randrange(3, 10)
        walk = rng.randrange(n, 3 * n)
        parts = [_RING_TYPE, _RING_BUILD]
        kernels = ["spin"]
        lines = [
            "function spin(head, c)",
            "{ var p; var t; var u; var acc; var i;",
            "  acc = 0;",
            "  p = head;",
            f"  for i = 1 to {walk}",
            "  {",
        ]
        lines.extend(
            self._work_statements("p", ["coef", "exp"], "    ", extra_reads=["c", "i"])
        )
        lines.append("    p = p->next;")
        lines.append("  }")
        lines.append("  print(acc);")
        lines.append("  return head;")
        lines.append("}")
        parts.append("\n".join(lines))
        parts.append(_RING_DIGEST % max(1, n))
        parts.append(_chain_main(kernels, self, n))
        return "\n\n".join(parts), n, kernels


# -- fixed building blocks ----------------------------------------------------
_LIST_TYPE = """\
type ListNode [X]
{ int coef;
  int exp;
  ListNode *next is uniquely forward along X;
};"""

_TWOWAY_TYPE = """\
type TwoWayList [X]
{ int data;
  TwoWayList *next is uniquely forward along X;
  TwoWayList *prev is backward along X;
};"""

_TREE_TYPE = """\
type BinTree [down]
{ int data;
  BinTree *left, *right is uniquely forward along down;
};"""

_DAG_TYPE = """\
type TournamentList [X]
{ int data;
  TournamentList *next is forward along X;
};"""

#: deliberately no ADDS dimension: a ring breaks acyclicity, and the
#: conservative default view is the honest declaration for it
_RING_TYPE = """\
type RingNode
{ int coef;
  int exp;
  RingNode *next;
};"""


def _list_builder(
    type_name: str,
    n: int,
    gen: _Generator,
    data_fields: list[str] | None = None,
) -> str:
    """A prepend-style chain builder seeded with index arithmetic."""
    rng = gen.rng
    fields = data_fields if data_fields is not None else ["coef", "exp"]
    lines = [
        "function build(n)",
        "{ var head; var p; var i;",
        "  head = NULL;",
        "  i = 0;",
        "  while i < n",
        f"  {{ p = new {type_name};",
    ]
    for f in fields:
        mul, add, mod = rng.randrange(1, 7), rng.randrange(0, 9), rng.randrange(5, 17)
        lines.append(f"    p->{f} = ((i * {mul}) + {add}) % {mod};")
    lines.append("    p->next = head;")
    lines.append("    head = p;")
    lines.append("    i = i + 1;")
    lines.append("  }")
    lines.append("  return head;")
    lines.append("}")
    return "\n".join(lines)


_TWOWAY_BUILD = """\
function build(n)
{ var head; var p; var q; var i;
  head = NULL;
  i = 0;
  while i < n
  { p = new TwoWayList;
    p->data = (i * 3) % 7;
    p->next = head;
    p->prev = NULL;
    if head <> NULL
    { head->prev = p; }
    head = p;
    i = i + 1;
  }
  return head;
}"""

_TREE_INSERT = """\
function insert(root, v)
{ var t; var node;
  node = new BinTree;
  node->data = v;
  if root == NULL
  { return node; }
  t = root;
  while t <> NULL
  { if v < t->data
    { if t->left == NULL
      { t->left = node; t = NULL; }
      else
      { t = t->left; }
    }
    else
    { if t->right == NULL
      { t->right = node; t = NULL; }
      else
      { t = t->right; }
    }
  }
  return root;
}"""

_DAG_ADVANCE = """\
function advance(head, k)
{ var p; var i;
  p = head;
  for i = 1 to k
  { if p <> NULL
    { p = p->next; }
  }
  return p;
}"""

_LIST_DIGEST = """\
function digest(head)
{ var p; var d;
  p = head;
  d = 0;
  while p <> NULL
  { d = ((d * 31) + p->coef + (p->exp * 7)) % 1000003;
    p = p->next;
  }
  return d;
}"""

_TWOWAY_DIGEST = """\
function digest(head)
{ var p; var d;
  p = head;
  d = 0;
  while p <> NULL
  { d = ((d * 31) + p->data) % 1000003;
    p = p->next;
  }
  return d;
}"""

_TREE_DIGEST = """\
function digest(t)
{ var d;
  if t == NULL
  { return 1; }
  d = ((digest(t->left) * 31) + t->data) % 1000003;
  return ((d * 31) + digest(t->right)) % 1000003;
}"""

_DAG_DIGEST = """\
function digest(head)
{ var p; var d;
  p = head;
  d = 0;
  while p <> NULL
  { d = ((d * 31) + p->data) % 1000003;
    p = p->next;
  }
  return d;
}"""

_RING_BUILD = """\
function build(n)
{ var head; var p; var q; var i;
  head = new RingNode;
  head->coef = 1;
  head->exp = 0;
  q = head;
  i = 1;
  while i < n
  { p = new RingNode;
    p->coef = (i * 5) % 9;
    p->exp = i % 4;
    q->next = p;
    q = p;
    i = i + 1;
  }
  q->next = head;
  return head;
}"""

#: counted walk once around the ring (the %d is the ring size)
_RING_DIGEST = """\
function digest(head)
{ var p; var d; var i;
  p = head;
  d = 0;
  for i = 1 to %d
  { d = ((d * 31) + p->coef + (p->exp * 7)) %% 1000003;
    p = p->next;
  }
  return d;
}"""


def _chain_main(kernels: list[str], gen: _Generator, n: int) -> str:
    """``main`` = build, run each kernel in order, digest, print, return."""
    rng = gen.rng
    lines = ["function main()", "{ var h; var d;", f"  h = build({n});"]
    for name in kernels:
        lines.append(f"  h = {name}(h, {rng.randrange(1, 6)});")
    lines.append("  d = digest(h);")
    lines.append("  print(d);")
    lines.append("  return d;")
    lines.append("}")
    return "\n".join(lines)
