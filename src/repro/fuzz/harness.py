"""The differential fuzzing harness: run, diff, shrink, record, replay.

One seed flows through :func:`run_seed`:

1. generate a program (:mod:`repro.fuzz.generator`), parse and typecheck it
   — a front-end failure is a *generator* bug and is reported as
   ``invalid``, loudly, not skipped;
2. run the reference interpreter under generous budgets; a reference run
   that errors or exhausts skips the seed (the generator aims for clean
   programs, and comparing executors below an error is meaningless because
   transformed programs reorder the work preceding the fault);
3. build every applicable executor variant (:mod:`repro.fuzz.executors`)
   and run each under a budget scaled from the reference run;
4. diff each observation against the reference.  Any difference — status,
   return value, printed output, or any field of any heap cell — is a
   divergence; a variant that exhausts its (scaled) budget is recorded as
   ``exhausted`` but never counts as diverged.

Divergent cases can be shrunk (:mod:`repro.fuzz.shrink`) and persisted as
JSON records that replay **from source**, so stored regressions stay
meaningful even as the generator's grammar evolves.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.fuzz.executors import REFERENCE, build_plans
from repro.fuzz.generator import GENERATOR_VERSION, generate_program
from repro.fuzz.observation import (
    ERROR,
    EXHAUSTED,
    OK,
    Observation,
    diff_observations,
    observe,
)
from repro.lang.errors import LangError
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program

#: budgets: the reference run is bounded absolutely; every variant gets a
#: budget scaled from the reference's measured step count (strip-mining's
#: skip loops cost O(PEs) extra work per node, so 20x is comfortable)
REFERENCE_MAX_STEPS = 2_000_000
MAX_CALL_DEPTH = 64
VARIANT_BUDGET_FACTOR = 20
VARIANT_BUDGET_FLOOR = 100_000

#: seed statuses
PASS = "pass"
DIVERGENCE = "divergence"
SKIPPED = "skipped"
INVALID = "invalid"


@dataclass
class Divergence:
    """One executor disagreeing with the reference."""

    executor: str
    details: list[str]

    def to_dict(self) -> dict:
        return {"executor": self.executor, "details": list(self.details)}


@dataclass
class FuzzCase:
    """Everything observed for one fuzzed program."""

    source: str
    status: str
    seed: int | None = None
    scenario: str | None = None
    reference: Observation | None = None
    executors: dict[str, str] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    shrunk_source: str | None = None
    note: str | None = None

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def summary(self) -> str:
        head = f"seed {self.seed}" if self.seed is not None else "source"
        if self.scenario:
            head += f" [{self.scenario}]"
        if self.status == DIVERGENCE:
            parts = [
                f"{d.executor}: {d.details[0] if d.details else '?'}"
                for d in self.divergences
            ]
            return f"{head}: DIVERGENCE — " + "; ".join(parts)
        if self.note:
            return f"{head}: {self.status} ({self.note})"
        return f"{head}: {self.status}"


@dataclass
class FuzzReport:
    """Aggregate outcome of a campaign."""

    cases: list[FuzzCase] = field(default_factory=list)

    def count(self, status: str) -> int:
        return sum(1 for c in self.cases if c.status == status)

    @property
    def failures(self) -> list[FuzzCase]:
        return [c for c in self.cases if c.status in (DIVERGENCE, INVALID)]

    def to_dict(self) -> dict:
        return {
            "generator_version": GENERATOR_VERSION,
            "seeds": len(self.cases),
            "pass": self.count(PASS),
            "skipped": self.count(SKIPPED),
            "divergences": self.count(DIVERGENCE),
            "invalid": self.count(INVALID),
            "failures": [
                {
                    "seed": c.seed,
                    "scenario": c.scenario,
                    "status": c.status,
                    "divergences": [d.to_dict() for d in c.divergences],
                }
                for c in self.failures
            ],
        }

    def describe(self) -> str:
        lines = [
            f"{len(self.cases)} program(s): {self.count(PASS)} pass, "
            f"{self.count(SKIPPED)} skipped, {self.count(DIVERGENCE)} divergence(s), "
            f"{self.count(INVALID)} invalid"
        ]
        exhausted = sum(
            1
            for c in self.cases
            for status in c.executors.values()
            if status == EXHAUSTED
        )
        if exhausted:
            lines.append(f"{exhausted} variant run(s) exhausted their step budget")
        for case in self.failures:
            lines.append("  " + case.summary())
        return "\n".join(lines)


def run_source(
    source: str,
    seed: int | None = None,
    scenario: str | None = None,
    entry: str = "main",
    pes: int = 3,
    unroll_factor: int = 3,
) -> FuzzCase:
    """Differentially execute one source program; never raises."""
    case = FuzzCase(source=source, status=PASS, seed=seed, scenario=scenario)
    try:
        program = parse_program(source)
        check_program(program)
    except LangError as exc:
        case.status = INVALID
        case.note = f"front end rejected the program: {exc}"
        return case

    reference = observe(
        program,
        entry=entry,
        max_steps=REFERENCE_MAX_STEPS,
        max_call_depth=MAX_CALL_DEPTH,
    )
    case.reference = reference
    case.executors[REFERENCE] = reference.status
    if reference.status != OK:
        case.status = SKIPPED
        case.note = f"reference run {reference.status}: {reference.error}"
        return case

    budget = max(VARIANT_BUDGET_FLOOR, VARIANT_BUDGET_FACTOR * reference.steps)
    for plan in build_plans(program, entry=entry, pes=pes, unroll_factor=unroll_factor):
        if plan.name == REFERENCE:
            continue
        outcome = observe(
            plan.program,
            entry=entry,
            entry_args=plan.entry_args,
            max_steps=budget,
            max_call_depth=MAX_CALL_DEPTH,
            attach=plan.attach(),
        )
        case.executors[plan.name] = outcome.status
        details = diff_observations(reference, outcome)
        if details:
            case.divergences.append(Divergence(executor=plan.name, details=details))
    if case.divergences:
        case.status = DIVERGENCE
    return case


def run_seed(seed: int, pes: int = 3, unroll_factor: int = 3) -> FuzzCase:
    """Generate and differentially execute the program for ``seed``."""
    generated = generate_program(seed)
    return run_source(
        generated.source,
        seed=seed,
        scenario=generated.scenario,
        pes=pes,
        unroll_factor=unroll_factor,
    )


def run_campaign(
    seeds,
    pes: int = 3,
    unroll_factor: int = 3,
    shrink: bool = False,
    on_case=None,
) -> FuzzReport:
    """Run a sequence of seeds; optionally shrink each divergent case."""
    from repro.fuzz.shrink import shrink_source

    report = FuzzReport()
    for seed in seeds:
        case = run_seed(seed, pes=pes, unroll_factor=unroll_factor)
        if case.diverged and shrink:
            case.shrunk_source = shrink_source(
                case.source, pes=pes, unroll_factor=unroll_factor
            )
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
    return report


# -- replayable regression records -------------------------------------------
def save_regression(
    case: FuzzCase,
    directory: str | pathlib.Path,
    name: str | None = None,
    description: str | None = None,
) -> pathlib.Path:
    """Persist a divergent case as a replayable JSON record."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if name is None:
        name = f"seed_{case.seed}" if case.seed is not None else "case"
    if not name.endswith(".json"):
        name += ".json"
    path = directory / name
    record = {
        "generator_version": GENERATOR_VERSION,
        "seed": case.seed,
        "scenario": case.scenario,
        "status": case.status,
        "description": description,
        "source": case.source,
        "shrunk_source": case.shrunk_source,
        "divergences": [d.to_dict() for d in case.divergences],
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_regression(path: str | pathlib.Path) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def replay_regression(
    path: str | pathlib.Path, pes: int = 3, unroll_factor: int = 3
) -> FuzzCase:
    """Re-run a stored record from its source (shrunk form if present)."""
    record = load_regression(path)
    source = record.get("shrunk_source") or record["source"]
    return run_source(
        source,
        seed=record.get("seed"),
        scenario=record.get("scenario"),
        pes=pes,
        unroll_factor=unroll_factor,
    )
