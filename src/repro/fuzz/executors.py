"""The executor classes a fuzzed program is run through.

Each :class:`ExecutionPlan` pairs a name with a program variant (and the
way to run it):

* ``reference``      — the original program on the plain interpreter; its
  observation is ground truth.
* ``strip-mine``     — every function rewritten by
  :func:`~repro.transform.stripmine.strip_mine_function`, run sequentially.
* ``machine-sim``    — the same strip-mined program driven through the
  simulated multiprocessor (:class:`~repro.machine.MachineSimulator`), i.e.
  exactly what ``python -m repro analyze`` replays.
* ``unroll``         — every traversal loop unrolled (legal for any loop, so
  applied regardless of classification).
* ``software-pipeline`` — every DOALL loop software-pipelined.

Variant construction mirrors :func:`repro.driver.pipeline.simulate_program`:
strip-mined functions gain a trailing processor-count argument, patched into
every call site (and into the entry call when ``main`` itself was rewritten).
A variant whose transforms all refuse simply isn't run — refusing is the
transforms' way of being correct, and the dependence-analysis reasons for
refusal are recorded in the plan.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.lang.ast_nodes import Call, IntLit, Program
from repro.machine import SEQUENT_LIKE, MachineSimulator
from repro.transform.dependence import find_while_loops
from repro.transform.pipeline import software_pipeline_loop
from repro.transform.stripmine import TransformError, strip_mine_function
from repro.transform.unroll import unroll_loop

REFERENCE = "reference"


@dataclass
class ExecutionPlan:
    """One runnable program variant."""

    name: str
    program: Program
    entry_args: tuple = ()
    machine_pes: int | None = None  # run under the simulated multiprocessor
    transformed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    def attach(self):
        if self.machine_pes is None:
            return None
        simulator = MachineSimulator(SEQUENT_LIKE.with_pes(self.machine_pes))
        return lambda interp: simulator.attach_to_interpreter(interp)


def _strip_mined(program: Program, entry: str, pes: int) -> list[ExecutionPlan]:
    transformed = program
    names: list[str] = []
    skipped: list[str] = []
    for func in program.functions:
        if not find_while_loops(program, func.name):
            continue
        try:
            result = strip_mine_function(transformed, func.name, check_dependences=True)
        except TransformError as exc:
            skipped.append(f"{func.name}: {exc}")
            continue
        transformed = result.program
        names.append(func.name)
    if not names:
        return []
    for func in transformed.functions:
        for node in func.body.walk():
            if isinstance(node, Call) and node.func in names:
                node.args.append(IntLit(pes))
    entry_args: tuple = (pes,) if entry in names else ()
    return [
        ExecutionPlan(
            name="strip-mine",
            program=transformed,
            entry_args=entry_args,
            transformed=names,
            skipped=skipped,
        ),
        ExecutionPlan(
            name="machine-sim",
            program=copy.deepcopy(transformed),
            entry_args=entry_args,
            machine_pes=pes,
            transformed=list(names),
            skipped=list(skipped),
        ),
    ]


def _per_loop_variant(
    program: Program, name: str, transform, **kwargs
) -> ExecutionPlan | None:
    """Apply ``transform(program, function, loop_index)`` to every loop.

    Loops are processed in reverse pre-order so a rewrite never shifts the
    index of a loop still to be processed (copies and replacements only
    appear at or after the rewritten position).
    """
    current = program
    applied: list[str] = []
    skipped: list[str] = []
    for func in program.functions:
        loops = find_while_loops(current, func.name)
        for index in reversed(range(len(loops))):
            try:
                current = transform(
                    current, func.name, loop_index=index, **kwargs
                ).program
            except TransformError as exc:
                skipped.append(f"{func.name} loop #{index}: {exc}")
                continue
            applied.append(f"{func.name}#{index}")
    if not applied:
        return None
    return ExecutionPlan(
        name=name, program=current, transformed=applied, skipped=skipped
    )


def build_plans(
    program: Program, entry: str = "main", pes: int = 3, unroll_factor: int = 3
) -> list[ExecutionPlan]:
    """Every executor applicable to ``program``, the reference plan first."""
    plans = [ExecutionPlan(name=REFERENCE, program=program)]
    plans.extend(_strip_mined(program, entry, pes))
    unrolled = _per_loop_variant(
        program, "unroll", unroll_loop, factor=unroll_factor, check_dependences=False
    )
    if unrolled is not None:
        plans.append(unrolled)
    pipelined = _per_loop_variant(
        program, "software-pipeline", software_pipeline_loop, check_dependences=True
    )
    if pipelined is not None:
        plans.append(pipelined)
    return plans
