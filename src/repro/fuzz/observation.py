"""Observation capture and comparison for differential runs.

An :class:`Observation` is everything a program execution can make visible:
its return value, everything it printed, and an **exact** snapshot of the
final heap — every cell with every field, pointer fields included.  Pointer
fields are comparable across executors because every executor in this repo
runs iterations in the same sequential order (the simulated multiprocessor
interleaves *costs*, not effects) and no transformation adds or removes
allocations, so reference numbering is preserved.  This is deliberately
stronger than the driver's :func:`~repro.driver.pipeline._heap_fingerprint`,
which ignores scalars in the frame and all pointer fields and therefore
cannot see a wrong return value or a mis-linked structure.

The ``status`` field keeps the paper-side distinction the typed
:class:`~repro.lang.errors.InterpreterLimitError` exists for: a run cut off
by a budget is ``"exhausted"``, never ``"diverged"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.lang.ast_nodes import Program
from repro.lang.errors import InterpreterLimitError, LangError
from repro.lang.interpreter import Interpreter

#: observation statuses
OK = "ok"
ERROR = "error"
EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class Observation:
    """The externally visible outcome of one execution."""

    status: str
    result: Any = None
    output: tuple[str, ...] = ()
    heap: tuple = ()
    error: str | None = None
    steps: int = 0

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "result": self.result,
            "output": list(self.output),
            "heap_cells": len(self.heap),
            "error": self.error,
            "steps": self.steps,
        }


def _normalize(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, float):
        # executors perform identical arithmetic in identical order, but a
        # repr round-trip through the regression store must stay stable
        return round(value, 12)
    return value


def snapshot_heap(interp: Interpreter) -> tuple:
    """Exact, ref-ordered snapshot of every heap cell and field."""
    cells = []
    for cell in interp.heap:
        fields = tuple(
            (name, _normalize(value)) for name, value in sorted(cell.fields.items())
        )
        cells.append((cell.ref, cell.type_name, fields))
    return tuple(cells)


def observe(
    program: Program,
    entry: str = "main",
    entry_args: tuple = (),
    max_steps: int | None = None,
    max_call_depth: int | None = None,
    attach: Any = None,
) -> Observation:
    """Run ``entry`` and capture an :class:`Observation`; never raises.

    ``attach`` is an optional callable given the fresh interpreter before the
    run — the machine-simulator executor uses it to install its
    ``ParallelFor`` executor.
    """
    interp = Interpreter(program, max_steps=max_steps, max_call_depth=max_call_depth)
    if attach is not None:
        attach(interp)
    try:
        result = interp.call_function(entry, *entry_args)
    except InterpreterLimitError as exc:
        return Observation(
            status=EXHAUSTED,
            output=tuple(interp.output),
            heap=snapshot_heap(interp),
            error=str(exc),
            steps=interp.stats.statements + interp.stats.expressions,
        )
    except LangError as exc:
        return Observation(
            status=ERROR,
            output=tuple(interp.output),
            heap=snapshot_heap(interp),
            error=str(exc),
            steps=interp.stats.statements + interp.stats.expressions,
        )
    return Observation(
        status=OK,
        result=_normalize(result),
        output=tuple(interp.output),
        heap=snapshot_heap(interp),
        steps=interp.stats.statements + interp.stats.expressions,
    )


def diff_observations(reference: Observation, other: Observation) -> list[str]:
    """Human-readable differences of ``other`` against ``reference``.

    Empty list means the observations agree.  An ``exhausted`` run never
    produces a divergence here — callers must treat it separately.
    """
    if other.status == EXHAUSTED:
        return []
    diffs: list[str] = []
    if reference.status != other.status:
        diffs.append(
            f"status: reference {reference.status!r} vs {other.status!r}"
            + (f" ({other.error})" if other.error else "")
        )
        return diffs
    if reference.result != other.result:
        diffs.append(f"result: reference {reference.result!r} vs {other.result!r}")
    if reference.output != other.output:
        limit = min(len(reference.output), len(other.output))
        for i in range(limit):
            if reference.output[i] != other.output[i]:
                diffs.append(
                    f"output[{i}]: reference {reference.output[i]!r} "
                    f"vs {other.output[i]!r}"
                )
                break
        else:
            diffs.append(
                f"output length: reference {len(reference.output)} "
                f"vs {len(other.output)}"
            )
    if reference.heap != other.heap:
        diffs.append(_first_heap_diff(reference.heap, other.heap))
    return diffs


def _first_heap_diff(ref_heap: tuple, other_heap: tuple) -> str:
    if len(ref_heap) != len(other_heap):
        return f"heap size: reference {len(ref_heap)} cell(s) vs {len(other_heap)}"
    for ref_cell, other_cell in zip(ref_heap, other_heap):
        if ref_cell == other_cell:
            continue
        ref, type_name, ref_fields = ref_cell
        _, other_type, other_fields = other_cell
        if type_name != other_type:
            return f"heap cell #{ref}: reference type {type_name} vs {other_type}"
        for (name, rv), (_, ov) in zip(ref_fields, other_fields):
            if rv != ov:
                return (
                    f"heap cell #{ref} ({type_name}).{name}: "
                    f"reference {rv!r} vs {ov!r}"
                )
    return "heap: cells differ"
