"""Greedy structural minimization of divergent programs.

The shrinker works on the AST, not on text: candidate reductions are

* deleting one non-``main`` function entirely,
* deleting one statement from any block (at any nesting depth),
* replacing an ``if`` by its taken branch's statements.

A candidate is kept when the reduced program still parses, typechecks, and
**still diverges** under the same harness configuration.  Reductions repeat
to a fixed point (bounded by ``max_attempts`` executor runs — each predicate
evaluation replays every executor).  The result is a small, human-readable
counterexample for the regression record; it is greedy delta debugging, so
minimality is local, which is all a reproduction needs.
"""

from __future__ import annotations

import copy

from repro.lang.ast_nodes import Block, FunctionDecl, If, Program
from repro.lang.pretty import unparse


def _blocks_of(func: FunctionDecl) -> list[Block]:
    """Every block of ``func`` in deterministic pre-order."""
    return [node for node in func.body.walk() if isinstance(node, Block)]


def _candidates(program: Program):
    """Yield ``(description, reduced_program)`` pairs, largest cuts first."""
    for f_idx, func in enumerate(program.functions):
        if func.name == "main":
            continue
        reduced = copy.deepcopy(program)
        del reduced.functions[f_idx]
        yield f"drop function {func.name}", reduced
    for f_idx, func in enumerate(program.functions):
        blocks = _blocks_of(func)
        for b_idx, block in enumerate(blocks):
            for s_idx, stmt in enumerate(block.statements):
                reduced = copy.deepcopy(program)
                target = _blocks_of(reduced.functions[f_idx])[b_idx]
                removed = target.statements[s_idx]
                if isinstance(removed, If):
                    # first try flattening to the then-branch, then deletion
                    flattened = copy.deepcopy(program)
                    flat_target = _blocks_of(flattened.functions[f_idx])[b_idx]
                    flat_if = flat_target.statements[s_idx]
                    flat_target.statements[s_idx : s_idx + 1] = (
                        flat_if.then_body.statements
                    )
                    yield f"flatten if in {func.name}", flattened
                del target.statements[s_idx]
                yield f"drop statement in {func.name}", reduced


def shrink_source(
    source: str,
    pes: int = 3,
    unroll_factor: int = 3,
    max_attempts: int = 250,
    predicate=None,
) -> str:
    """Minimize ``source`` while it keeps diverging; returns the best form.

    ``predicate`` defaults to "the harness still reports a divergence"; tests
    inject their own to exercise the reducer without needing a live bug.
    """
    from repro.fuzz.harness import run_source
    from repro.lang.errors import LangError
    from repro.lang.parser import parse_program

    def still_diverges(candidate: str) -> bool:
        if predicate is not None:
            return predicate(candidate)
        return run_source(
            candidate, pes=pes, unroll_factor=unroll_factor
        ).diverged

    try:
        best_program = parse_program(source)
    except LangError:
        return source
    best = source
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for _desc, reduced in _candidates(best_program):
            if attempts >= max_attempts:
                break
            attempts += 1
            candidate = unparse(reduced)
            if still_diverges(candidate):
                best, best_program = candidate, reduced
                improved = True
                break  # restart candidate enumeration on the smaller program
    return best
