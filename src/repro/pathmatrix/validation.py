"""Abstraction validation bookkeeping (paper section 3.3.1).

Imperative programs routinely break their declared abstractions *temporarily*
— the canonical example being the subtree move::

    p1->left = p2->left;   /* left is uniquely forward: now shared! */
    p2->left = NULL;       /* sharing removed: abstraction valid again */

Such a break is not an error.  The analysis records it as a
:class:`Violation` inside the path matrix state; while any violation touching
a type is outstanding, transformations relying on that type's ADDS properties
must not be applied.  A later statement that removes the offending edge (for
example overwriting or nulling the old parent's field) repairs the violation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable

#: suffix marking a violation parent whose variable was reassigned before the
#: violation was repaired; no source-level variable can ever carry this name,
#: so name-keyed repairs cannot match it
STALE_MARKER = "#stale"


@dataclass(frozen=True)
class Violation:
    """One outstanding break in a declared abstraction.

    ``kind`` is one of:

    * ``"sharing"`` — a node acquired two inbound edges along a uniquely
      forward field (DAG-ness where a tree was declared),
    * ``"cycle"``   — a store may have closed a cycle through a field
      declared forward/backward (acyclic),
    * ``"unknown_store"`` — a store through a pointer whose relationships are
      unknown, so the shape effect cannot be bounded.

    ``new_parent`` / ``old_parent`` name the pointer variables whose nodes
    hold the competing edges (for sharing); ``field`` is the pointer field
    involved; ``type_name`` the ADDS type whose declaration is violated.
    """

    kind: str
    type_name: str
    field: str
    new_parent: str = ""
    old_parent: str = ""
    line: int | None = None

    def describe(self) -> str:
        if self.kind == "sharing":
            return (
                f"sharing of {self.type_name}.{self.field}: nodes of "
                f"{self.new_parent!r} and {self.old_parent!r} share a {self.field} target"
            )
        if self.kind == "cycle":
            return (
                f"possible cycle through acyclic field {self.type_name}.{self.field} "
                f"created at {self.new_parent!r}"
            )
        return f"unbounded store through {self.new_parent!r}->{self.field}"

    def __str__(self) -> str:
        loc = f" (line {self.line})" if self.line is not None else ""
        return self.describe() + loc


class ValidationState:
    """The set of outstanding violations carried alongside a path matrix."""

    def __init__(self, violations: Iterable[Violation] = ()):
        self.violations: FrozenSet[Violation] = frozenset(violations)

    def copy(self) -> "ValidationState":
        return ValidationState(self.violations)

    # -- updates --------------------------------------------------------------
    def add(self, violation: Violation) -> None:
        self.violations = self.violations | {violation}

    def discard_where(self, predicate) -> None:
        self.violations = frozenset(v for v in self.violations if not predicate(v))

    def repair_parent_edge(self, parent_vars: Iterable[str], field: str) -> None:
        """An edge ``x->field`` was overwritten for every x in ``parent_vars``.

        Any sharing violation whose *old* parent is one of those variables is
        repaired (the competing edge no longer exists).  Cycle violations
        created by one of those variables through the same field are also
        repaired.
        """
        parents = set(parent_vars)
        self.discard_where(
            lambda v: v.field == field
            and (
                (v.kind == "sharing" and v.old_parent in parents)
                or (v.kind in ("cycle", "unknown_store") and v.new_parent in parents)
            )
        )

    def retarget_variable(self, var: str, replacement: str | None = None) -> None:
        """``var`` is being reassigned: it will name a *different* node.

        Violations are keyed by the variable names that held the competing
        edges, so a later repair through the reassigned ``var`` (now pointing
        elsewhere) must not match.  Each violation mentioning ``var`` is
        rewritten to ``replacement`` — another variable still naming the old
        node — when the caller found one; otherwise to an opaque stale name
        no repair can ever match, which keeps the violation outstanding (the
        sound direction: the offending edge still exists, we merely lost the
        name of its source node).
        """
        if not self.violations:
            return
        stale = replacement if replacement is not None else var + STALE_MARKER
        updated = set()
        for v in self.violations:
            if v.old_parent == var:
                v = replace(v, old_parent=stale)
            if v.new_parent == var:
                v = replace(v, new_parent=stale)
            updated.add(v)
        self.violations = frozenset(updated)

    # -- queries -----------------------------------------------------------------
    def is_valid(self) -> bool:
        return not self.violations

    def is_valid_for(self, type_name: str) -> bool:
        return not any(v.type_name == type_name for v in self.violations)

    def violations_for(self, type_name: str) -> list[Violation]:
        return [v for v in self.violations if v.type_name == type_name]

    # -- lattice --------------------------------------------------------------------
    def join(self, other: "ValidationState") -> "ValidationState":
        """At a control-flow merge a violation outstanding on either path remains."""
        return ValidationState(self.violations | other.violations)

    def equivalent(self, other: "ValidationState") -> bool:
        return self.violations == other.violations

    def __str__(self) -> str:
        if not self.violations:
            return "valid"
        return "; ".join(str(v) for v in sorted(self.violations, key=str))

    def __len__(self) -> int:
        return len(self.violations)
