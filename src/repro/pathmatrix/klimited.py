"""A k-limited storage-graph analysis, after Jones & Muchnick [JM81].

This is the structure-estimation baseline the paper criticizes in section
2.1: dynamically allocated structures are approximated by a finite graph in
which every node further than ``k`` links away from a program variable is
merged into a *summary node*.  The summary node's outgoing edges point back
at itself, so any list or tree longer/deeper than ``k`` acquires an abstract
cycle — "making it difficult to distinguish list or tree-like data
structures from data structures that truly contain cycles".  As a result a
traversal ``p = p->next`` over a long list cannot be proven to visit distinct
nodes, and the traversal loops of the Barnes–Hut program cannot be
parallelized from this abstraction alone.

The implementation is an abstract interpretation over the same CFGs used by
the path-matrix analysis:

* abstract locations are allocation sites (plus one summary location),
* variables map to sets of abstract locations,
* heap edges map (location, field) to sets of locations,
* after every transfer step the graph is re-limited to depth ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Assign,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FunctionDecl,
    IndexAccess,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    VarDecl,
    While,
    collect_pointer_variables,
    iter_statements,
)
from repro.lang.cfg import build_cfg
from repro.pathmatrix.alias import AccessPath, AliasAnswer


#: the single summary location all k-limited nodes collapse into
SUMMARY = "<summary>"
#: abstract location representing "some node we know nothing about"
UNKNOWN = "<unknown>"

MAX_FIXPOINT_ITERATIONS = 64


@dataclass
class StorageGraph:
    """One abstract storage graph (the analysis state at a program point)."""

    k: int = 2
    #: variable -> set of abstract locations (empty set == definitely NULL)
    var_targets: dict[str, frozenset[str]] = field(default_factory=dict)
    #: (location, field) -> set of abstract locations
    edges: dict[tuple[str, str], frozenset[str]] = field(default_factory=dict)

    # -- basic operations -----------------------------------------------------
    def copy(self) -> "StorageGraph":
        return StorageGraph(k=self.k, var_targets=dict(self.var_targets), edges=dict(self.edges))

    def targets(self, var: str) -> frozenset[str]:
        return self.var_targets.get(var, frozenset({UNKNOWN}))

    def set_var(self, var: str, locations: frozenset[str]) -> None:
        self.var_targets[var] = locations

    def successors(self, location: str, field_name: str) -> frozenset[str]:
        if location in (SUMMARY, UNKNOWN):
            # the summary node's fields point anywhere the summary covers,
            # including itself — this is exactly where spurious cycles appear
            return frozenset({SUMMARY})
        return self.edges.get((location, field_name), frozenset())

    def add_edge(self, location: str, field_name: str, targets: frozenset[str]) -> None:
        if location in (SUMMARY, UNKNOWN):
            return
        key = (location, field_name)
        self.edges[key] = self.edges.get(key, frozenset()) | targets

    def strong_update(self, location: str, field_name: str, targets: frozenset[str]) -> None:
        if location in (SUMMARY, UNKNOWN):
            return
        self.edges[(location, field_name)] = targets

    # -- k-limiting ----------------------------------------------------------------
    def limit(self) -> None:
        """Merge every location deeper than ``k`` links from a variable into SUMMARY."""
        depth: dict[str, int] = {}
        frontier: list[tuple[str, int]] = []
        for locs in self.var_targets.values():
            for loc in locs:
                if loc not in (SUMMARY, UNKNOWN) and depth.get(loc, self.k + 1) > 0:
                    depth[loc] = 0
                    frontier.append((loc, 0))
        while frontier:
            loc, d = frontier.pop()
            if d >= self.k:
                continue
            for (src, _fld), targets in list(self.edges.items()):
                if src != loc:
                    continue
                for t in targets:
                    if t in (SUMMARY, UNKNOWN):
                        continue
                    if depth.get(t, self.k + 2) > d + 1:
                        depth[t] = d + 1
                        frontier.append((t, d + 1))
        keep = {loc for loc, d in depth.items() if d <= self.k}

        def remap(locations: frozenset[str]) -> frozenset[str]:
            return frozenset(loc if loc in keep or loc in (SUMMARY, UNKNOWN) else SUMMARY
                             for loc in locations)

        self.var_targets = {v: remap(locs) for v, locs in self.var_targets.items()}
        new_edges: dict[tuple[str, str], frozenset[str]] = {}
        for (src, fld), targets in self.edges.items():
            if src not in keep:
                continue  # edges out of summarized nodes are implicit self-loops
            new_edges[(src, fld)] = remap(targets)
        self.edges = new_edges

    # -- lattice -----------------------------------------------------------------
    def join(self, other: "StorageGraph") -> "StorageGraph":
        result = StorageGraph(k=self.k)
        for var in set(self.var_targets) | set(other.var_targets):
            mine = self.var_targets.get(var)
            theirs = other.var_targets.get(var)
            if mine is None:
                result.var_targets[var] = theirs or frozenset()
            elif theirs is None:
                result.var_targets[var] = mine
            else:
                result.var_targets[var] = mine | theirs
        for key in set(self.edges) | set(other.edges):
            result.edges[key] = self.edges.get(key, frozenset()) | other.edges.get(
                key, frozenset()
            )
        result.limit()
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StorageGraph)
            and self.var_targets == other.var_targets
            and self.edges == other.edges
        )

    # -- alias queries ----------------------------------------------------------
    def may_alias(self, a: str, b: str) -> bool:
        if a == b:
            return bool(self.targets(a))
        ta, tb = self.targets(a), self.targets(b)
        if not ta or not tb:
            return False
        if UNKNOWN in ta or UNKNOWN in tb:
            return True
        common = ta & tb
        if common:
            return True
        # two pointers into the summary region may refer to the same node
        return SUMMARY in ta and SUMMARY in tb

    def must_alias(self, a: str, b: str) -> bool:
        if a == b:
            return bool(self.targets(a))
        ta, tb = self.targets(a), self.targets(b)
        return (
            len(ta) == 1
            and ta == tb
            and SUMMARY not in ta
            and UNKNOWN not in ta
        )

    def describe(self) -> str:
        lines = ["storage graph:"]
        for var, locs in sorted(self.var_targets.items()):
            lines.append(f"  {var} -> {{{', '.join(sorted(locs)) or 'NULL'}}}")
        for (src, fld), targets in sorted(self.edges.items()):
            lines.append(f"  {src}.{fld} -> {{{', '.join(sorted(targets))}}}")
        return "\n".join(lines)


class KLimitedAnalysis:
    """Run the k-limited storage-graph analysis over one function."""

    def __init__(self, program: Program, k: int = 2):
        self.program = program
        self.k = k

    def _pointer_vars(self, func: FunctionDecl) -> set[str]:
        pointer_vars = collect_pointer_variables(func, self.program)
        for p in func.params:
            pointer_vars.add(p.name)
        return pointer_vars

    def initial_state(self, func: FunctionDecl) -> StorageGraph:
        state = StorageGraph(k=self.k)
        for p in func.params:
            state.set_var(p.name, frozenset({UNKNOWN}))
        return state

    # -- transfer ---------------------------------------------------------------
    def transfer(self, state: StorageGraph, stmt: Stmt, pointer_vars: set[str]) -> StorageGraph:
        result = state.copy()
        if isinstance(stmt, VarDecl):
            if stmt.init is not None and stmt.name in pointer_vars:
                self._assign(result, stmt.name, stmt.init, stmt.line)
            elif stmt.name in pointer_vars:
                result.set_var(stmt.name, frozenset())
        elif isinstance(stmt, Assign):
            if stmt.target in pointer_vars:
                self._assign(result, stmt.target, stmt.value, stmt.line)
        elif isinstance(stmt, FieldAssign):
            self._store(result, stmt, pointer_vars)
        result.limit()
        return result

    def _assign(self, state: StorageGraph, target: str, value: Expr, line: int | None) -> None:
        if isinstance(value, NullLit):
            state.set_var(target, frozenset())
            return
        if isinstance(value, New):
            site = f"alloc@{line if line is not None else 'x'}:{value.type_name}"
            state.set_var(target, frozenset({site}))
            return
        if isinstance(value, Name):
            state.set_var(target, state.targets(value.ident))
            return
        load = _as_field_load(value)
        if load is not None and isinstance(load[0], Name):
            base, field_name = load[0].ident, load[1]
            targets: set[str] = set()
            for loc in state.targets(base):
                targets |= state.successors(loc, field_name)
            state.set_var(target, frozenset(targets) if targets else frozenset({SUMMARY}))
            return
        # calls and arbitrary expressions: unknown result
        state.set_var(target, frozenset({UNKNOWN}))

    def _store(self, state: StorageGraph, stmt: FieldAssign, pointer_vars: set[str]) -> None:
        if not isinstance(stmt.base, Name):
            return
        base_locs = state.targets(stmt.base.ident)
        value = stmt.value
        if isinstance(value, NullLit):
            new_targets: frozenset[str] = frozenset()
        elif isinstance(value, Name) and value.ident in pointer_vars:
            new_targets = state.targets(value.ident)
        elif isinstance(value, New):
            site = f"alloc@{stmt.line if stmt.line is not None else 'x'}:{value.type_name}"
            new_targets = frozenset({site})
        else:
            load = _as_field_load(value)
            if load is not None and isinstance(load[0], Name):
                collected: set[str] = set()
                for loc in state.targets(load[0].ident):
                    collected |= state.successors(loc, load[1])
                new_targets = frozenset(collected) if collected else frozenset({SUMMARY})
            else:
                # storing a non-pointer value: not a heap edge
                return
        concrete = [loc for loc in base_locs if loc not in (SUMMARY, UNKNOWN)]
        if len(base_locs) == 1 and len(concrete) == 1:
            state.strong_update(concrete[0], stmt.field, new_targets)
        else:
            for loc in concrete:
                state.add_edge(loc, stmt.field, new_targets)

    # -- fixed point ----------------------------------------------------------------
    def analyze_function(self, name: str) -> dict[int, StorageGraph]:
        """Return the storage graph at every basic-block exit.

        Driven by the shared worklist engine (see
        :mod:`repro.pathmatrix.worklist`): only blocks whose inputs changed
        are re-transferred.
        """
        from repro.pathmatrix.worklist import solve_worklist

        func = self.program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        pointer_vars = self._pointer_vars(func)
        cfg = build_cfg(func)
        init = self.initial_state(func)

        def transfer(block, state: StorageGraph) -> StorageGraph:
            for stmt in block.statements:
                state = self.transfer(state, stmt, pointer_vars)
            return state

        _entry, exit_, _stats = solve_worklist(
            cfg,
            init,
            transfer,
            StorageGraph.join,
            StorageGraph.__eq__,
            max_iterations=MAX_FIXPOINT_ITERATIONS,
        )
        return exit_

    def final_state(self, name: str) -> StorageGraph:
        func = self.program.function_named(name)
        assert func is not None
        cfg = build_cfg(func)
        states = self.analyze_function(name)
        return states.get(cfg.exit, self.initial_state(func))

    def state_before_loop(self, name: str, loop: While | None = None) -> StorageGraph:
        """The state at the entry of the first (or given) while loop of ``name``."""
        func = self.program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        if loop is None:
            loops = [s for s in iter_statements(func.body) if isinstance(s, While)]
            if not loops:
                raise ValueError(f"function {name!r} contains no while loop")
            loop = loops[0]
        cfg = build_cfg(func)
        states = self.analyze_function(name)
        for block in cfg.blocks:
            if block.loop_header_of is loop:
                preds = [states[p] for p in block.predecessors if p in states]
                if preds:
                    merged = preds[0]
                    for other in preds[1:]:
                        merged = merged.join(other)
                    return merged
        return self.final_state(name)

    def loop_traversal_independent(self, name: str, loop: While | None = None) -> bool:
        """Can the analysis prove ``p = p->f`` visits a new node each iteration?

        With k-limiting the answer is "no" as soon as the traversal reaches
        the summary region — the limitation the paper's approach removes.
        """
        func = self.program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        if loop is None:
            loops = [s for s in iter_statements(func.body) if isinstance(s, While)]
            if not loops:
                return True
            loop = loops[0]
        state = self.state_before_loop(name, loop)
        pointer_vars = self._pointer_vars(func)
        # simulate one iteration with a primed copy
        updates: dict[str, str] = {}
        for stmt in iter_statements(loop.body):
            if (
                isinstance(stmt, Assign)
                and isinstance(stmt.value, FieldAccess)
                and isinstance(stmt.value.base, Name)
                and stmt.value.base.ident == stmt.target
            ):
                updates[stmt.target] = stmt.value.field
        if not updates:
            return True
        sim = state.copy()
        primes = {}
        for var in updates:
            primed = var + "'"
            primes[var] = primed
            sim.set_var(primed, sim.targets(var))
        for stmt in loop.body.statements:
            sim = self.transfer(sim, stmt, pointer_vars | set(primes.values()))
        return all(not sim.may_alias(primes[var], var) for var in updates)


class KLimitedOracle:
    """Alias oracle backed by a k-limited storage graph."""

    name = "k-limited"

    def __init__(self, state: StorageGraph):
        self.state = state

    def alias(self, a: str, b: str) -> AliasAnswer:
        if self.state.must_alias(a, b):
            return AliasAnswer.MUST
        if self.state.may_alias(a, b):
            return AliasAnswer.MAY
        return AliasAnswer.NO

    def may_alias(self, a: str, b: str) -> bool:
        return self.state.may_alias(a, b)

    def must_alias(self, a: str, b: str) -> bool:
        return self.state.must_alias(a, b)

    def access_conflict(self, a: AccessPath, b: AccessPath) -> AliasAnswer:
        if a.field is None and b.field is None:
            return AliasAnswer.MUST if a.var == b.var else AliasAnswer.NO
        if a.field is None or b.field is None:
            return AliasAnswer.NO
        if a.field != "*" and b.field != "*" and a.field != b.field:
            return AliasAnswer.NO
        return self.alias(a.var, b.var)

    def may_conflict(self, a: AccessPath, b: AccessPath) -> bool:
        return self.access_conflict(a, b).possible

    def not_aliased_pairs(self) -> list[tuple[str, str]]:
        variables = [v for v in self.state.var_targets if not v.endswith("'")]
        pairs = []
        for i, a in enumerate(variables):
            for b in variables[i + 1:]:
                if not self.may_alias(a, b):
                    pairs.append((a, b))
        return pairs

    def precision_score(self) -> float:
        variables = [v for v in self.state.var_targets if not v.endswith("'")]
        total = 0
        proven = 0
        for i, a in enumerate(variables):
            for b in variables[i + 1:]:
                total += 1
                if not self.may_alias(a, b):
                    proven += 1
        return proven / total if total else 1.0


def _as_field_load(value: Expr):
    if isinstance(value, FieldAccess):
        return value.base, value.field
    if isinstance(value, IndexAccess) and isinstance(value.base, FieldAccess):
        return value.base.base, value.base.field
    return None
