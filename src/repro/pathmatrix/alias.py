"""Alias-query interface over path matrix analysis results.

Transformation passes ask questions like "may ``p->force`` and ``q->mass``
refer to the same memory location?".  :class:`AliasOracle` answers them from
a :class:`~repro.pathmatrix.matrix.PathMatrix`, falling back to conservative
answers for variables the matrix does not track.  The same interface is
implemented by the baselines (:mod:`repro.pathmatrix.baseline`,
:mod:`repro.pathmatrix.klimited`) so precision comparisons can swap oracles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.pathmatrix.matrix import PathMatrix


class AliasAnswer(enum.Enum):
    """Three-valued answer to an alias query."""

    NO = "no"
    MAY = "may"
    MUST = "must"

    @property
    def possible(self) -> bool:
        return self is not AliasAnswer.NO

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AccessPath:
    """A memory access of the form ``var`` or ``var->field``."""

    var: str
    field: str | None = None

    def __str__(self) -> str:
        return self.var if self.field is None else f"{self.var}->{self.field}"


class AliasOracle:
    """Answer alias queries from a path matrix."""

    name = "adds+gpm"

    def __init__(self, matrix: PathMatrix):
        self.matrix = matrix

    # -- variable-level queries ----------------------------------------------
    def alias(self, a: str, b: str) -> AliasAnswer:
        if a == b:
            return AliasAnswer.MUST if not self.matrix.is_nil(a) else AliasAnswer.NO
        if a not in self.matrix.variables or b not in self.matrix.variables:
            return AliasAnswer.MAY
        if self.matrix.must_alias(a, b):
            return AliasAnswer.MUST
        if self.matrix.may_alias(a, b):
            return AliasAnswer.MAY
        return AliasAnswer.NO

    def may_alias(self, a: str, b: str) -> bool:
        return self.alias(a, b).possible

    def must_alias(self, a: str, b: str) -> bool:
        return self.alias(a, b) is AliasAnswer.MUST

    # -- access-path queries -----------------------------------------------------
    def access_conflict(self, a: AccessPath, b: AccessPath) -> AliasAnswer:
        """Could the two accesses touch the same memory location?

        ``var->f`` and ``var2->g`` conflict only when the fields are the same
        (or one is the wildcard ``*``) and the base pointers may alias.
        A bare variable access (``var``) conflicts with nothing on the heap —
        it is a register/stack access.
        """
        if a.field is None or b.field is None:
            # plain variable accesses never overlap heap fields and two plain
            # variables are distinct storage locations unless textually equal
            if a.field is None and b.field is None:
                return AliasAnswer.MUST if a.var == b.var else AliasAnswer.NO
            return AliasAnswer.NO
        if a.field != "*" and b.field != "*" and a.field != b.field:
            return AliasAnswer.NO
        return self.alias(a.var, b.var)

    def may_conflict(self, a: AccessPath, b: AccessPath) -> bool:
        return self.access_conflict(a, b).possible

    # -- reporting ------------------------------------------------------------------
    def not_aliased_pairs(self) -> list[tuple[str, str]]:
        """All variable pairs proven non-aliasing (used by precision reports)."""
        pairs = []
        variables = self.matrix.variables
        for i, a in enumerate(variables):
            for b in variables[i + 1:]:
                if not self.may_alias(a, b):
                    pairs.append((a, b))
        return pairs

    def precision_score(self) -> float:
        """Fraction of distinct variable pairs proven non-aliasing (0..1)."""
        variables = [v for v in self.matrix.variables if not v.startswith("@")]
        total = 0
        proven = 0
        for i, a in enumerate(variables):
            for b in variables[i + 1:]:
                total += 1
                if not self.may_alias(a, b):
                    proven += 1
        return proven / total if total else 1.0
