"""Dataflow driver for general path matrix analysis.

:class:`PathMatrixAnalysis` runs the transfer rules of
:mod:`repro.pathmatrix.rules` to a fixed point over a function's CFG and
exposes the resulting matrices per program point.  It also implements the
*primed-variable* loop analysis the paper uses to argue about loop-carried
dependences: a copy ``p'`` of each pointer variable updated in the loop body
is introduced at the top of the body (aliasing the current value), the body's
transfer functions are applied once, and the resulting entry ``PM[p'][p]``
tells us how the values of ``p`` in consecutive iterations relate — a
definite acyclic path with no alias possibility means consecutive (and by
transitivity, all distinct) iterations operate on distinct nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adds.declaration import program_adds_types
from repro.lang.ast_nodes import (
    Assign,
    Block,
    Call,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    Name,
    ParallelFor,
    Program,
    Return,
    Stmt,
    VarDecl,
    While,
    collect_pointer_variables,
    iter_statements,
)
from repro.lang.cfg import CFG, build_cfg
from repro.lang.typecheck import check_program
from repro.pathmatrix.interproc import (
    FunctionSummary,
    _call_argument_map,
    condensed_sccs,
    direct_summaries,
    summarize_scc,
)
from repro.pathmatrix.matrix import PathMatrix, cellwise_equivalent
from repro.pathmatrix.paths import PathEntry
from repro.pathmatrix.rules import TransferContext, apply_block, apply_statement
from repro.pathmatrix.worklist import solve_roundrobin, solve_worklist


MAX_FIXPOINT_ITERATIONS = 64

#: process-wide count of fixpoints actually solved (memo hits excluded).
#: The incremental engine's acceptance test — "editing one leaf re-runs
#: exactly one fixpoint" — asserts against deltas of this counter.
_FIXPOINT_RUNS = 0


def fixpoint_run_count() -> int:
    """Total path-matrix fixpoints solved in this process so far."""
    return _FIXPOINT_RUNS


class AnalysisError(RuntimeError):
    """A path-matrix analysis could not be completed.

    Raised for failures the analysis knows how to classify (e.g. a function
    whose fixpoint diverges past the iteration cap).  Programming errors
    inside the analysis deliberately propagate as their original exception
    types so they surface in tests instead of being swallowed.
    """


@dataclass
class AnalysisResult:
    """Path matrices for one analyzed function."""

    function: str
    cfg: CFG
    ctx: TransferContext
    entry_matrices: dict[int, PathMatrix] = field(default_factory=dict)
    exit_matrices: dict[int, PathMatrix] = field(default_factory=dict)
    #: whole-CFG sweeps until convergence (both engines; the worklist engine
    #: skips stable blocks within a sweep — see ``blocks_transferred``)
    iterations: int = 0
    #: total transfer-function applications — comparable across solvers
    blocks_transferred: int = 0
    #: which fixpoint engine produced this result
    solver: str = "worklist"

    def matrix_at_entry(self, block_index: int) -> PathMatrix:
        return self.entry_matrices[block_index]

    def matrix_at_exit(self, block_index: int) -> PathMatrix:
        return self.exit_matrices[block_index]

    def final_matrix(self) -> PathMatrix:
        try:
            return self.exit_matrices[self.cfg.exit]
        except KeyError:
            raise AnalysisError(
                f"analysis of {self.function!r} never reached the exit block "
                "(the function may not terminate normally)"
            ) from None

    def matrix_before_loop(self, loop: While) -> PathMatrix:
        """The matrix at the entry of ``loop``'s header block."""
        for block in self.cfg.blocks:
            if block.loop_header_of is loop:
                return self.entry_matrices[block.index]
        raise KeyError(f"loop at line {loop.line} not found in CFG of {self.function}")

    def abstraction_valid_everywhere(self, type_name: str) -> bool:
        """True when no program point carries an outstanding violation for ``type_name``."""
        for pm in list(self.entry_matrices.values()) + list(self.exit_matrices.values()):
            if not pm.validation.is_valid_for(type_name):
                return False
        return True

    def abstraction_valid_at_exit(self, type_name: str) -> bool:
        return self.final_matrix().validation.is_valid_for(type_name)

    def violations(self) -> list:
        return sorted(set(self.final_matrix().validation.violations), key=str)


class PathMatrixAnalysis:
    """Run general path matrix analysis over the functions of a program."""

    def __init__(
        self,
        program: Program,
        use_adds: bool = True,
        compute_summaries: bool = True,
        memoize_results: bool = False,
        summaries: dict[str, FunctionSummary] | None = None,
    ):
        self.program = program
        self.use_adds = use_adds
        # memoization is safe while summaries are being refined below because
        # every preserves_abstraction flip invalidates the affected
        # component's entries (see refine_preservation).  The batch driver
        # opts in (it re-analyzes the same functions per loop); timing code
        # must NOT (a memo hit would be measured instead of the solver).
        self._result_memo: "dict[tuple[str, str], AnalysisResult] | None" = (
            {} if memoize_results else None
        )
        self.check_result = check_program(program)
        self.adds_types = program_adds_types(program)
        if summaries is not None:
            # an injected, already-final table: the staged incremental engine
            # resolves summaries itself (from cached artifacts where
            # possible) and hands the finished table in
            self.summaries = summaries
        elif compute_summaries:
            self.summaries = {}
            self._resolve_summaries()
        else:
            self.summaries = {}

    # -- context construction ------------------------------------------------
    def _context_for(self, func: FunctionDecl) -> TransferContext:
        env = self.check_result.environments.get(func.name)
        pointer_vars = collect_pointer_variables(func, self.program)
        if env is not None:
            pointer_vars |= env.pointer_variables()
        # Track parameters that are used as pointers: dereferenced (directly
        # or through a copy — the type environment's backward propagation
        # catches those), or forwarded to a pointer position of a callee.
        # Scalar parameters (the `c` of the scaling loop, `theta`, `dt`) stay
        # out of the matrix, as in the paper's examples.
        summary = self.summaries.get(func.name)
        for i, p in enumerate(func.params):
            if summary is not None and i in summary.pointer_params:
                pointer_vars.add(p.name)
            elif env is not None and env.pointee_record(p.name) is not None:
                pointer_vars.add(p.name)
            elif summary is None and env is None:
                pointer_vars.add(p.name)
        var_types: dict[str, str] = {}
        if env is not None:
            for var in pointer_vars:
                rec = env.pointee_record(var)
                if rec is not None:
                    var_types[var] = rec
        return TransferContext(
            program=self.program,
            adds_types=self.adds_types,
            var_types=var_types,
            pointer_vars=pointer_vars,
            summaries=self.summaries,
            use_adds=self.use_adds,
        )

    def context_for(self, name: str) -> TransferContext:
        """The transfer context ``analyze_function(name)`` would run under."""
        func = self.program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        return self._context_for(func)

    def initial_matrix(self, func: FunctionDecl, ctx: TransferContext) -> PathMatrix:
        """The matrix assumed on entry to ``func``.

        Pointer parameters may alias each other (``=?``) unless they point to
        different record types; locals start out untracked until assigned.
        """
        params = [p.name for p in func.params if p.name in ctx.pointer_vars]
        pm = PathMatrix(params)
        for i, a in enumerate(params):
            for b in params[i + 1:]:
                ta, tb = ctx.type_of_var(a), ctx.type_of_var(b)
                if ta is not None and tb is not None and ta != tb and "__any__" not in (ta, tb):
                    continue
                pm.set(a, b, PathEntry.possible_alias())
                pm.set(b, a, PathEntry.possible_alias())
        return pm

    # -- the fixed point -----------------------------------------------------
    def analyze_function(
        self,
        name: str,
        initial: PathMatrix | None = None,
        solver: str = "worklist",
    ) -> AnalysisResult:
        """Run the fixpoint for one function.

        ``solver`` selects the engine: ``"worklist"`` (default, fast) or
        ``"roundrobin"`` (the seed's sweep-everything engine, retained as the
        golden/performance baseline — it re-applies the original
        copy-per-statement transfer and dense matrix comparison).
        """
        memo_key = (name, solver) if initial is None else None
        if memo_key is not None and self._result_memo is not None:
            memoized = self._result_memo.get(memo_key)
            if memoized is not None:
                return memoized
        func = self.program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        ctx = self._context_for(func)
        cfg = build_cfg(func)
        init = initial.copy() if initial is not None else self.initial_matrix(func, ctx)
        result = AnalysisResult(function=name, cfg=cfg, ctx=ctx, solver=solver)

        join = PathMatrix.join
        if solver == "worklist":
            def transfer(block, state):
                return apply_block(state, block.statements, ctx)

            entry, exit_, stats = solve_worklist(
                cfg, init, transfer, join, PathMatrix.equivalent,
                max_iterations=MAX_FIXPOINT_ITERATIONS,
            )
        elif solver == "roundrobin":
            def transfer(block, state):
                for stmt in block.statements:
                    state = apply_statement(state, stmt, ctx)
                return state

            entry, exit_, stats = solve_roundrobin(
                cfg, init, transfer, join, cellwise_equivalent,
                max_iterations=MAX_FIXPOINT_ITERATIONS,
            )
        else:
            raise ValueError(f"unknown solver {solver!r}")

        global _FIXPOINT_RUNS
        _FIXPOINT_RUNS += 1
        result.iterations = stats.iterations
        result.blocks_transferred = stats.blocks_transferred
        result.entry_matrices = entry
        result.exit_matrices = exit_
        if memo_key is not None and self._result_memo is not None:
            self._result_memo[memo_key] = result
        return result

    def analyze_all(self, solver: str = "worklist") -> dict[str, AnalysisResult]:
        return {
            f.name: self.analyze_function(f.name, solver=solver)
            for f in self.program.functions
        }

    # -- abstraction-preservation of whole functions -----------------------------
    def _transitive_callees(self, name: str) -> set[str]:
        """Every function reachable from ``name`` through the call graph."""
        seen: set[str] = set()
        summary = self.summaries.get(name)
        stack = list(summary.callees) if summary is not None else []
        while stack:
            callee = stack.pop()
            if callee in seen:
                continue
            seen.add(callee)
            callee_summary = self.summaries.get(callee)
            if callee_summary is not None:
                stack.extend(callee_summary.callees)
        return seen

    def _resolve_summaries(self) -> None:
        """Resolve transitive summaries bottom-up over the SCC condensation.

        Produces the same table as :func:`summarize_program` followed by the
        preservation marking, but one strongly connected component at a time:
        each component's summaries (effects *and* ``preserves_abstraction``)
        are final before any caller component is touched.  This is exactly
        the unit the staged incremental engine content-addresses and caches,
        so computing it the same way here keeps the inline and incremental
        paths from drifting apart.
        """
        direct = direct_summaries(self.program)
        call_maps = _call_argument_map(self.program)
        order = [f.name for f in self.program.functions]
        callee_graph = {name: set(direct[name].callees) for name in order}
        for members in condensed_sccs(callee_graph, order):
            resolved = summarize_scc(
                self.program,
                members,
                self.summaries,
                direct=direct,
                call_maps=call_maps,
            )
            self.summaries.update(resolved)
            self.refine_preservation(members)

    def refine_preservation(self, members: list[str]) -> None:
        """Settle ``preserves_abstraction`` for one resolved component.

        A function preserves the abstractions if its own path-matrix analysis
        finds no outstanding violation at its exit point.  (Temporary breaks
        inside the body — e.g. the subtree sharing during ``insert_particle``
        — are fine.)  Members start optimistically ``True``; shape-changing
        members are analyzed and flipped to ``False`` when invalid.  Callee
        components below are already final, so only intra-component
        dependencies can cascade, flips are one-directional (a ``False``
        callee flag only ever makes a caller's verdict worse), and the round
        count is bounded by the member count.  A flip invalidates the
        memoized results of the whole component — they were computed under
        the stale flag.  Only :class:`AnalysisError` is treated as "does not
        preserve"; unexpected exceptions propagate so real bugs surface.
        """
        for name in members:
            summary = self.summaries.get(name)
            if summary is not None:
                summary.preserves_abstraction = True
        changers = [
            name
            for name in members
            if (s := self.summaries.get(name)) is not None and s.rearranges_shape
        ]
        if not changers:
            return
        self.invalidate_memo(members)
        for _ in range(len(changers) + 1):
            changed = False
            for name in changers:
                summary = self.summaries[name]
                try:
                    result = self.analyze_function(name)
                except AnalysisError:
                    ok = False
                else:
                    ok = result.final_matrix().validation.is_valid()
                if summary.preserves_abstraction != ok:
                    summary.preserves_abstraction = ok
                    changed = True
            if not changed:
                break
            self.invalidate_memo(members)

    def invalidate_memo(self, names) -> None:
        """Drop memoized results for ``names`` — their inputs changed."""
        if self._result_memo is None:
            return
        drop = set(names)
        for key in [k for k in self._result_memo if k[0] in drop]:
            del self._result_memo[key]


# ---------------------------------------------------------------------------
# loop analysis with primed variables
# ---------------------------------------------------------------------------
@dataclass
class LoopDependenceReport:
    """What the analysis concluded about one traversal loop.

    ``induction_vars`` maps each pointer variable updated by the loop to the
    field it traverses; ``independent_vars`` are those proven to point to a
    different node on every iteration (the ``PM[p'][p]`` test).
    ``writes``/``reads`` list the (variable, field) access paths of the body.
    ``carried_dependences`` lists human-readable reasons parallelization
    would be unsafe; an empty list together with a valid abstraction means
    the loop is parallelizable (up to the sequential pointer-chasing itself).
    """

    loop_line: int | None
    induction_vars: dict[str, str] = field(default_factory=dict)
    independent_vars: set[str] = field(default_factory=set)
    writes: list[tuple[str, str]] = field(default_factory=list)
    reads: list[tuple[str, str]] = field(default_factory=list)
    carried_dependences: list[str] = field(default_factory=list)
    abstraction_valid: bool = True
    matrix_at_entry: PathMatrix | None = None
    matrix_after_body: PathMatrix | None = None

    @property
    def parallelizable(self) -> bool:
        return self.abstraction_valid and not self.carried_dependences

    def describe(self) -> str:
        lines = [f"loop at line {self.loop_line}:"]
        for var, fld in self.induction_vars.items():
            status = "independent" if var in self.independent_vars else "possibly repeating"
            lines.append(f"  traversal {var} = {var}->{fld}: {status}")
        lines.append(f"  abstraction valid: {self.abstraction_valid}")
        if self.carried_dependences:
            lines.append("  loop-carried dependences:")
            for dep in self.carried_dependences:
                lines.append(f"    - {dep}")
        else:
            lines.append("  no loop-carried dependences (apart from the traversal itself)")
        lines.append(f"  parallelizable: {self.parallelizable}")
        return "\n".join(lines)


PRIME_SUFFIX = "'"


def _find_traversal_updates(body: Block) -> dict[str, str]:
    """Pointer-induction updates ``p = p->f`` appearing directly in ``body``."""
    updates: dict[str, str] = {}
    for stmt in iter_statements(body):
        if isinstance(stmt, Assign) and isinstance(stmt.value, FieldAccess):
            value = stmt.value
            if isinstance(value.base, Name) and value.base.ident == stmt.target:
                updates[stmt.target] = value.field
    return updates


def _collect_accesses(
    body: Block, summaries: dict[str, FunctionSummary]
) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
    """(writes, reads) as (variable, field) pairs, including callee effects."""
    writes: list[tuple[str, str]] = []
    reads: list[tuple[str, str]] = []
    for stmt in iter_statements(body):
        if isinstance(stmt, FieldAssign) and isinstance(stmt.base, Name):
            writes.append((stmt.base.ident, stmt.field))
        for node in stmt.walk():
            if isinstance(node, FieldAccess) and isinstance(node.base, Name):
                is_store_target = (
                    isinstance(stmt, FieldAssign)
                    and node is not None
                    and isinstance(stmt.base, Name)
                    and node.base.ident == stmt.base.ident
                    and node.field == stmt.field
                )
                if not is_store_target:
                    reads.append((node.base.ident, node.field))
            if isinstance(node, Call):
                summary = summaries.get(node.func)
                if summary is None:
                    continue
                for i, arg in enumerate(node.args):
                    if not isinstance(arg, Name):
                        continue
                    if summary.pointer_params and i not in summary.pointer_params:
                        continue  # a scalar argument: no heap accesses through it
                    if i in summary.written_params or summary.writes_through_unknown:
                        # sorted: set order is hash-randomized, and access
                        # order reaches the report (conflict reasons)
                        for fld in sorted(
                            summary.data_fields_written | summary.pointer_fields_written
                        ):
                            writes.append((arg.ident, fld))
                    # fields the callee may read through any reachable node
                    if summary.fields_read:
                        for fld in sorted(summary.fields_read):
                            reads.append((arg.ident, fld))
                    else:
                        reads.append((arg.ident, "*"))
    return writes, reads


def _expr_reads(expr) -> set[str]:
    """Every variable name referenced anywhere inside an expression."""
    return {n.ident for n in expr.walk() if isinstance(n, Name)}


def _is_induction_update(stmt: Stmt) -> bool:
    """``p = p->f`` — the pointer-chasing update form."""
    return (
        isinstance(stmt, Assign)
        and isinstance(stmt.value, FieldAccess)
        and isinstance(stmt.value.base, Name)
        and stmt.value.base.ident == stmt.target
    )


def _scan_scalar_reads(
    statements: list[Stmt],
    priv: set[str],
    tracked: set[str],
    flagged: dict[str, int | None],
) -> set[str]:
    """Walk a statement sequence in execution order, flagging cross-iteration
    scalar reads.

    ``priv`` holds the variables already assigned *unconditionally* earlier
    in the same iteration; a read of a ``tracked`` variable outside ``priv``
    observes the previous iteration's value and is recorded in ``flagged``
    (name -> source line of the first such read).  Returns ``priv`` extended
    with the variables this sequence unconditionally assigns.  Assignments
    under a branch or inside a nested loop never extend the caller's ``priv``
    — the branch may not be taken, the loop may run zero times.
    """

    def flag(reads: set[str], line: int | None) -> None:
        for name in sorted((reads & tracked) - priv):
            flagged.setdefault(name, line)

    for stmt in statements:
        if isinstance(stmt, Assign):
            flag(_expr_reads(stmt.value), stmt.line)
            priv = priv | {stmt.target}
        elif isinstance(stmt, VarDecl):
            if stmt.init is not None:
                flag(_expr_reads(stmt.init), stmt.line)
            priv = priv | {stmt.name}  # an uninitialized declaration resets to NULL
        elif isinstance(stmt, FieldAssign):
            reads = _expr_reads(stmt.base) | _expr_reads(stmt.value)
            if stmt.index is not None:
                reads |= _expr_reads(stmt.index)
            flag(reads, stmt.line)
        elif isinstance(stmt, ExprStmt):
            flag(_expr_reads(stmt.expr), stmt.line)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                flag(_expr_reads(stmt.value), stmt.line)
        elif isinstance(stmt, Block):
            priv = _scan_scalar_reads(stmt.statements, priv, tracked, flagged)
        elif isinstance(stmt, If):
            flag(_expr_reads(stmt.cond), stmt.line)
            _scan_scalar_reads(stmt.then_body.statements, set(priv), tracked, flagged)
            if stmt.else_body is not None:
                _scan_scalar_reads(stmt.else_body.statements, set(priv), tracked, flagged)
        elif isinstance(stmt, While):
            # straight-line order within the body holds on every inner
            # iteration, so the body is scanned against the outer priv
            flag(_expr_reads(stmt.cond), stmt.line)
            _scan_scalar_reads(stmt.body.statements, set(priv), tracked, flagged)
        elif isinstance(stmt, (For, ParallelFor)):
            reads = _expr_reads(stmt.lo) | _expr_reads(stmt.hi)
            if stmt.step is not None:
                reads |= _expr_reads(stmt.step)
            flag(reads, stmt.line)
            _scan_scalar_reads(
                stmt.body.statements, priv | {stmt.var}, tracked, flagged
            )
        else:
            flag({n.ident for n in stmt.walk() if isinstance(n, Name)}, stmt.line)
    return priv


def _scalar_loop_dependences(
    func: FunctionDecl, loop: While, induction_vars: set[str]
) -> list[str]:
    """Loop-carried dependences through *scalar* frame variables.

    The heap conflict test only sees ``(variable, field)`` accesses, so a
    reduction like ``s = s + p->coef`` is invisible to it — yet the
    strip-mined iteration procedure receives frame variables by value, i.e.
    privatized, and such updates would silently be dropped.  A variable
    assigned in the body is safe only when it is privatizable: every read of
    it in an iteration is dominated by an unconditional assignment earlier
    in the same iteration, and its last value is dead after the loop.  The
    loop's pointer-induction variables (including those of nested loops) are
    exempt — their cross-iteration behaviour is exactly what the
    primed-variable matrix pass decides.
    """
    assigned: set[str] = set()
    for stmt in iter_statements(loop.body):
        if isinstance(stmt, Assign) and not _is_induction_update(stmt):
            assigned.add(stmt.target)
        elif isinstance(stmt, VarDecl):
            assigned.add(stmt.name)
        elif isinstance(stmt, (For, ParallelFor)):
            assigned.add(stmt.var)
    tracked = assigned - induction_vars
    if not tracked:
        return []

    flagged: dict[str, int | None] = {}
    # the condition runs at the top of every iteration, before any
    # assignment of that iteration
    for name in sorted(_expr_reads(loop.cond) & tracked):
        flagged.setdefault(name, loop.line)
    _scan_scalar_reads(loop.body.statements, set(), tracked, flagged)

    def at(line: int | None) -> str:
        return f" (line {line})" if line is not None else ""

    deps = [
        f"scalar variable {name!r} carries a value across iterations: "
        f"read{at(line)} before an unconditional assignment"
        for name, line in sorted(flagged.items())
    ]

    # last-value liveness: privatizing a scalar also drops its final value,
    # so a post-loop use of an assigned variable sequentializes the loop
    inside = {id(node) for node in loop.walk()}
    outside_reads = {
        node.ident
        for node in func.body.walk()
        if isinstance(node, Name) and id(node) not in inside
    }
    for name in sorted((tracked - set(flagged)) & outside_reads):
        deps.append(
            f"scalar variable {name!r} is assigned in the loop body and "
            f"referenced after the loop (last-value dependence)"
        )
    return deps


def analyze_loop_dependence(
    program: Program,
    function_name: str,
    loop: While | None = None,
    use_adds: bool = True,
    analysis: "PathMatrixAnalysis | None" = None,
) -> LoopDependenceReport:
    """Analyze a pointer-traversal loop for loop-carried dependences.

    ``loop`` defaults to the first ``while`` loop of the function.  The
    report's :attr:`~LoopDependenceReport.parallelizable` flag is the answer
    to "may the loop's iterations be executed in parallel (modulo the
    sequential traversal)?" — the question the strip-mining transformation
    of section 4.3.3 needs answered.

    Callers that already hold a :class:`PathMatrixAnalysis` of ``program``
    built with the same ``use_adds`` may pass it as ``analysis`` to reuse
    its summaries — and, when it was constructed with
    ``memoize_results=True``, its fixpoint results (the batch driver
    classifies many loops of one program).
    """
    if analysis is None:
        analysis = PathMatrixAnalysis(program, use_adds=use_adds)
    elif analysis.program is not program or analysis.use_adds != use_adds:
        raise ValueError(
            "the supplied analysis was built for a different program object "
            "or use_adds setting than this dependence query"
        )
    func = program.function_named(function_name)
    if func is None:
        raise KeyError(f"no function named {function_name!r}")
    if loop is None:
        loops = [s for s in iter_statements(func.body) if isinstance(s, While)]
        if not loops:
            raise ValueError(f"function {function_name!r} contains no while loop")
        loop = loops[0]

    result = analysis.analyze_function(function_name)
    ctx = result.ctx
    pm_entry = result.matrix_before_loop(loop)

    report = LoopDependenceReport(loop_line=loop.line, matrix_at_entry=pm_entry)
    report.induction_vars = _find_traversal_updates(loop.body)

    # abstraction validity at loop entry, restricted to the types whose ADDS
    # properties the traversal relies on
    relevant_types = set()
    for var in report.induction_vars:
        t = ctx.type_of_var(var)
        if t:
            relevant_types.add(t)
    if not relevant_types:
        relevant_types = set(analysis.adds_types)
    report.abstraction_valid = all(
        pm_entry.validation.is_valid_for(t) for t in relevant_types
    )

    # primed-variable pass over one loop body execution
    pm = pm_entry.copy()
    primes: dict[str, str] = {}
    for var in report.induction_vars:
        primed = var + PRIME_SUFFIX
        primes[var] = primed
        pm.ensure_variable(primed)
        pm.copy_variable(primed, var)
    for stmt in loop.body.statements:
        pm = _apply_nested(pm, stmt, ctx)
    report.matrix_after_body = pm

    for var, primed in primes.items():
        if pm.definitely_not_alias(primed, var):
            report.independent_vars.add(var)
        else:
            report.carried_dependences.append(
                f"traversal variable {var!r} may revisit a node "
                f"(PM[{primed}][{var}] allows aliasing)"
            )

    # cross-iteration conflicts between body accesses
    report.writes, report.reads = _collect_accesses(loop.body, analysis.summaries)
    report.carried_dependences.extend(
        _conflicts_across_iterations(pm, primes, report.writes, report.reads, ctx)
    )

    # dependences the heap conflict test cannot see: scalar frame variables
    report.carried_dependences.extend(
        _scalar_loop_dependences(func, loop, set(report.induction_vars))
    )

    # a write to a field some induction variable chases rewires the very
    # chain the parallel iterations would be distributed over
    traversal_fields = set(report.induction_vars.values())
    for var, fld in sorted({(v, f) for v, f in report.writes if f in traversal_fields}):
        report.carried_dependences.append(
            f"write to traversal field {var}->{fld} may relink the structure "
            f"being traversed"
        )
    if not report.abstraction_valid:
        report.carried_dependences.append(
            "ADDS abstraction not valid at loop entry; traversal properties unusable"
        )
    return report


def _apply_nested(pm: PathMatrix, stmt: Stmt, ctx: TransferContext) -> PathMatrix:
    """Apply a statement including (conservatively) nested control flow."""
    from repro.lang.ast_nodes import For, If, ParallelFor

    if isinstance(stmt, If):
        taken = pm
        for inner in stmt.then_body.statements:
            taken = _apply_nested(taken, inner, ctx)
        other = pm
        if stmt.else_body is not None:
            for inner in stmt.else_body.statements:
                other = _apply_nested(other, inner, ctx)
        return taken.join(other)
    if isinstance(stmt, (While, For, ParallelFor)):
        body_pm = pm
        for _ in range(2):  # small unrolled fixed point
            nxt = body_pm
            for inner in stmt.body.statements:
                nxt = _apply_nested(nxt, inner, ctx)
            nxt = body_pm.join(nxt)
            if nxt.equivalent(body_pm):
                break
            body_pm = nxt
        return pm.join(body_pm)
    return apply_statement(pm, stmt, ctx)


def _conflicts_across_iterations(
    pm: PathMatrix,
    primes: dict[str, str],
    writes: list[tuple[str, str]],
    reads: list[tuple[str, str]],
    ctx: TransferContext,
) -> list[str]:
    """Write/write and write/read conflicts between different iterations.

    An access through variable ``v`` in the *previous* iteration is modelled
    by ``v`` with every induction variable replaced by its primed copy; a
    conflict exists when the primed access may alias the current one and the
    fields overlap.
    """
    conflicts: list[str] = []

    def primed_of(var: str) -> str:
        return primes.get(var, var)

    def fields_overlap(f1: str, f2: str) -> bool:
        return f1 == "*" or f2 == "*" or f1 == f2

    seen: set[tuple[str, str, str, str, str]] = set()
    for w_var, w_field in writes:
        for o_var, o_field, kind in (
            [(v, f, "write") for v, f in writes] + [(v, f, "read") for v, f in reads]
        ):
            if not fields_overlap(w_field, o_field):
                continue
            prev_var = primed_of(o_var)
            if prev_var == o_var and o_var not in primes and w_var not in primes:
                # neither access depends on an induction variable: both refer
                # to loop-invariant nodes, a genuine conflict only if they may
                # alias (and then it is loop-carried as well)
                pass
            if pm.may_alias(w_var, prev_var):
                key = (w_var, w_field, o_var, o_field, kind)
                if key in seen:
                    continue
                seen.add(key)
                conflicts.append(
                    f"write {w_var}->{w_field} may conflict with previous-iteration "
                    f"{kind} {o_var}->{o_field}"
                )
    return conflicts


def analyze_function(
    program: Program, name: str, use_adds: bool = True
) -> AnalysisResult:
    """Convenience wrapper around :class:`PathMatrixAnalysis`."""
    return PathMatrixAnalysis(program, use_adds=use_adds).analyze_function(name)
