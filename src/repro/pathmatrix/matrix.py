"""The :class:`PathMatrix` container.

A path matrix holds one :class:`~repro.pathmatrix.paths.PathEntry` per
ordered pair of tracked pointer variables, plus the set of variables known
to be nil (NULL) and the current abstraction-validation state.  Matrices are
mutable value objects: the transfer rules copy them before updating, and the
dataflow analysis joins them at control-flow merge points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.pathmatrix.paths import EMPTY_ENTRY, PathEntry, Relation
from repro.pathmatrix.validation import ValidationState


class PathMatrix:
    """Pairwise relationships between live pointer variables at one program point."""

    def __init__(self, variables: Iterable[str] = ()):
        self.variables: list[str] = list(dict.fromkeys(variables))
        self._entries: dict[tuple[str, str], PathEntry] = {}
        #: variables currently known to be NULL (their rows/columns are empty)
        self.nil_vars: set[str] = set()
        #: abstraction-validation bookkeeping (shared shape violations)
        self.validation = ValidationState()

    # -- structural operations ---------------------------------------------
    def copy(self) -> "PathMatrix":
        new = PathMatrix(self.variables)
        new._entries = dict(self._entries)
        new.nil_vars = set(self.nil_vars)
        new.validation = self.validation.copy()
        return new

    def ensure_variable(self, name: str) -> None:
        if name not in self.variables:
            self.variables.append(name)

    def remove_variable(self, name: str) -> None:
        if name in self.variables:
            self.variables.remove(name)
        self.nil_vars.discard(name)
        self._entries = {
            key: entry for key, entry in self._entries.items() if name not in key
        }

    # -- entry accessors -------------------------------------------------------
    def get(self, row: str, col: str) -> PathEntry:
        if row == col:
            # The diagonal is the definite self-alias unless the variable is nil.
            if row in self.nil_vars:
                return EMPTY_ENTRY
            return PathEntry.definite_alias()
        return self._entries.get((row, col), EMPTY_ENTRY)

    def set(self, row: str, col: str, entry: PathEntry) -> None:
        self.ensure_variable(row)
        self.ensure_variable(col)
        if row == col:
            return
        if entry.is_empty():
            self._entries.pop((row, col), None)
        else:
            self._entries[(row, col)] = entry

    def add_relation(self, row: str, col: str, relation: Relation) -> None:
        self.set(row, col, self.get(row, col).add(relation))

    def clear_row_and_column(self, name: str) -> None:
        """Remove every relationship involving ``name`` (used when killing a var)."""
        self._entries = {
            key: entry for key, entry in self._entries.items() if name not in key
        }

    def set_nil(self, name: str) -> None:
        self.ensure_variable(name)
        self.clear_row_and_column(name)
        self.nil_vars.add(name)

    def set_fresh(self, name: str) -> None:
        """``name`` now points to a newly allocated node unrelated to everything."""
        self.ensure_variable(name)
        self.clear_row_and_column(name)
        self.nil_vars.discard(name)

    def copy_variable(self, dst: str, src: str) -> None:
        """Make ``dst`` an exact alias of ``src`` (the ``p = q`` rule)."""
        self.ensure_variable(dst)
        self.clear_row_and_column(dst)
        if src in self.nil_vars:
            self.nil_vars.add(dst)
            return
        self.nil_vars.discard(dst)
        for other in self.variables:
            if other in (dst, src):
                continue
            self.set(dst, other, self.get(src, other))
            self.set(other, dst, self.get(other, src))
        self.set(dst, src, PathEntry.definite_alias())
        self.set(src, dst, PathEntry.definite_alias())

    # -- queries -----------------------------------------------------------------
    def may_alias(self, a: str, b: str) -> bool:
        if a == b:
            return a not in self.nil_vars
        if a in self.nil_vars or b in self.nil_vars:
            return False
        if a not in self.variables or b not in self.variables:
            return True  # unknown variables: be conservative
        return self.get(a, b).may_alias or self.get(b, a).may_alias

    def must_alias(self, a: str, b: str) -> bool:
        if a == b:
            return a not in self.nil_vars
        return self.get(a, b).must_alias or self.get(b, a).must_alias

    def definitely_not_alias(self, a: str, b: str) -> bool:
        return not self.may_alias(a, b)

    def is_nil(self, name: str) -> bool:
        return name in self.nil_vars

    def pointers_reaching(self, target: str) -> list[str]:
        """Variables with a known path or alias to ``target``."""
        result = []
        for var in self.variables:
            if var == target:
                continue
            entry = self.get(var, target)
            if not entry.is_empty():
                result.append(var)
        return result

    def entries(self) -> Iterator[tuple[str, str, PathEntry]]:
        for (row, col), entry in self._entries.items():
            yield row, col, entry

    # -- lattice operations ---------------------------------------------------------
    def join(self, other: "PathMatrix") -> "PathMatrix":
        """Control-flow join (least upper bound) of two matrices."""
        result = PathMatrix(list(dict.fromkeys(self.variables + other.variables)))
        # a variable is nil only if nil on both incoming paths
        result.nil_vars = self.nil_vars & other.nil_vars
        half_nil = (self.nil_vars | other.nil_vars) - result.nil_vars
        for row in result.variables:
            for col in result.variables:
                if row == col:
                    continue
                joined = self.get(row, col).join(other.get(row, col))
                # a variable nil on one path only: its relations are merely possible
                if row in half_nil or col in half_nil:
                    joined = joined.weakened()
                result.set(row, col, joined)
        result.validation = self.validation.join(other.validation)
        return result

    def equivalent(self, other: "PathMatrix") -> bool:
        if set(self.variables) != set(other.variables):
            return False
        if self.nil_vars != other.nil_vars:
            return False
        if not self.validation.equivalent(other.validation):
            return False
        for row in self.variables:
            for col in self.variables:
                if row == col:
                    continue
                if self.get(row, col) != other.get(row, col):
                    return False
        return True

    # -- conservative construction ----------------------------------------------
    @staticmethod
    def conservative(variables: Iterable[str]) -> "PathMatrix":
        """The matrix with ``=?`` everywhere — what a compiler must assume
        when it has no structure information (paper section 3.3.2)."""
        pm = PathMatrix(variables)
        for row in pm.variables:
            for col in pm.variables:
                if row != col:
                    pm.set(row, col, PathEntry.possible_alias())
        return pm

    # -- presentation ------------------------------------------------------------
    def to_table(self, order: list[str] | None = None) -> str:
        """Render the matrix in the paper's tabular style."""
        vars_order = order or self.variables
        width = max([len(v) for v in vars_order] + [4]) + 2
        header = " " * width + "".join(v.ljust(width) for v in vars_order)
        lines = [header]
        for row in vars_order:
            cells = []
            for col in vars_order:
                if row == col:
                    cell = "=" if row not in self.nil_vars else "nil"
                else:
                    cell = str(self.get(row, col))
                cells.append(cell.ljust(width))
            lines.append(row.ljust(width) + "".join(cells))
        if self.validation.violations:
            lines.append("violations: " + "; ".join(str(v) for v in self.validation.violations))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_table()

    def __repr__(self) -> str:  # pragma: no cover
        return f"PathMatrix(vars={self.variables}, entries={len(self._entries)})"
