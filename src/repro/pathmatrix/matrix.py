"""The :class:`PathMatrix` container.

A path matrix holds one :class:`~repro.pathmatrix.paths.PathEntry` per
ordered pair of tracked pointer variables, plus the set of variables known
to be nil (NULL) and the current abstraction-validation state.  Matrices are
mutable value objects: the transfer rules copy them before updating, and the
dataflow analysis joins them at control-flow merge points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.pathmatrix.paths import EMPTY_ENTRY, PathEntry, Relation
from repro.pathmatrix.validation import ValidationState


class PathMatrix:
    """Pairwise relationships between live pointer variables at one program point.

    Internally the matrix is sparse: ``_entries`` maps ``(row, col)`` pairs to
    non-empty interned :class:`PathEntry` values, and ``_index`` is a
    *lazily materialized* per-variable adjacency index (variable -> set of
    keys it participates in) so killing a variable touches only its own
    relationships instead of rebuilding the whole entries dict.  The index is
    ``None`` until a row/column kill first needs it (matrices produced by
    ``join`` and consumed by comparisons never pay for it); once
    materialized it is kept up to date by :meth:`set`.  Invariants: no
    diagonal keys, no empty entries, no entries involving a nil variable,
    and every key's variables appear in :attr:`variables`.
    """

    __slots__ = (
        "variables", "_var_set", "_entries", "_index", "_kills", "nil_vars", "validation",
    )

    def __init__(self, variables: Iterable[str] = ()):
        self.variables: list[str] = list(dict.fromkeys(variables))
        self._var_set: set[str] = set(self.variables)
        self._entries: dict[tuple[str, str], PathEntry] = {}
        self._index: dict[str, set[tuple[str, str]]] | None = None
        self._kills: int = 0
        #: variables currently known to be NULL (their rows/columns are empty)
        self.nil_vars: set[str] = set()
        #: abstraction-validation bookkeeping (shared shape violations)
        self.validation = ValidationState()

    # -- structural operations ---------------------------------------------
    def copy(self) -> "PathMatrix":
        new = PathMatrix.__new__(PathMatrix)
        new.variables = list(self.variables)
        new._var_set = set(self._var_set)
        new._entries = dict(self._entries)
        # the copy re-materializes the index on demand; copying it eagerly
        # would often be wasted work (e.g. copies consumed only by queries)
        new._index = None
        new._kills = 0
        new.nil_vars = set(self.nil_vars)
        new.validation = self.validation.copy()
        return new

    def _materialized_index(self) -> dict[str, set[tuple[str, str]]]:
        index = self._index
        if index is None:
            index = {}
            for key in self._entries:
                index.setdefault(key[0], set()).add(key)
                index.setdefault(key[1], set()).add(key)
            self._index = index
        return index

    def ensure_variable(self, name: str) -> None:
        if name not in self._var_set:
            self.variables.append(name)
            self._var_set.add(name)

    def remove_variable(self, name: str) -> None:
        if name in self._var_set:
            self.variables.remove(name)
            self._var_set.discard(name)
        self.nil_vars.discard(name)
        self.clear_row_and_column(name)

    # -- entry accessors -------------------------------------------------------
    def get(self, row: str, col: str) -> PathEntry:
        if row == col:
            # The diagonal is the definite self-alias unless the variable is nil.
            if row in self.nil_vars:
                return EMPTY_ENTRY
            return PathEntry.definite_alias()
        return self._entries.get((row, col), EMPTY_ENTRY)

    def set(self, row: str, col: str, entry: PathEntry) -> None:
        self.ensure_variable(row)
        self.ensure_variable(col)
        if row == col:
            return
        key = (row, col)
        index = self._index
        if entry.is_empty():
            if self._entries.pop(key, None) is not None and index is not None:
                index[row].discard(key)
                index[col].discard(key)
        else:
            if index is not None and key not in self._entries:
                index.setdefault(row, set()).add(key)
                index.setdefault(col, set()).add(key)
            self._entries[key] = entry

    def add_relation(self, row: str, col: str, relation: Relation) -> None:
        self.set(row, col, self.get(row, col).add(relation))

    def clear_row_and_column(self, name: str) -> None:
        """Remove every relationship involving ``name`` (used when killing a var).

        The first kill on a freshly copied matrix uses a direct scan (cheaper
        than building the adjacency index for a single use); repeated kills
        materialize the index once and then run in O(degree).
        """
        entries = self._entries
        if not entries:
            return
        index = self._index
        if index is None:
            if self._kills == 0:
                self._kills = 1
                dead = [key for key in entries if key[0] == name or key[1] == name]
                for key in dead:
                    del entries[key]
                return
            index = self._materialized_index()
        keys = index.pop(name, None)
        if not keys:
            return
        for key in keys:
            del entries[key]
            other = key[1] if key[0] == name else key[0]
            bucket = index.get(other)
            if bucket is not None:
                bucket.discard(key)

    def set_nil(self, name: str) -> None:
        self.ensure_variable(name)
        self.clear_row_and_column(name)
        self.nil_vars.add(name)

    def set_fresh(self, name: str) -> None:
        """``name`` now points to a newly allocated node unrelated to everything."""
        self.ensure_variable(name)
        self.clear_row_and_column(name)
        self.nil_vars.discard(name)

    def copy_variable(self, dst: str, src: str) -> None:
        """Make ``dst`` an exact alias of ``src`` (the ``p = q`` rule)."""
        self.ensure_variable(dst)
        self.clear_row_and_column(dst)
        if src in self.nil_vars:
            self.nil_vars.add(dst)
            return
        self.nil_vars.discard(dst)
        for other in self.variables:
            if other in (dst, src):
                continue
            self.set(dst, other, self.get(src, other))
            self.set(other, dst, self.get(other, src))
        self.set(dst, src, PathEntry.definite_alias())
        self.set(src, dst, PathEntry.definite_alias())

    # -- queries -----------------------------------------------------------------
    def may_alias(self, a: str, b: str) -> bool:
        if a == b:
            return a not in self.nil_vars
        if a in self.nil_vars or b in self.nil_vars:
            return False
        if a not in self._var_set or b not in self._var_set:
            return True  # unknown variables: be conservative
        return self.get(a, b).may_alias or self.get(b, a).may_alias

    def must_alias(self, a: str, b: str) -> bool:
        # A "must" answer is a proof, so unknown or nil operands yield False
        # (mirroring may_alias, which is conservative in the other direction).
        if a in self.nil_vars or b in self.nil_vars:
            return False
        if a not in self._var_set or b not in self._var_set:
            return False
        if a == b:
            return True
        return self.get(a, b).must_alias or self.get(b, a).must_alias

    def definitely_not_alias(self, a: str, b: str) -> bool:
        return not self.may_alias(a, b)

    def is_nil(self, name: str) -> bool:
        return name in self.nil_vars

    def pointers_reaching(self, target: str) -> list[str]:
        """Variables with a known path or alias to ``target``."""
        result = []
        for var in self.variables:
            if var == target:
                continue
            entry = self.get(var, target)
            if not entry.is_empty():
                result.append(var)
        return result

    def entries(self) -> Iterator[tuple[str, str, PathEntry]]:
        for (row, col), entry in self._entries.items():
            yield row, col, entry

    # -- lattice operations ---------------------------------------------------------
    def join(self, other: "PathMatrix") -> "PathMatrix":
        """Control-flow join (least upper bound) of two matrices.

        Only the union of the two sparse entry sets is visited: a cell empty
        on both sides joins to the empty entry, so the dense double loop over
        all variable pairs is unnecessary.
        """
        result = PathMatrix(dict.fromkeys(self.variables + other.variables))
        # a variable is nil only if nil on both incoming paths
        result.nil_vars = self.nil_vars & other.nil_vars
        half_nil = (self.nil_vars | other.nil_vars) - result.nil_vars
        mine = self._entries
        theirs = other._entries
        entries = result._entries
        theirs_get = theirs.get
        for key, ea in mine.items():
            eb = theirs_get(key)
            if eb is ea:  # interned entries: identical cells join to themselves
                joined = ea
            elif eb is not None:
                joined = ea.join(eb)
            else:
                joined = ea.join(EMPTY_ENTRY)
            # a variable nil on one path only: its relations are merely possible
            if half_nil and (key[0] in half_nil or key[1] in half_nil):
                joined = joined.weakened()
            if joined.relations:
                entries[key] = joined
        for key, eb in theirs.items():
            if key in mine:
                continue
            joined = EMPTY_ENTRY.join(eb)
            if half_nil and (key[0] in half_nil or key[1] in half_nil):
                joined = joined.weakened()
            if joined.relations:
                entries[key] = joined
        result.validation = self.validation.join(other.validation)
        return result

    def equivalent(self, other: "PathMatrix") -> bool:
        """Same facts at this program point (cheap structural comparison).

        Because ``_entries`` is normalized (sparse, no empties, no diagonal)
        and entries are interned, comparing the dicts directly is equivalent
        to the dense cell-by-cell scan but runs in O(stored entries) with
        pointer-equality on each cell.
        """
        if self._var_set != other._var_set:
            return False
        if self.nil_vars != other.nil_vars:
            return False
        if not self.validation.equivalent(other.validation):
            return False
        return self._entries == other._entries

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self):
        # the adjacency index and kill counter are rebuildable accelerator
        # state; ship only the semantic content (entries re-intern on load
        # because PathEntry reconstructs through its interning constructor)
        return {
            "variables": self.variables,
            "entries": self._entries,
            "nil_vars": self.nil_vars,
            "violations": tuple(self.validation.violations),
        }

    def __setstate__(self, state):
        self.variables = list(state["variables"])
        self._var_set = set(self.variables)
        self._entries = dict(state["entries"])
        self._index = None
        self._kills = 0
        self.nil_vars = set(state["nil_vars"])
        self.validation = ValidationState(state["violations"])

    # -- conservative construction ----------------------------------------------
    @staticmethod
    def conservative(variables: Iterable[str]) -> "PathMatrix":
        """The matrix with ``=?`` everywhere — what a compiler must assume
        when it has no structure information (paper section 3.3.2)."""
        pm = PathMatrix(variables)
        for row in pm.variables:
            for col in pm.variables:
                if row != col:
                    pm.set(row, col, PathEntry.possible_alias())
        return pm

    # -- presentation ------------------------------------------------------------
    def to_table(self, order: list[str] | None = None) -> str:
        """Render the matrix in the paper's tabular style."""
        vars_order = order or self.variables
        width = max([len(v) for v in vars_order] + [4]) + 2
        header = " " * width + "".join(v.ljust(width) for v in vars_order)
        lines = [header]
        for row in vars_order:
            cells = []
            for col in vars_order:
                if row == col:
                    cell = "=" if row not in self.nil_vars else "nil"
                else:
                    cell = str(self.get(row, col))
                cells.append(cell.ljust(width))
            lines.append(row.ljust(width) + "".join(cells))
        if self.validation.violations:
            lines.append(
                "violations: "
                + "; ".join(str(v) for v in sorted(self.validation.violations, key=str))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_table()

    def __repr__(self) -> str:  # pragma: no cover
        return f"PathMatrix(vars={self.variables}, entries={len(self._entries)})"


def cellwise_equivalent(a: PathMatrix, b: PathMatrix) -> bool:
    """The seed's dense O(V^2) equivalence scan, retained verbatim.

    The round-robin baseline solver uses this comparison so that benchmark
    numbers against it reflect the original engine's costs; it must always
    agree with the fast :meth:`PathMatrix.equivalent`.
    """
    if set(a.variables) != set(b.variables):
        return False
    if a.nil_vars != b.nil_vars:
        return False
    if not a.validation.equivalent(b.validation):
        return False
    for row in a.variables:
        for col in a.variables:
            if row == col:
                continue
            if a.get(row, col) != b.get(row, col):
                return False
    return True
