"""Pointer transfer rules of general path matrix analysis.

Each rule consumes a :class:`~repro.pathmatrix.matrix.PathMatrix` and a
statement and produces the matrix holding *after* the statement.  The rules
follow section 3.3 of the paper (and Hendren's original path matrix rules)
and are parameterized by the ADDS declarations: an acyclic field enables the
precise rule, an unknown-direction field falls back to the conservative one.

Statement forms handled (the paper's classification):

=======================  ====================================================
``p = NULL``             ``p`` becomes nil; every relationship involving it
                         disappears.
``p = new T``            ``p`` points to a fresh node unrelated to all others.
``p = q``                ``p`` becomes a definite alias of ``q`` and inherits
                         its row and column.
``p = q->f``             the *traversal* rule.  With an acyclic ``f`` the new
                         node is strictly downstream, so upstream pointers are
                         provably not aliases; with an unknown-direction ``f``
                         every non-nil pointer may alias the result.
``p->f = q`` (et al.)    the *shape-changing* rule.  Adds the ``f`` path from
                         ``p`` to ``q`` and performs abstraction validation:
                         possible cycles through acyclic fields and sharing
                         through uniquely-forward fields are recorded as
                         violations; overwriting an edge repairs violations
                         that depended on it.
calls                    handled via function side-effect summaries
                         (:mod:`repro.pathmatrix.interproc`).
=======================  ====================================================

A **soundness note** exploited throughout: a store ``p->f = q`` never changes
which node any *variable* points to, so variable-pair aliasing is unaffected
by stores; only path facts and the validation state need updating.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

from repro.adds.declaration import AddsType
from repro.adds.properties import DerivedProperties, derive_properties
from repro.lang.ast_nodes import (
    Assign,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    IndexAccess,
    Name,
    New,
    NullLit,
    Program,
    Return,
    Stmt,
    VarDecl,
)
from repro.pathmatrix.matrix import PathMatrix
from repro.pathmatrix.paths import PathEntry, Relation
from repro.pathmatrix.validation import Violation


@dataclass
class TransferContext:
    """Static information the transfer rules need.

    ``adds_types`` maps record-type names to their ADDS model;
    ``properties`` caches the derived properties; ``var_types`` maps pointer
    variables to the record type they point to (when known);
    ``summaries`` maps function names to side-effect summaries (optional —
    without them calls are treated conservatively).
    """

    program: Program
    adds_types: dict[str, AddsType] = dc_field(default_factory=dict)
    properties: dict[str, DerivedProperties] = dc_field(default_factory=dict)
    var_types: dict[str, str] = dc_field(default_factory=dict)
    pointer_vars: set[str] = dc_field(default_factory=set)
    summaries: dict[str, "object"] = dc_field(default_factory=dict)
    #: when False, ADDS information is ignored and every rule is conservative
    use_adds: bool = True
    _temp_counter: int = 0
    #: memoized statement-relevance verdicts, keyed by id(stmt) (the AST is
    #: stable and outlives the context, so ids cannot be recycled mid-analysis)
    _relevance: dict = dc_field(default_factory=dict)
    _field_owner_cache: dict = dc_field(default_factory=dict)
    _temp_names: dict = dc_field(default_factory=dict)

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self):
        # ``_relevance`` and ``_temp_names`` are keyed by ``id(stmt)`` of the
        # AST that produced them; after unpickling the AST is a fresh object
        # graph, so stale ids could collide with new ones and return wrong
        # cached verdicts.  Drop every derived cache and let it rebuild.
        state = self.__dict__.copy()
        state["_relevance"] = {}
        state["_temp_names"] = {}
        state["_field_owner_cache"] = {}
        state["properties"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- lookup helpers -----------------------------------------------------
    def properties_of(self, type_name: str) -> DerivedProperties | None:
        if type_name in self.properties:
            return self.properties[type_name]
        adds = self.adds_types.get(type_name)
        if adds is None:
            return None
        props = derive_properties(adds)
        self.properties[type_name] = props
        return props

    def field_owner(self, field_name: str) -> str | None:
        """The unique record type declaring ``field_name`` (None if ambiguous)."""
        if field_name in self._field_owner_cache:
            return self._field_owner_cache[field_name]
        owners = [
            t.name for t in self.program.types if t.field_named(field_name) is not None
        ]
        owner = owners[0] if len(owners) == 1 else None
        self._field_owner_cache[field_name] = owner
        return owner

    def type_of_var(self, var: str) -> str | None:
        return self.var_types.get(var)

    def field_info(self, base_var: str | None, field_name: str):
        """Resolve (type_name, DerivedProperties, is_pointer_field) for a field use."""
        type_name = None
        if base_var is not None:
            type_name = self.type_of_var(base_var)
        if type_name is None or type_name in ("__any__", "__null__"):
            type_name = self.field_owner(field_name)
        if type_name is None:
            return None, None, False
        decl = self.program.type_named(type_name)
        fdecl = decl.field_named(field_name) if decl is not None else None
        is_ptr = fdecl is not None and fdecl.is_pointer
        props = self.properties_of(type_name) if self.use_adds else None
        return type_name, props, is_ptr

    def is_tracked(self, var: str) -> bool:
        return var in self.pointer_vars

    def fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"@t{self._temp_counter}"

    def temp_for(self, node) -> str:
        """A temp name that is stable across re-applications of ``node``.

        Fixpoint solvers apply the same statement many times; minting a fresh
        temp per application would make the transfer non-idempotent (the
        matrix never stops changing, because each application introduces a
        new variable name), so temps are keyed by the AST node.
        """
        key = id(node)
        name = self._temp_names.get(key)
        if name is None:
            self._temp_counter += 1
            name = f"@t{self._temp_counter}"
            self._temp_names[key] = name
        return name


# ---------------------------------------------------------------------------
# the main dispatcher
# ---------------------------------------------------------------------------
def apply_statement(
    pm: PathMatrix, stmt: Stmt, ctx: TransferContext, copy: bool = True
) -> PathMatrix:
    """Return the path matrix holding after executing ``stmt``.

    With ``copy=False`` the input matrix is updated in place and returned —
    callers own the matrix and are threading it through a statement sequence
    (see :func:`apply_block`).  The default keeps the original value
    semantics: the input is never modified.
    """
    result = pm.copy() if copy else pm
    if isinstance(stmt, VarDecl):
        if stmt.init is not None and ctx.is_tracked(stmt.name):
            _apply_pointer_assign(result, stmt.name, stmt.init, ctx, stmt.line)
        elif ctx.is_tracked(stmt.name):
            result.set_nil(stmt.name)
        return result
    if isinstance(stmt, Assign):
        if ctx.is_tracked(stmt.target):
            _apply_pointer_assign(result, stmt.target, stmt.value, ctx, stmt.line)
        else:
            _apply_calls_in_expr(result, stmt.value, ctx, stmt.line)
        return result
    if isinstance(stmt, FieldAssign):
        _apply_field_store(result, stmt, ctx)
        return result
    if isinstance(stmt, ExprStmt):
        _apply_calls_in_expr(result, stmt.expr, ctx, stmt.line)
        return result
    if isinstance(stmt, Return):
        if stmt.value is not None:
            _apply_calls_in_expr(result, stmt.value, ctx, stmt.line)
        return result
    # Structured statements are lowered by the CFG before analysis; anything
    # else leaves the matrix unchanged.
    return result


def _contains_call(expr: Expr) -> bool:
    return any(isinstance(node, Call) for node in expr.walk())


def _compute_relevance(stmt: Stmt, ctx: TransferContext) -> bool:
    if isinstance(stmt, VarDecl):
        return ctx.is_tracked(stmt.name)
    if isinstance(stmt, Assign):
        return ctx.is_tracked(stmt.target) or _contains_call(stmt.value)
    if isinstance(stmt, FieldAssign):
        if _contains_call(stmt.value):
            return True
        base_var = stmt.base.ident if isinstance(stmt.base, Name) else None
        type_name, _props, is_ptr = ctx.field_info(base_var, stmt.field)
        # mirrors _apply_field_store: data-field stores (and stores into
        # fields of unknown types) never change the matrix
        return bool(is_ptr and type_name is not None)
    if isinstance(stmt, ExprStmt):
        return _contains_call(stmt.expr)
    if isinstance(stmt, Return):
        return stmt.value is not None and _contains_call(stmt.value)
    return False


def statement_touches_matrix(stmt: Stmt, ctx: TransferContext) -> bool:
    """Can ``stmt`` change any path matrix at all under ``ctx``?

    Conservative (False only for provable no-ops) and memoized per context,
    so the fixpoint solver asks once per statement rather than once per
    (statement, iteration).
    """
    key = id(stmt)
    cached = ctx._relevance.get(key)
    if cached is None:
        cached = _compute_relevance(stmt, ctx)
        ctx._relevance[key] = cached
    return cached


def apply_block(pm: PathMatrix, statements: list, ctx: TransferContext) -> PathMatrix:
    """Transfer a straight-line statement sequence with copy-on-first-write.

    Statements that provably cannot touch the matrix are skipped outright;
    the input matrix is copied only once, just before the first statement
    that can.  A block of pure scalar code therefore returns the input
    matrix itself (callers must treat matrices as immutable values, which
    the solvers do).
    """
    result = pm
    copied = False
    for stmt in statements:
        if not statement_touches_matrix(stmt, ctx):
            continue
        if not copied:
            result = result.copy()
            copied = True
        result = apply_statement(result, stmt, ctx, copy=False)
    return result


# ---------------------------------------------------------------------------
# assignments to pointer variables
# ---------------------------------------------------------------------------
def _retarget_stale_violations(pm: PathMatrix, var: str) -> None:
    """Before ``var`` is reassigned, re-key violations that name its old node.

    Repairs are matched by parent-variable name (:meth:`ValidationState.
    repair_parent_edge`), so a violation whose parent variable gets
    reassigned between break and repair would wrongly be repaired by a later
    store through the *new* node.  Hand the violation to another definite
    alias of the old node when one exists; otherwise mark it stale
    (unrepairable by name, hence conservatively outstanding).
    """
    violations = pm.validation.violations
    if not violations:
        return
    if not any(var in (v.old_parent, v.new_parent) for v in violations):
        return
    replacement = None
    for other in pm.variables:
        if other != var and pm.must_alias(var, other):
            replacement = other
            break
    pm.validation.retarget_variable(var, replacement)


def _apply_pointer_assign(
    pm: PathMatrix, target: str, value: Expr, ctx: TransferContext, line: int | None
) -> None:
    if not (isinstance(value, Name) and pm.must_alias(target, value.ident)):
        # the assignment makes ``target`` name a (possibly) different node —
        # unless it copies a variable already proven to alias it
        _retarget_stale_violations(pm, target)
    if isinstance(value, NullLit):
        pm.set_nil(target)
        return
    if isinstance(value, New):
        pm.set_fresh(target)
        return
    if isinstance(value, Name):
        if ctx.is_tracked(value.ident):
            pm.copy_variable(target, value.ident)
        else:
            _assign_unknown(pm, target, ctx)
        return
    base_field = _as_field_load(value)
    if base_field is not None:
        base_expr, field_name = base_field
        if isinstance(base_expr, Name) and ctx.is_tracked(base_expr.ident):
            _apply_field_load(pm, target, base_expr.ident, field_name, ctx)
        else:
            _assign_unknown(pm, target, ctx)
        return
    if isinstance(value, Call):
        _apply_calls_in_expr(pm, value, ctx, line)
        _apply_call_result(pm, target, value, ctx)
        return
    # arithmetic or other non-pointer expression assigned to a tracked var:
    # the variable no longer holds a pointer we can reason about
    _assign_unknown(pm, target, ctx)


def _as_field_load(value: Expr) -> Optional[tuple[Expr, str]]:
    """Decompose ``q->f`` or ``q->f[i]`` into (base expression, field name)."""
    if isinstance(value, FieldAccess):
        return value.base, value.field
    if isinstance(value, IndexAccess) and isinstance(value.base, FieldAccess):
        return value.base.base, value.base.field
    return None


def _assign_unknown(pm: PathMatrix, target: str, ctx: TransferContext) -> None:
    """``target`` receives a pointer we know nothing about: may alias anything."""
    pm.ensure_variable(target)
    pm.clear_row_and_column(target)
    pm.nil_vars.discard(target)
    for other in pm.variables:
        if other == target or pm.is_nil(other):
            continue
        pm.set(target, other, pm.get(target, other).add(Relation.alias(definite=False)))


def _apply_field_load(
    pm: PathMatrix, target: str, source: str, field_name: str, ctx: TransferContext
) -> None:
    """The traversal rule for ``target = source->field``."""
    type_name, props, is_ptr_field = ctx.field_info(source, field_name)
    if not is_ptr_field:
        # loading a data field into a tracked variable: nothing useful known
        _assign_unknown(pm, target, ctx)
        return

    if pm.is_nil(source):
        # speculative traversal of NULL yields NULL
        pm.set_nil(target)
        return

    acyclic = props is not None and props.traversal_never_revisits(field_name)

    # snapshot the old relations of every variable to/from the *source's* node,
    # because when target == source the assignment overwrites it
    old_to_source = {var: pm.get(var, source) for var in pm.variables}
    old_from_source = {var: pm.get(source, var) for var in pm.variables}
    source_was_target = target == source

    pm.ensure_variable(target)
    pm.clear_row_and_column(target)
    pm.nil_vars.discard(target)

    for var in pm.variables:
        if var == target or pm.is_nil(var):
            continue
        if var == source:
            # treated below via the direct-link entry (source_was_target means
            # the old node has no remaining name, so nothing to record)
            continue
        to_source = old_to_source.get(var, PathEntry.empty())
        from_source = old_from_source.get(var, PathEntry.empty())

        entry = PathEntry.empty()
        must_alias_source = to_source.must_alias or from_source.must_alias
        may_alias_source = to_source.may_alias or from_source.may_alias
        upstream_definite = must_alias_source or any(
            rel.field == field_name and rel.definite for rel in to_source.paths()
        )
        upstream_possible = any(rel.field == field_name for rel in to_source.paths())
        downstream_along_f = any(rel.field == field_name for rel in from_source.paths())

        # path facts from var to the new target
        if must_alias_source:
            entry = entry.add(Relation.path(field_name, plus=False, definite=True))
        elif upstream_definite:
            entry = entry.add(Relation.path(field_name, plus=True, definite=True))
        elif upstream_possible or may_alias_source:
            entry = entry.add(Relation.path(field_name, plus=True, definite=False))

        # alias facts between var and the new target
        if acyclic:
            # Upstream of the source along an acyclic field (or equal to the
            # source) implies the loaded node is strictly downstream of var,
            # hence provably not an alias.  Anything else — a possible alias
            # with the source, a downstream position, or simply an unknown
            # relationship — cannot exclude aliasing.
            provably_distinct = must_alias_source or upstream_definite
            if not provably_distinct:
                entry = entry.add(Relation.alias(definite=False))
        else:
            # unknown-direction field: the loaded node may be anything
            # reachable, including the node var points to
            entry = entry.add(Relation.alias(definite=False))
        pm.set(var, target, entry)

    if source_was_target:
        return
    # direct predecessor: one f link from source to target
    if not pm.is_nil(source):
        link = PathEntry.single_path(field_name, plus=False)
        if not acyclic:
            link = link.add(Relation.alias(definite=False))
        pm.set(source, target, link)


# ---------------------------------------------------------------------------
# stores through pointers (shape changes + abstraction validation)
# ---------------------------------------------------------------------------
def _apply_field_store(pm: PathMatrix, stmt: FieldAssign, ctx: TransferContext) -> None:
    base = stmt.base
    if not isinstance(base, Name):
        # store through a complex expression: validate conservatively
        type_name, props, is_ptr = ctx.field_info(None, stmt.field)
        if is_ptr and type_name is not None:
            pm.validation.add(
                Violation(
                    kind="unknown_store",
                    type_name=type_name,
                    field=stmt.field,
                    new_parent=str(base),
                    line=stmt.line,
                )
            )
        _apply_calls_in_expr(pm, stmt.value, ctx, stmt.line)
        return

    base_var = base.ident
    type_name, props, is_ptr_field = ctx.field_info(base_var, stmt.field)
    _apply_calls_in_expr(pm, stmt.value, ctx, stmt.line)

    if not is_ptr_field or type_name is None:
        # writing a data field never changes the structure's shape
        return

    base_aliases = _definite_aliases(pm, base_var)

    # The store overwrites whatever edge ``base->field`` held before: any
    # violation that depended on that edge is repaired.
    pm.validation.repair_parent_edge(base_aliases, stmt.field)

    # Work out the variable naming the stored node, if any.
    value = stmt.value
    stored_var: str | None = None
    if isinstance(value, NullLit):
        # removing an edge: old path facts out of base via this field are dropped
        _drop_field_paths(pm, base_aliases, stmt.field)
        return
    if isinstance(value, New):
        _drop_field_paths(pm, base_aliases, stmt.field)
        # a fresh node cannot be shared or close a cycle
        for alias in base_aliases:
            pm.set(alias, alias, pm.get(alias, alias))
        return
    if isinstance(value, Name) and ctx.is_tracked(value.ident):
        stored_var = value.ident
    else:
        load = _as_field_load(value)
        if load is not None and isinstance(load[0], Name) and ctx.is_tracked(load[0].ident):
            # p->f = q->g : materialize the loaded node as a temporary so the
            # sharing check below can see its existing parent.
            temp = ctx.temp_for(stmt)
            pm.ensure_variable(temp)
            _apply_field_load(pm, temp, load[0].ident, load[1], ctx)
            stored_var = temp

    _drop_field_paths(pm, base_aliases, stmt.field)

    if stored_var is None:
        # storing an unknown pointer: we cannot bound the shape effect
        if ctx.use_adds and props is not None and (
            props.traversal_never_revisits(stmt.field) or props.unique_inbound(stmt.field)
        ):
            pm.validation.add(
                Violation(
                    kind="unknown_store",
                    type_name=type_name,
                    field=stmt.field,
                    new_parent=base_var,
                    line=stmt.line,
                )
            )
        return

    if pm.is_nil(stored_var):
        # equivalent to storing NULL
        return

    # record the new edge as a path fact
    for alias in base_aliases:
        pm.set(
            alias,
            stored_var,
            pm.get(alias, stored_var).add(Relation.path(stmt.field, plus=False, definite=True)),
        )

    if not ctx.use_adds or props is None:
        return

    # --- abstraction validation -------------------------------------------
    # (1) cycles through an acyclic field: if the stored node reaches the base
    #     node, the new edge closes a cycle.
    if props.traversal_never_revisits(stmt.field):
        reaches_base = pm.get(stored_var, base_var)
        if stored_var == base_var or not reaches_base.is_empty() or reaches_base.may_alias:
            pm.validation.add(
                Violation(
                    kind="cycle",
                    type_name=type_name,
                    field=stmt.field,
                    new_parent=base_var,
                    old_parent=stored_var,
                    line=stmt.line,
                )
            )

    # (2) sharing through a uniquely-forward field: some other node already
    #     points to the stored node via the same field.
    if props.unique_inbound(stmt.field):
        for other in pm.variables:
            if other in base_aliases or other == stored_var or pm.is_nil(other):
                continue
            entry = pm.get(other, stored_var)
            if any(rel.field == stmt.field and not rel.plus for rel in entry.paths()):
                pm.validation.add(
                    Violation(
                        kind="sharing",
                        type_name=type_name,
                        field=stmt.field,
                        new_parent=base_var,
                        old_parent=other,
                        line=stmt.line,
                    )
                )


def _definite_aliases(pm: PathMatrix, var: str) -> list[str]:
    """``var`` plus every variable that definitely points to the same node."""
    aliases = [var]
    for other in pm.variables:
        if other != var and pm.must_alias(var, other):
            aliases.append(other)
    return aliases


def _drop_field_paths(pm: PathMatrix, sources: list[str], field_name: str) -> None:
    """Remove single-link ``field_name`` path facts emanating from ``sources``.

    Dropping a path fact is always safe for aliasing purposes: alias claims
    are carried by explicit alias relations, never by the absence of a path.
    """
    for src in sources:
        for other in list(pm.variables):
            if other == src:
                continue
            entry = pm.get(src, other)
            if not entry.has_path:
                continue
            kept = [
                rel
                for rel in entry.relations
                if not (rel.is_path and rel.field == field_name and not rel.plus)
            ]
            pm.set(src, other, PathEntry(kept))


# ---------------------------------------------------------------------------
# calls
# ---------------------------------------------------------------------------
def _apply_calls_in_expr(
    pm: PathMatrix, expr: Expr, ctx: TransferContext, line: int | None
) -> None:
    """Apply the side effects of every call contained in ``expr``."""
    for node in expr.walk():
        if isinstance(node, Call):
            _apply_call_effects(pm, node, ctx, line)


def _apply_call_effects(
    pm: PathMatrix, call: Call, ctx: TransferContext, line: int | None
) -> None:
    summary = ctx.summaries.get(call.func)
    pointer_args = [
        a.ident for a in call.args if isinstance(a, Name) and ctx.is_tracked(a.ident)
    ]
    if summary is None:
        if ctx.program.function_named(call.func) is None:
            # builtin (sqrt, print, ...): no pointer side effects
            return
        # unknown user function: assume it may rearrange anything reachable
        for var in pointer_args:
            type_name = ctx.type_of_var(var)
            if type_name and type_name in ctx.adds_types and ctx.use_adds:
                pm.validation.add(
                    Violation(
                        kind="unknown_store",
                        type_name=type_name,
                        field="*",
                        new_parent=var,
                        line=line,
                    )
                )
        return
    # summary-driven handling (see interproc.FunctionSummary)
    if getattr(summary, "rearranges_shape", False) and not getattr(
        summary, "preserves_abstraction", False
    ):
        if not ctx.use_adds:
            return
        # the callee rewires pointer fields and cannot be shown to restore the
        # declarations it touches: every ADDS type owning one of those fields
        # must be considered invalid after the call
        affected_types: set[str] = set()
        for field_name in getattr(summary, "pointer_fields_written", set()):
            owner = ctx.field_owner(field_name)
            if owner is not None and owner in ctx.adds_types:
                affected_types.add(owner)
        for var in pointer_args:
            type_name = ctx.type_of_var(var)
            if type_name and type_name in ctx.adds_types:
                affected_types.add(type_name)
        culprit = pointer_args[0] if pointer_args else call.func
        for type_name in sorted(affected_types):
            pm.validation.add(
                Violation(
                    kind="unknown_store",
                    type_name=type_name,
                    field="*",
                    new_parent=culprit,
                    line=line,
                )
            )


def _apply_call_result(
    pm: PathMatrix, target: str, call: Call, ctx: TransferContext
) -> None:
    """Handle ``p = f(...)`` for a tracked ``p``."""
    summary = ctx.summaries.get(call.func)
    pointer_args = [
        a.ident for a in call.args if isinstance(a, Name) and ctx.is_tracked(a.ident)
    ]
    if summary is not None and getattr(summary, "returns_fresh", False):
        pm.set_fresh(target)
        return
    if summary is not None and getattr(summary, "returns_null", False):
        pm.set_nil(target)
        return
    # the result may alias (or reach / be reached from) any pointer argument
    pm.ensure_variable(target)
    pm.clear_row_and_column(target)
    pm.nil_vars.discard(target)
    candidates = pointer_args
    if summary is not None:
        may_return = getattr(summary, "may_return_params", None)
        if may_return is not None:
            candidates = [
                a.ident
                for i, a in enumerate(call.args)
                if isinstance(a, Name) and ctx.is_tracked(a.ident) and i in may_return
            ]
    for var in candidates:
        if pm.is_nil(var):
            continue
        pm.set(var, target, pm.get(var, target).add(Relation.alias(definite=False)))
    if summary is None and not candidates:
        _assign_unknown(pm, target, ctx)
