"""The conservative baseline: no structure information at all.

This is approach (1) of the paper's section 2.1 — "concentrate on analyzing
arrays, and make overly conservative assumptions for all pointer data
structures".  Every pair of pointer variables may alias, every pair of heap
accesses through pointers may conflict, and no traversal loop can be
parallelized.  The precision experiments (DESIGN.md experiment E5) compare
this oracle against the k-limited baseline and against ADDS + general path
matrix analysis.
"""

from __future__ import annotations

from repro.lang.ast_nodes import FunctionDecl, Program, collect_pointer_variables
from repro.pathmatrix.alias import AccessPath, AliasAnswer
from repro.pathmatrix.matrix import PathMatrix


def baseline_roundrobin(
    program: Program,
    function_name: str,
    use_adds: bool = True,
    initial: PathMatrix | None = None,
):
    """Run the seed's round-robin fixpoint engine on one function.

    This is the reference implementation the worklist engine is validated
    (golden-equivalence tests) and benchmarked against: every block is
    re-transferred on every sweep, statements copy the matrix individually,
    and convergence is detected with the dense cell-by-cell comparison.
    Returns the same :class:`~repro.pathmatrix.analysis.AnalysisResult`
    shape as the default engine.
    """
    from repro.pathmatrix.analysis import PathMatrixAnalysis

    analysis = PathMatrixAnalysis(program, use_adds=use_adds)
    return analysis.analyze_function(function_name, initial=initial, solver="roundrobin")


def conservative_matrix(variables: list[str]) -> PathMatrix:
    """A path matrix with ``=?`` in every off-diagonal entry.

    This reproduces the left-hand matrix of the paper's section 3.3.2: if the
    compiler cannot discover that ``next`` traverses the list acyclically, it
    must assume that ``head`` and all values of ``p`` are potential aliases.
    """
    return PathMatrix.conservative(variables)


def conservative_matrix_for(program: Program, function_name: str) -> PathMatrix:
    func = program.function_named(function_name)
    if func is None:
        raise KeyError(f"no function named {function_name!r}")
    pointer_vars = collect_pointer_variables(func, program)
    for p in func.params:
        pointer_vars.add(p.name)
    return conservative_matrix(sorted(pointer_vars))


class ConservativeOracle:
    """An alias oracle that can never say "no"."""

    name = "conservative"

    def __init__(self, variables: list[str] | None = None):
        self.variables = list(variables or [])

    def alias(self, a: str, b: str) -> AliasAnswer:
        return AliasAnswer.MUST if a == b else AliasAnswer.MAY

    def may_alias(self, a: str, b: str) -> bool:
        return True

    def must_alias(self, a: str, b: str) -> bool:
        return a == b

    def access_conflict(self, a: AccessPath, b: AccessPath) -> AliasAnswer:
        if a.field is None and b.field is None:
            return AliasAnswer.MUST if a.var == b.var else AliasAnswer.NO
        if a.field is None or b.field is None:
            return AliasAnswer.NO
        if a.field != "*" and b.field != "*" and a.field != b.field:
            return AliasAnswer.NO
        return self.alias(a.var, b.var)

    def may_conflict(self, a: AccessPath, b: AccessPath) -> bool:
        return self.access_conflict(a, b).possible

    def not_aliased_pairs(self) -> list[tuple[str, str]]:
        return []

    def precision_score(self) -> float:
        return 0.0
