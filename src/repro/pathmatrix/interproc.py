"""Interprocedural side-effect summaries.

The paper analyzes the Barnes–Hut program interprocedurally: ``build_tree``
(and its helpers) are validated bottom-up, ``compute_force`` is shown to be
read-only with respect to the octree reachable from ``root``, and
``compute_new_vel_pos`` writes only data fields of its argument.  This module
computes the per-function summaries that make those arguments possible at
call sites:

* which *data* fields a call may write (transitively),
* which *pointer* fields a call may write — i.e. whether it can rearrange a
  structure's shape,
* whether the function allocates, returns a freshly built structure, may
  return one of its parameters, or may return NULL,
* which parameters' reachable structure it may write through.

Summaries are computed to a transitive fixed point over the (possibly
recursive) call graph — either globally (:func:`summarize_program`) or one
strongly connected component at a time (:func:`summarize_scc`), which is how
both :class:`~repro.pathmatrix.analysis.PathMatrixAnalysis` and the staged
incremental engine resolve them bottom-up: a component's summaries depend
only on its members' bodies and on the already-final summaries of external
callees, so they can be content-addressed and reused across edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Assign,
    Call,
    Expr,
    FieldAccess,
    FieldAssign,
    FunctionDecl,
    IndexAccess,
    Name,
    New,
    NullLit,
    Program,
    Return,
    iter_statements,
)


@dataclass
class FunctionSummary:
    """Side effects of one function, transitively including its callees."""

    name: str
    #: data (non-pointer) fields possibly written, by field name
    data_fields_written: set[str] = field(default_factory=set)
    #: pointer fields possibly written, by field name
    pointer_fields_written: set[str] = field(default_factory=set)
    #: fields possibly read (data and pointer alike), by field name
    fields_read: set[str] = field(default_factory=set)
    #: indices of parameters through which writes may occur
    written_params: set[int] = field(default_factory=set)
    #: True when some store goes through a non-parameter pointer, so the
    #: written structure cannot be attributed to a specific parameter
    writes_through_unknown: bool = False
    #: indices of parameters the return value may alias / reach
    may_return_params: set[int] = field(default_factory=set)
    #: indices of parameters actually used as pointers (dereferenced, stored
    #: through, or forwarded to a pointer position of a callee)
    pointer_params: set[int] = field(default_factory=set)
    allocates: bool = False
    returns_fresh: bool = False
    returns_null: bool = False
    callees: set[str] = field(default_factory=set)
    #: True when the function writes pointer fields (may change shapes)
    rearranges_shape: bool = False
    #: set by the validation pass when the function provably restores every
    #: ADDS abstraction it breaks before returning
    preserves_abstraction: bool = False

    @property
    def is_read_only(self) -> bool:
        """No field of any reachable structure is written."""
        return not self.data_fields_written and not self.pointer_fields_written

    # -- export / import (the driver's on-disk cache stores these) ------------
    def to_dict(self) -> dict:
        """A JSON-serializable, deterministic snapshot of this summary."""
        return {
            "name": self.name,
            "data_fields_written": sorted(self.data_fields_written),
            "pointer_fields_written": sorted(self.pointer_fields_written),
            "fields_read": sorted(self.fields_read),
            "written_params": sorted(self.written_params),
            "writes_through_unknown": self.writes_through_unknown,
            "may_return_params": sorted(self.may_return_params),
            "pointer_params": sorted(self.pointer_params),
            "allocates": self.allocates,
            "returns_fresh": self.returns_fresh,
            "returns_null": self.returns_null,
            "callees": sorted(self.callees),
            "rearranges_shape": self.rearranges_shape,
            "preserves_abstraction": self.preserves_abstraction,
        }

    @staticmethod
    def from_dict(payload: dict) -> "FunctionSummary":
        return FunctionSummary(
            name=payload["name"],
            data_fields_written=set(payload["data_fields_written"]),
            pointer_fields_written=set(payload["pointer_fields_written"]),
            fields_read=set(payload["fields_read"]),
            written_params=set(payload["written_params"]),
            writes_through_unknown=payload["writes_through_unknown"],
            may_return_params=set(payload["may_return_params"]),
            pointer_params=set(payload["pointer_params"]),
            allocates=payload["allocates"],
            returns_fresh=payload["returns_fresh"],
            returns_null=payload["returns_null"],
            callees=set(payload["callees"]),
            rearranges_shape=payload["rearranges_shape"],
            preserves_abstraction=payload["preserves_abstraction"],
        )

    def digest(self) -> str:
        """A stable content hash of the summary (a cache-key ingredient)."""
        import hashlib
        import json

        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def describe(self) -> str:
        parts = [f"summary of {self.name}:"]
        parts.append(f"  data fields written: {sorted(self.data_fields_written) or '(none)'}")
        parts.append(
            f"  pointer fields written: {sorted(self.pointer_fields_written) or '(none)'}"
        )
        parts.append(f"  allocates: {self.allocates}, returns fresh: {self.returns_fresh}")
        parts.append(f"  rearranges shape: {self.rearranges_shape}")
        parts.append(f"  preserves abstraction: {self.preserves_abstraction}")
        return "\n".join(parts)


def summaries_from_payloads(payloads) -> dict[str, FunctionSummary]:
    """Re-intern summary payloads (``to_dict`` dicts) into live summaries.

    The batch driver's workers ship results across process boundaries as
    plain dicts — never as pickled analysis objects — and the coordinator
    rebuilds :class:`FunctionSummary` instances exactly once, here, for
    report rendering and scheduling bookkeeping.  ``None`` entries (functions
    whose analysis failed before a summary existed) are skipped.
    """
    summaries: dict[str, FunctionSummary] = {}
    for payload in payloads:
        if payload is None:
            continue
        summaries[payload["name"]] = FunctionSummary.from_dict(payload)
    return summaries


def _pointer_field_names(program: Program) -> set[str]:
    """Names of all pointer fields declared by any record type (precomputed
    once per program instead of rescanning the type list per statement)."""
    names: set[str] = set()
    for decl in program.types:
        for fdecl in decl.fields:
            if fdecl.is_pointer:
                names.add(fdecl.name)
    return names


def _summarize_one(
    program: Program, func: FunctionDecl, pointer_fields: set[str] | None = None
) -> FunctionSummary:
    """Direct (non-transitive) effects of ``func``."""
    if pointer_fields is None:
        pointer_fields = _pointer_field_names(program)
    summary = FunctionSummary(name=func.name)
    param_names = {p.name: i for i, p in enumerate(func.params)}
    returns_values: list[Expr] = []
    locally_fresh: set[str] = set()

    for stmt in iter_statements(func.body):
        if isinstance(stmt, FieldAssign):
            if stmt.field in pointer_fields:
                summary.pointer_fields_written.add(stmt.field)
            else:
                summary.data_fields_written.add(stmt.field)
            if isinstance(stmt.base, Name) and stmt.base.ident in param_names:
                summary.written_params.add(param_names[stmt.base.ident])
            else:
                summary.writes_through_unknown = True
        if isinstance(stmt, FieldAssign) and isinstance(stmt.base, Name):
            if stmt.base.ident in param_names:
                summary.pointer_params.add(param_names[stmt.base.ident])
        # single AST walk collecting both field accesses and calls
        for node in stmt.walk():
            if isinstance(node, FieldAccess):
                is_store_target = (
                    isinstance(stmt, FieldAssign)
                    and node.base is stmt.base
                    and node.field == stmt.field
                )
                if not is_store_target:
                    summary.fields_read.add(node.field)
                if isinstance(node.base, Name) and node.base.ident in param_names:
                    summary.pointer_params.add(param_names[node.base.ident])
            elif isinstance(node, Call):
                summary.callees.add(node.func)
        if isinstance(stmt, Assign):
            if isinstance(stmt.value, New):
                summary.allocates = True
                locally_fresh.add(stmt.target)
            elif isinstance(stmt.value, Name) and stmt.value.ident in locally_fresh:
                locally_fresh.add(stmt.target)
            elif stmt.target in locally_fresh and not isinstance(stmt.value, New):
                # reassigned from something else: no longer certainly fresh
                if not (isinstance(stmt.value, Name) and stmt.value.ident in locally_fresh):
                    locally_fresh.discard(stmt.target)
        if isinstance(stmt, Return) and stmt.value is not None:
            returns_values.append(stmt.value)

    # classify the return value
    if returns_values:
        all_null = all(isinstance(v, NullLit) for v in returns_values)
        summary.returns_null = all_null
        for value in returns_values:
            if isinstance(value, New):
                summary.returns_fresh = True
            elif isinstance(value, Name):
                if value.ident in param_names:
                    summary.may_return_params.add(param_names[value.ident])
                elif value.ident in locally_fresh:
                    summary.returns_fresh = True
                else:
                    # unknown local: may reach any pointer parameter
                    summary.may_return_params |= set(param_names.values())
            elif isinstance(value, (FieldAccess, IndexAccess, Call)):
                summary.may_return_params |= set(param_names.values())
    summary.rearranges_shape = bool(summary.pointer_fields_written)
    return summary


def _call_argument_map(program: Program) -> dict[str, list[tuple[str, dict[int, int]]]]:
    """For each function, the calls it makes with a callee-param -> caller-param map."""
    result: dict[str, list[tuple[str, dict[int, int]]]] = {}
    for func in program.functions:
        param_names = {p.name: i for i, p in enumerate(func.params)}
        edges: list[tuple[str, dict[int, int]]] = []
        for stmt in iter_statements(func.body):
            for node in stmt.walk():
                if isinstance(node, Call):
                    mapping: dict[int, int] = {}
                    for j, arg in enumerate(node.args):
                        if isinstance(arg, Name) and arg.ident in param_names:
                            mapping[j] = param_names[arg.ident]
                    edges.append((node.func, mapping))
        result[func.name] = edges
    return result


def direct_summaries(program: Program) -> dict[str, FunctionSummary]:
    """Direct (non-transitive) effect summaries of every function."""
    pointer_fields = _pointer_field_names(program)
    return {
        f.name: _summarize_one(program, f, pointer_fields) for f in program.functions
    }


def condensed_sccs(callees: dict[str, set[str]], order: list[str]) -> list[list[str]]:
    """Bottom-up strongly connected components of a callee graph.

    ``order`` fixes the DFS root order (normally program declaration order);
    every component appears before any component that calls into it, and the
    members of each component come back sorted.  This is a dependency-free
    sibling of the driver's condensation — the pathmatrix layer cannot import
    :mod:`repro.driver.callgraph` without inverting the layering.
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    defined = set(order)

    def edges(name: str):
        return iter(sorted(callees.get(name, set()) & defined))

    for root in order:
        if root in index_of:
            continue
        work = [(root, edges(root))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for callee in it:
                if callee not in index_of:
                    index_of[callee] = lowlink[callee] = counter
                    counter += 1
                    stack.append(callee)
                    on_stack.add(callee)
                    work.append((callee, edges(callee)))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[callee])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


def summarize_scc(
    program: Program,
    members: list[str],
    external: dict[str, FunctionSummary],
    direct: dict[str, FunctionSummary] | None = None,
    call_maps: dict[str, list[tuple[str, dict[int, int]]]] | None = None,
) -> dict[str, FunctionSummary]:
    """Transitive summaries of one call-graph component, given its callees'.

    ``members`` are the component's function names (one function, or a group
    of mutually recursive ones); ``external`` holds the final summaries of
    every function below the component in the bottom-up order.  Callees found
    in neither (builtins) are skipped, exactly as in
    :func:`summarize_program`, and the result is the same least fixpoint that
    the global pass assigns the members — which is what lets summaries be
    computed (and cached) one component at a time.

    ``direct`` may supply precomputed :func:`direct_summaries` entries for
    the members (they are refined in place); ``call_maps`` may supply a
    precomputed :func:`_call_argument_map` so per-component calls do not
    rescan the whole program.
    """
    if call_maps is None:
        call_maps = _call_argument_map(program)
    pointer_fields = None
    summaries: dict[str, FunctionSummary] = {}
    for name in members:
        if direct is not None and name in direct:
            summaries[name] = direct[name]
            continue
        func = program.function_named(name)
        if func is None:
            raise KeyError(f"no function named {name!r}")
        if pointer_fields is None:
            pointer_fields = _pointer_field_names(program)
        summaries[name] = _summarize_one(program, func, pointer_fields)

    def lookup(callee_name: str) -> FunctionSummary | None:
        local = summaries.get(callee_name)
        if local is not None:
            return local
        return external.get(callee_name)

    changed = True
    iterations = 0
    while changed and iterations < len(members) + 5:
        changed = False
        iterations += 1
        for name in members:
            caller = summaries[name]
            for callee_name, mapping in call_maps.get(name, ()):
                callee = lookup(callee_name)
                if callee is None:
                    continue
                for callee_idx, caller_idx in mapping.items():
                    if (
                        callee_idx in callee.pointer_params
                        and caller_idx not in caller.pointer_params
                    ):
                        caller.pointer_params.add(caller_idx)
                        changed = True
        for name in members:
            summary = summaries[name]
            for callee_name in sorted(summary.callees):
                callee = lookup(callee_name)
                if callee is None:
                    continue  # builtin
                before = (
                    len(summary.data_fields_written),
                    len(summary.pointer_fields_written),
                    len(summary.fields_read),
                    summary.allocates,
                    summary.rearranges_shape,
                )
                summary.data_fields_written |= callee.data_fields_written
                summary.pointer_fields_written |= callee.pointer_fields_written
                summary.fields_read |= callee.fields_read
                summary.allocates = summary.allocates or callee.allocates
                summary.rearranges_shape = (
                    summary.rearranges_shape or callee.rearranges_shape
                )
                if not callee.is_read_only:
                    summary.writes_through_unknown = True
                after = (
                    len(summary.data_fields_written),
                    len(summary.pointer_fields_written),
                    len(summary.fields_read),
                    summary.allocates,
                    summary.rearranges_shape,
                )
                if before != after:
                    changed = True
    return summaries


def summarize_program(program: Program) -> dict[str, FunctionSummary]:
    """Compute transitive side-effect summaries for every function."""
    pointer_fields = _pointer_field_names(program)
    summaries = {
        f.name: _summarize_one(program, f, pointer_fields) for f in program.functions
    }
    call_maps = _call_argument_map(program)

    # propagate callee effects to callers until a fixed point
    changed = True
    iterations = 0
    while changed and iterations < len(summaries) + 5:
        changed = False
        iterations += 1
        for name, edges in call_maps.items():
            caller = summaries[name]
            for callee_name, mapping in edges:
                callee = summaries.get(callee_name)
                if callee is None:
                    continue
                for callee_idx, caller_idx in mapping.items():
                    if callee_idx in callee.pointer_params and caller_idx not in caller.pointer_params:
                        caller.pointer_params.add(caller_idx)
                        changed = True
        for summary in summaries.values():
            for callee_name in list(summary.callees):
                callee = summaries.get(callee_name)
                if callee is None:
                    continue  # builtin
                before = (
                    len(summary.data_fields_written),
                    len(summary.pointer_fields_written),
                    len(summary.fields_read),
                    summary.allocates,
                    summary.rearranges_shape,
                )
                summary.data_fields_written |= callee.data_fields_written
                summary.pointer_fields_written |= callee.pointer_fields_written
                summary.fields_read |= callee.fields_read
                summary.allocates = summary.allocates or callee.allocates
                summary.rearranges_shape = (
                    summary.rearranges_shape or callee.rearranges_shape
                )
                if not callee.is_read_only:
                    # the callee's writes go through structure we cannot map
                    # back onto this function's own parameters
                    summary.writes_through_unknown = True
                after = (
                    len(summary.data_fields_written),
                    len(summary.pointer_fields_written),
                    len(summary.fields_read),
                    summary.allocates,
                    summary.rearranges_shape,
                )
                if before != after:
                    changed = True
    return summaries
