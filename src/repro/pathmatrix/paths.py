"""Relation values stored in path matrix entries.

An entry ``PM[r][s]`` is a :class:`PathEntry`: a (small, immutable) set of
:class:`Relation` values.  The relations mirror the notations used in the
paper's worked examples:

=========  ================================================================
notation    meaning
=========  ================================================================
``=``       definite alias — r and s point to the same node
``=?``      possible alias
``f``       a path of exactly one ``f`` link from r's node to s's node
``f+``      a path of one or more ``f`` links
``f?`` etc  the same, but only *possibly* present (after a control-flow join)
(empty)     no known relationship; in particular r and s are **not** aliases
=========  ================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable


@dataclass(frozen=True, order=True)
class Relation:
    """A single relationship between two pointer variables.

    ``kind`` is ``"alias"`` or ``"path"``.  For paths, ``field`` names the
    link field and ``plus`` records whether the path may be longer than one
    link.  ``definite`` distinguishes facts that hold on every execution path
    reaching the program point from facts that hold on some of them.
    """

    kind: str                    # "alias" | "path"
    field: str = ""              # for kind == "path"
    plus: bool = False           # path of length >= 1 (rather than exactly 1)
    definite: bool = True

    # -- constructors --------------------------------------------------------
    @staticmethod
    def alias(definite: bool = True) -> "Relation":
        return Relation(kind="alias", definite=definite)

    @staticmethod
    def path(field: str, plus: bool = False, definite: bool = True) -> "Relation":
        return Relation(kind="path", field=field, plus=plus, definite=definite)

    # -- queries -------------------------------------------------------------
    @property
    def is_alias(self) -> bool:
        return self.kind == "alias"

    @property
    def is_path(self) -> bool:
        return self.kind == "path"

    def weakened(self) -> "Relation":
        """The same relation, but only possibly holding."""
        if not self.definite:
            return self
        return Relation(kind=self.kind, field=self.field, plus=self.plus, definite=False)

    def extended(self) -> "Relation":
        """A path extended by one more link of the same field (f -> f+)."""
        if self.is_path:
            return Relation(kind="path", field=self.field, plus=True, definite=self.definite)
        return self

    def __str__(self) -> str:
        if self.is_alias:
            return "=" if self.definite else "=?"
        text = self.field + ("+" if self.plus else "")
        return text if self.definite else text + "?"


class PathEntry:
    """An immutable set of :class:`Relation` values (one matrix cell)."""

    __slots__ = ("relations",)

    def __init__(self, relations: Iterable[Relation] = ()):
        self.relations: FrozenSet[Relation] = frozenset(relations)

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def empty() -> "PathEntry":
        return EMPTY_ENTRY

    @staticmethod
    def definite_alias() -> "PathEntry":
        return PathEntry([Relation.alias(definite=True)])

    @staticmethod
    def possible_alias() -> "PathEntry":
        return PathEntry([Relation.alias(definite=False)])

    @staticmethod
    def single_path(field: str, plus: bool = False, definite: bool = True) -> "PathEntry":
        return PathEntry([Relation.path(field, plus=plus, definite=definite)])

    # -- queries ----------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.relations

    @property
    def may_alias(self) -> bool:
        """True when the entry allows the two pointers to name the same node."""
        return any(r.is_alias for r in self.relations)

    @property
    def must_alias(self) -> bool:
        return any(r.is_alias and r.definite for r in self.relations)

    @property
    def has_path(self) -> bool:
        return any(r.is_path for r in self.relations)

    def path_fields(self) -> set[str]:
        return {r.field for r in self.relations if r.is_path}

    def paths(self) -> list[Relation]:
        return sorted(r for r in self.relations if r.is_path)

    def guarantees_not_alias(self) -> bool:
        """The paper: an empty entry (or a pure-path entry) guarantees no alias."""
        return not self.may_alias

    # -- algebra ---------------------------------------------------------------
    def add(self, relation: Relation) -> "PathEntry":
        if relation in self.relations:
            return self
        return PathEntry(self.relations | {relation})

    def union(self, other: "PathEntry") -> "PathEntry":
        if not other.relations:
            return self
        if not self.relations:
            return other
        return PathEntry(self.relations | other.relations)

    def join(self, other: "PathEntry") -> "PathEntry":
        """Control-flow join of two entries (least upper bound).

        Relations present on both sides keep their strength (a definite
        relation joined with the same definite relation stays definite);
        relations present on only one side are weakened to "possible".
        An empty entry on one side therefore weakens everything from the
        other side — including downgrading ``=`` to ``=?``.
        """
        if self.relations == other.relations:
            return self
        result: set[Relation] = set()
        mine = {self._key(r): r for r in self.relations}
        theirs = {self._key(r): r for r in other.relations}
        for key in set(mine) | set(theirs):
            a, b = mine.get(key), theirs.get(key)
            if a is not None and b is not None:
                definite = a.definite and b.definite
                base = a if a.definite else b
                result.add(
                    Relation(kind=base.kind, field=base.field, plus=base.plus, definite=definite)
                )
            else:
                present = a if a is not None else b
                assert present is not None
                result.add(present.weakened())
        return PathEntry(result)

    def weakened(self) -> "PathEntry":
        """Every relation becomes merely possible."""
        return PathEntry(r.weakened() for r in self.relations)

    @staticmethod
    def _key(relation: Relation) -> tuple:
        return (relation.kind, relation.field, relation.plus)

    # -- presentation --------------------------------------------------------------
    def __str__(self) -> str:
        if not self.relations:
            return ""
        return ",".join(str(r) for r in sorted(self.relations))

    def __repr__(self) -> str:  # pragma: no cover
        return f"PathEntry({sorted(self.relations)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PathEntry) and self.relations == other.relations

    def __hash__(self) -> int:
        return hash(self.relations)


#: The canonical empty entry ("no known relationship; definitely not aliases").
EMPTY_ENTRY = PathEntry()
