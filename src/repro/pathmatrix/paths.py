"""Relation values stored in path matrix entries.

An entry ``PM[r][s]`` is a :class:`PathEntry`: a (small, immutable) set of
:class:`Relation` values.  The relations mirror the notations used in the
paper's worked examples:

=========  ================================================================
notation    meaning
=========  ================================================================
``=``       definite alias — r and s point to the same node
``=?``      possible alias
``f``       a path of exactly one ``f`` link from r's node to s's node
``f+``      a path of one or more ``f`` links
``f?`` etc  the same, but only *possibly* present (after a control-flow join)
(empty)     no known relationship; in particular r and s are **not** aliases
=========  ================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple


#: Safety valve for the intern/memo tables.  The relation universe of a real
#: program is tiny (kinds x fields x 2 x 2), so in practice the caches stay
#: far below this; the cap only guards against pathological generated inputs.
_MEMO_LIMIT = 1 << 18


@dataclass(frozen=True, order=True)
class Relation:
    """A single relationship between two pointer variables.

    ``kind`` is ``"alias"`` or ``"path"``.  For paths, ``field`` names the
    link field and ``plus`` records whether the path may be longer than one
    link.  ``definite`` distinguishes facts that hold on every execution path
    reaching the program point from facts that hold on some of them.
    """

    kind: str                    # "alias" | "path"
    field: str = ""              # for kind == "path"
    plus: bool = False           # path of length >= 1 (rather than exactly 1)
    definite: bool = True

    # -- constructors --------------------------------------------------------
    @staticmethod
    def make(kind: str, field: str = "", plus: bool = False, definite: bool = True) -> "Relation":
        """Interned constructor: one canonical object per distinct relation."""
        key = (kind, field, plus, definite)
        cached = _RELATION_CACHE.get(key)
        if cached is None:
            cached = Relation(kind=kind, field=field, plus=plus, definite=definite)
            if len(_RELATION_CACHE) < _MEMO_LIMIT:
                _RELATION_CACHE[key] = cached
        return cached

    @staticmethod
    def alias(definite: bool = True) -> "Relation":
        return Relation.make("alias", definite=definite)

    @staticmethod
    def path(field: str, plus: bool = False, definite: bool = True) -> "Relation":
        return Relation.make("path", field=field, plus=plus, definite=definite)

    # -- queries -------------------------------------------------------------
    @property
    def is_alias(self) -> bool:
        return self.kind == "alias"

    @property
    def is_path(self) -> bool:
        return self.kind == "path"

    def weakened(self) -> "Relation":
        """The same relation, but only possibly holding."""
        if not self.definite:
            return self
        return Relation.make(self.kind, self.field, self.plus, definite=False)

    def extended(self) -> "Relation":
        """A path extended by one more link of the same field (f -> f+)."""
        if self.is_path:
            return Relation.make("path", self.field, plus=True, definite=self.definite)
        return self

    def __reduce__(self):
        # re-intern on unpickle so cross-process results keep the canonical
        # one-object-per-relation property the memo tables rely on
        return (Relation.make, (self.kind, self.field, self.plus, self.definite))

    def __str__(self) -> str:
        if self.is_alias:
            return "=" if self.definite else "=?"
        text = self.field + ("+" if self.plus else "")
        return text if self.definite else text + "?"


#: intern table for :class:`Relation` (see :meth:`Relation.make`)
_RELATION_CACHE: Dict[Tuple[str, str, bool, bool], Relation] = {}


class PathEntry:
    """An immutable, *interned* set of :class:`Relation` values (one matrix cell).

    Entries are canonical: constructing a ``PathEntry`` from the same set of
    relations returns the same object, so equality is usually a pointer
    comparison and entries can be shared freely between matrices.  The
    interning invariant — **entries must never be mutated in place** — is
    upheld by every operation returning a (possibly cached) new entry.
    """

    __slots__ = ("relations", "_hash")

    _intern: Dict[FrozenSet[Relation], "PathEntry"] = {}

    def __new__(cls, relations: Iterable[Relation] = ()):
        rels = relations if type(relations) is frozenset else frozenset(relations)
        cached = cls._intern.get(rels)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self.relations = rels
        self._hash = hash(rels)
        if len(cls._intern) < _MEMO_LIMIT:
            cls._intern[rels] = self
        return self

    def __init__(self, relations: Iterable[Relation] = ()):
        # all state is set in __new__ (which may return a cached instance)
        pass

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def empty() -> "PathEntry":
        return EMPTY_ENTRY

    @staticmethod
    def definite_alias() -> "PathEntry":
        return _DEFINITE_ALIAS_ENTRY

    @staticmethod
    def possible_alias() -> "PathEntry":
        return _POSSIBLE_ALIAS_ENTRY

    @staticmethod
    def single_path(field: str, plus: bool = False, definite: bool = True) -> "PathEntry":
        return PathEntry([Relation.path(field, plus=plus, definite=definite)])

    # -- queries ----------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.relations

    @property
    def may_alias(self) -> bool:
        """True when the entry allows the two pointers to name the same node."""
        return any(r.is_alias for r in self.relations)

    @property
    def must_alias(self) -> bool:
        return any(r.is_alias and r.definite for r in self.relations)

    @property
    def has_path(self) -> bool:
        return any(r.is_path for r in self.relations)

    def path_fields(self) -> set[str]:
        return {r.field for r in self.relations if r.is_path}

    def paths(self) -> list[Relation]:
        return sorted(r for r in self.relations if r.is_path)

    def guarantees_not_alias(self) -> bool:
        """The paper: an empty entry (or a pure-path entry) guarantees no alias."""
        return not self.may_alias

    # -- algebra ---------------------------------------------------------------
    def add(self, relation: Relation) -> "PathEntry":
        if relation in self.relations:
            return self
        return PathEntry(self.relations | {relation})

    def union(self, other: "PathEntry") -> "PathEntry":
        if not other.relations:
            return self
        if not self.relations:
            return other
        if self is other:
            return self
        key = (self.relations, other.relations)
        cached = _UNION_MEMO.get(key)
        if cached is None:
            cached = PathEntry(self.relations | other.relations)
            _memo_store(_UNION_MEMO, key, cached)
        return cached

    def join(self, other: "PathEntry") -> "PathEntry":
        """Control-flow join of two entries (least upper bound).

        Relations present on both sides keep their strength (a definite
        relation joined with the same definite relation stays definite);
        relations present on only one side are weakened to "possible".
        An empty entry on one side therefore weakens everything from the
        other side — including downgrading ``=`` to ``=?``.
        """
        if self.relations == other.relations:
            return self
        key = (self.relations, other.relations)
        cached = _JOIN_MEMO.get(key)
        if cached is not None:
            return cached
        result: set[Relation] = set()
        mine = {self._key(r): r for r in self.relations}
        theirs = {self._key(r): r for r in other.relations}
        for rel_key in set(mine) | set(theirs):
            a, b = mine.get(rel_key), theirs.get(rel_key)
            if a is not None and b is not None:
                definite = a.definite and b.definite
                base = a if a.definite else b
                result.add(Relation.make(base.kind, base.field, base.plus, definite))
            else:
                present = a if a is not None else b
                assert present is not None
                result.add(present.weakened())
        joined = PathEntry(result)
        _memo_store(_JOIN_MEMO, key, joined)
        return joined

    def weakened(self) -> "PathEntry":
        """Every relation becomes merely possible."""
        cached = _WEAKEN_MEMO.get(self.relations)
        if cached is None:
            cached = PathEntry(r.weakened() for r in self.relations)
            _memo_store(_WEAKEN_MEMO, self.relations, cached)
        return cached

    @staticmethod
    def _key(relation: Relation) -> tuple:
        return (relation.kind, relation.field, relation.plus)

    # -- pickling ---------------------------------------------------------------
    def __reduce__(self):
        # Default __slots__ pickling would call ``PathEntry.__new__(cls)`` —
        # which returns the interned EMPTY_ENTRY singleton — and then write
        # slot state onto it, corrupting the canonical empty entry for the
        # whole process.  Reconstructing through the constructor instead
        # re-interns the entry (pointer-equality comparisons keep working on
        # unpickled matrices).
        return (PathEntry, (self.relations,))

    # -- presentation --------------------------------------------------------------
    def __str__(self) -> str:
        if not self.relations:
            return ""
        return ",".join(str(r) for r in sorted(self.relations))

    def __repr__(self) -> str:  # pragma: no cover
        return f"PathEntry({sorted(self.relations)})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, PathEntry) and self.relations == other.relations

    def __hash__(self) -> int:
        return self._hash


def _memo_store(memo: dict, key, value) -> None:
    if len(memo) >= _MEMO_LIMIT:
        memo.clear()
    memo[key] = value


_JOIN_MEMO: Dict[Tuple[FrozenSet[Relation], FrozenSet[Relation]], PathEntry] = {}
_UNION_MEMO: Dict[Tuple[FrozenSet[Relation], FrozenSet[Relation]], PathEntry] = {}
_WEAKEN_MEMO: Dict[FrozenSet[Relation], PathEntry] = {}

#: The canonical empty entry ("no known relationship; definitely not aliases").
EMPTY_ENTRY = PathEntry()
_DEFINITE_ALIAS_ENTRY = PathEntry([Relation.alias(definite=True)])
_POSSIBLE_ALIAS_ENTRY = PathEntry([Relation.alias(definite=False)])
