"""General path matrix analysis (paper section 3.3).

The path matrix ``PM`` estimates, at every program point, the relationship
between every pair of live pointer variables.  ``PM[r][s]`` records an
explicit path or alias, if any, from the node pointed to by ``r`` to the node
pointed to by ``s``:

* ``=``        — definite alias (same node),
* ``=?``       — possible alias,
* ``f`` / ``f+`` — a path of exactly one / one-or-more ``f`` links,
* *empty*      — no known path; in particular **not** aliases.

The analysis is *general* in the sense of the paper: it handles structures
that are DAG-like or cyclic by consulting the ADDS declaration — acyclic
fields use the precise rules of Hendren's original path matrix analysis,
while unknown-direction fields fall back to conservative approximations.
It fulfils two roles (paper 3.3): capturing the current shape for
**abstraction validation**, and answering **alias queries** for the
transformation passes.

Modules:

* :mod:`repro.pathmatrix.paths`    — path/alias relation values,
* :mod:`repro.pathmatrix.matrix`   — the :class:`PathMatrix` container,
* :mod:`repro.pathmatrix.rules`    — pointer transfer rules per statement,
* :mod:`repro.pathmatrix.analysis` — CFG fixed point + loop analysis,
* :mod:`repro.pathmatrix.validation` — abstraction validation bookkeeping,
* :mod:`repro.pathmatrix.interproc` — call-site handling via side-effect summaries,
* :mod:`repro.pathmatrix.alias`    — the alias-query API used by transformations,
* :mod:`repro.pathmatrix.baseline` — the fully conservative baseline,
* :mod:`repro.pathmatrix.klimited` — a k-limited storage-graph baseline [JM81].
"""

from repro.pathmatrix.paths import Relation, PathEntry, EMPTY_ENTRY
from repro.pathmatrix.matrix import PathMatrix, cellwise_equivalent
from repro.pathmatrix.validation import Violation, ValidationState
from repro.pathmatrix.rules import (
    TransferContext,
    apply_block,
    apply_statement,
    statement_touches_matrix,
)
from repro.pathmatrix.interproc import FunctionSummary, summarize_program
from repro.pathmatrix.analysis import (
    AnalysisError,
    AnalysisResult,
    PathMatrixAnalysis,
    analyze_function,
    analyze_loop_dependence,
    LoopDependenceReport,
)
from repro.pathmatrix.alias import AliasOracle, AliasAnswer
from repro.pathmatrix.baseline import (
    ConservativeOracle,
    baseline_roundrobin,
    conservative_matrix,
)
from repro.pathmatrix.klimited import KLimitedAnalysis, KLimitedOracle, StorageGraph
from repro.pathmatrix.worklist import SolveStats, solve_roundrobin, solve_worklist

__all__ = [
    "Relation",
    "PathEntry",
    "EMPTY_ENTRY",
    "PathMatrix",
    "cellwise_equivalent",
    "Violation",
    "ValidationState",
    "TransferContext",
    "apply_block",
    "apply_statement",
    "statement_touches_matrix",
    "AnalysisError",
    "SolveStats",
    "solve_worklist",
    "solve_roundrobin",
    "baseline_roundrobin",
    "FunctionSummary",
    "summarize_program",
    "AnalysisResult",
    "PathMatrixAnalysis",
    "analyze_function",
    "analyze_loop_dependence",
    "LoopDependenceReport",
    "AliasOracle",
    "AliasAnswer",
    "ConservativeOracle",
    "conservative_matrix",
    "KLimitedAnalysis",
    "KLimitedOracle",
    "StorageGraph",
]
