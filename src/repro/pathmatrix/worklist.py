"""Generic fixpoint solvers over a CFG.

Two interchangeable engines, shared by the path-matrix analysis and the
k-limited storage-graph baseline:

* :func:`solve_worklist` — the fast engine.  Sweeps run in reverse-postorder
  priority, but a block is only re-joined and re-transferred when the exit
  state of one of its predecessors actually changed (tracked by object
  identity: states are immutable values, so unchanged predecessor objects
  mean an unchanged input).  On an acyclic CFG every block is transferred
  exactly once; with loops, only the blocks inside the changed region are
  revisited.

* :func:`solve_roundrobin` — the seed's original engine, retained as the
  comparison baseline: sweep **every** block in reverse postorder, repeat
  until a whole sweep changes nothing.

Both engines are parameterized over the abstract state: ``transfer(block,
state) -> state`` applies a basic block, ``join(a, b) -> state`` merges
control flow, and ``same(a, b) -> bool`` detects convergence.

The two engines see **identical state trajectories**, not merely equivalent
fixpoints, by construction: skipping a block whose input is unchanged cannot
alter any later state because transfers are deterministic.  This matters —
the path-matrix transfer rules are not monotone (e.g. the acyclic traversal
rule derives *better* facts from *stronger* inputs), so a free-order chaotic
iteration could legitimately settle on a different fixpoint.  Keeping the
sweep structure makes the worklist engine bit-identical to the baseline,
which the golden-equivalence suite asserts on every example program and on
randomly generated CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, TypeVar

from repro.lang.cfg import CFG, BasicBlock


State = TypeVar("State")

#: cap on per-block transfers (the seed capped whole sweeps at the same value)
MAX_FIXPOINT_ITERATIONS = 64


@dataclass
class SolveStats:
    """How much work a fixpoint run performed.

    ``iterations`` is the number of whole-CFG sweeps, for both engines
    (including the final sweep that observes no change); the worklist engine
    skips stable blocks *within* a sweep, which ``blocks_transferred`` —
    the count of transfer-function applications, directly comparable
    between the two engines — makes visible.
    """

    solver: str
    iterations: int = 0
    blocks_transferred: int = 0


def _merged_input(
    cfg: CFG,
    block: BasicBlock,
    init: State,
    exits: Dict[int, State],
    join: Callable[[State, State], State],
) -> State | None:
    if block.index == cfg.entry:
        return init
    preds = [exits[p] for p in block.predecessors if p in exits]
    if not preds:
        return None
    merged = preds[0]
    for other in preds[1:]:
        merged = join(merged, other)
    return merged


def solve_roundrobin(
    cfg: CFG,
    init: State,
    transfer: Callable[[BasicBlock, State], State],
    join: Callable[[State, State], State],
    same: Callable[[State, State], bool],
    max_iterations: int = MAX_FIXPOINT_ITERATIONS,
) -> Tuple[Dict[int, State], Dict[int, State], SolveStats]:
    """The seed's round-robin Kleene iteration (kept as the baseline)."""
    order = cfg.reverse_postorder()
    entry: Dict[int, State] = {cfg.entry: init}
    exits: Dict[int, State] = {}
    stats = SolveStats(solver="roundrobin")
    for iteration in range(max_iterations):
        changed = False
        for idx in order:
            block = cfg.block(idx)
            block_in = _merged_input(cfg, block, init, exits, join)
            if block_in is None:
                continue
            old_in = entry.get(idx)
            if old_in is None or not same(old_in, block_in):
                entry[idx] = block_in
                changed = True
            else:
                block_in = old_in
            block_out = transfer(block, block_in)
            stats.blocks_transferred += 1
            old_out = exits.get(idx)
            if old_out is None or not same(old_out, block_out):
                exits[idx] = block_out
                changed = True
        stats.iterations = iteration + 1
        if not changed:
            break
    return entry, exits, stats


def solve_worklist(
    cfg: CFG,
    init: State,
    transfer: Callable[[BasicBlock, State], State],
    join: Callable[[State, State], State],
    same: Callable[[State, State], bool],
    max_iterations: int = MAX_FIXPOINT_ITERATIONS,
) -> Tuple[Dict[int, State], Dict[int, State], SolveStats]:
    """Predecessor-triggered iteration in reverse-postorder priority.

    Sweeps mirror the round-robin engine, but each block first checks the
    identity signature of its predecessors' exit states: if none changed
    since the block was last processed, neither the join nor the transfer is
    re-run (a deterministic transfer of an unchanged input reproduces the
    recorded exit).  The state trajectory — and therefore the result — is
    exactly the round-robin engine's, while stable regions cost one tuple
    comparison per sweep instead of a join, a matrix copy per statement, and
    a dense equivalence scan.
    """
    order = cfg.reverse_postorder()
    entry: Dict[int, State] = {}
    exits: Dict[int, State] = {}
    #: per block, the predecessor-exit objects its input was last built from
    signatures: Dict[int, Tuple[State, ...]] = {}
    stats = SolveStats(solver="worklist")

    for sweep in range(max_iterations):
        changed = False
        for idx in order:
            block = cfg.block(idx)
            if idx == cfg.entry:
                block_in = init
            else:
                signature = tuple(
                    exits[p] for p in block.predecessors if p in exits
                )
                if not signature:
                    continue  # no predecessor has produced a state yet
                previous = signatures.get(idx)
                if (
                    previous is not None
                    and len(previous) == len(signature)
                    and all(a is b for a, b in zip(previous, signature))
                ):
                    continue  # unchanged input: recorded entry/exit still valid
                signatures[idx] = signature
                block_in = signature[0]
                for other in signature[1:]:
                    block_in = join(block_in, other)
            old_in = entry.get(idx)
            if old_in is None or not same(old_in, block_in):
                entry[idx] = block_in
                changed = True
            else:
                block_in = old_in
                if idx in exits:
                    # equal input value: re-transferring would reproduce the
                    # recorded exit, so only the signature needed refreshing
                    continue
            block_out = transfer(block, block_in)
            stats.blocks_transferred += 1
            old_out = exits.get(idx)
            if old_out is None or not same(old_out, block_out):
                exits[idx] = block_out
                changed = True
        stats.iterations = sweep + 1
        if not changed:
            break
    return entry, exits, stats


SOLVERS = {
    "worklist": solve_worklist,
    "roundrobin": solve_roundrobin,
}
