"""Parallelizing and optimizing transformations driven by ADDS + path matrices.

The paper demonstrates one transformation in detail — strip-mining a pointer
traversal loop across the processors of a shared-memory machine (section
4.3.3) — and cites two more enabled by the same analysis: loop unrolling
[HG92] and software pipelining [HHN92].  This package implements all three,
plus the loop dependence test that gates them:

* :mod:`repro.transform.dependence` — decides whether a traversal loop's
  iterations are independent, using the path-matrix alias oracle,
* :mod:`repro.transform.stripmine` — the BHL1/BHL2 transformation: each
  parallel step processes ``PEs`` consecutive list nodes, relying on
  speculative traversability to skip the NULL checks,
* :mod:`repro.transform.unroll` — unrolls a traversal loop by a factor k,
* :mod:`repro.transform.pipeline` — software-pipelines a traversal loop into
  a prologue / steady-state kernel / epilogue,
* :mod:`repro.transform.report` — human-readable transformation reports.
"""

from repro.transform.dependence import (
    DependenceTest,
    LoopClassification,
    classify_loop,
)
from repro.transform.stripmine import StripMineResult, strip_mine_loop, strip_mine_function
from repro.transform.unroll import UnrollResult, unroll_loop
from repro.transform.pipeline import PipelineResult, software_pipeline_loop
from repro.transform.report import TransformationReport

__all__ = [
    "DependenceTest",
    "LoopClassification",
    "classify_loop",
    "StripMineResult",
    "strip_mine_loop",
    "strip_mine_function",
    "UnrollResult",
    "unroll_loop",
    "PipelineResult",
    "software_pipeline_loop",
    "TransformationReport",
]
