"""Loop dependence testing for pointer traversal loops.

``classify_loop`` wraps :func:`repro.pathmatrix.analysis.analyze_loop_dependence`
and turns its report into a transformation decision:

* ``DOALL_AFTER_TRAVERSAL`` — every iteration is independent except for the
  pointer-chasing update itself (``p = p->next``); the loop can be
  strip-mined / unrolled / pipelined (this is BHL1 and BHL2),
* ``SEQUENTIAL`` — a genuine loop-carried dependence (or an invalid
  abstraction) prevents parallel execution,
* ``NO_TRAVERSAL`` — the loop is not a pointer traversal at all (out of
  scope for these transformations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang.ast_nodes import Program, While, iter_statements
from repro.pathmatrix.analysis import LoopDependenceReport, analyze_loop_dependence


class LoopClassification(enum.Enum):
    """How a loop may legally be executed."""

    DOALL_AFTER_TRAVERSAL = "doall-after-traversal"
    SEQUENTIAL = "sequential"
    NO_TRAVERSAL = "no-traversal"

    def __str__(self) -> str:
        return self.value


@dataclass
class DependenceTest:
    """The outcome of dependence testing one loop."""

    classification: LoopClassification
    report: LoopDependenceReport | None = None
    traversal_var: str | None = None
    traversal_field: str | None = None
    reasons: list[str] = field(default_factory=list)

    @property
    def parallelizable(self) -> bool:
        return self.classification is LoopClassification.DOALL_AFTER_TRAVERSAL

    def describe(self) -> str:
        lines = [f"classification: {self.classification}"]
        if self.traversal_var is not None:
            lines.append(f"traversal: {self.traversal_var} = "
                         f"{self.traversal_var}->{self.traversal_field}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def find_while_loops(program: Program, function_name: str) -> list[While]:
    """All ``while`` loops of a function, outermost first."""
    func = program.function_named(function_name)
    if func is None:
        raise KeyError(f"no function named {function_name!r}")
    return [s for s in iter_statements(func.body) if isinstance(s, While)]


def classify_loop(
    program: Program,
    function_name: str,
    loop: While | None = None,
    use_adds: bool = True,
    analysis=None,
) -> DependenceTest:
    """Dependence-test one traversal loop of ``function_name``.

    With ``use_adds=False`` the same machinery runs but every ADDS
    declaration is ignored — reproducing what a conventional parallelizing
    compiler concludes ("the compiler must assume that p and p->next are
    potential aliases", section 4.2).
    """
    if loop is None:
        loops = find_while_loops(program, function_name)
        if not loops:
            return DependenceTest(
                classification=LoopClassification.NO_TRAVERSAL,
                reasons=["function contains no while loop"],
            )
        loop = loops[0]

    report = analyze_loop_dependence(
        program, function_name, loop, use_adds=use_adds, analysis=analysis
    )

    if not report.induction_vars:
        return DependenceTest(
            classification=LoopClassification.NO_TRAVERSAL,
            report=report,
            reasons=["loop body contains no pointer traversal update p = p->f"],
        )

    # pick the traversal variable: prefer one proven independent
    traversal_var = next(iter(report.induction_vars))
    for var in report.induction_vars:
        if var in report.independent_vars:
            traversal_var = var
            break
    traversal_field = report.induction_vars[traversal_var]

    if report.parallelizable:
        return DependenceTest(
            classification=LoopClassification.DOALL_AFTER_TRAVERSAL,
            report=report,
            traversal_var=traversal_var,
            traversal_field=traversal_field,
            reasons=[
                f"{traversal_var} = {traversal_var}->{traversal_field} always moves to a "
                "different node (ADDS: acyclic traversal)",
                "no two iterations write the same node",
                "ADDS abstraction valid at loop entry",
            ],
        )
    return DependenceTest(
        classification=LoopClassification.SEQUENTIAL,
        report=report,
        traversal_var=traversal_var,
        traversal_field=traversal_field,
        reasons=list(report.carried_dependences)
        or ["analysis could not prove iteration independence"],
    )
