"""Software pipelining of traversal loops (cited from [HHN92]).

Software pipelining overlaps the *traversal* of node ``i+1`` with the *work*
on node ``i``.  For a pointer loop this means hoisting the pointer-chasing
load above the work::

    while p <> NULL              p = head;
    { work(p);                   if p <> NULL
      p = p->next;        =>     { next_p = p->next;        /* prologue  */
    }                              while next_p <> NULL
                                   { work(p);                /* steady    */
                                     p = next_p;             /* state     */
                                     next_p = p->next;       /* kernel    */
                                   }
                                   work(p);                  /* epilogue  */
                                 }

The legality argument is the one the paper makes for BHL1: ``p->next`` never
aliases the node being worked on (ADDS acyclic traversal), so the load can
move above the work.  The speculative-traversability property additionally
allows ``next_p = p->next`` to be issued even when ``p`` is the last node.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Block,
    FieldAccess,
    FieldAssign,
    If,
    Name,
    NullLit,
    Program,
    VarDecl,
    While,
    iter_statements,
)
from repro.transform.dependence import (
    DependenceTest,
    LoopClassification,
    classify_loop,
    find_while_loops,
)
from repro.transform.stripmine import (
    TransformError,
    _check_traversal_shape,
    _find_traversal_update,
    _fresh_name,
)


@dataclass
class PipelineResult:
    """Outcome of software-pipelining one traversal loop."""

    program: Program
    function_name: str
    traversal_var: str
    traversal_field: str
    lookahead_var: str
    dependence: DependenceTest | None = None
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"software-pipelined loop in {self.function_name}: lookahead variable "
            f"{self.lookahead_var} prefetches {self.traversal_var}->{self.traversal_field}"
        )


def software_pipeline_loop(
    program: Program,
    function_name: str,
    loop_index: int = 0,
    check_dependences: bool = True,
) -> PipelineResult:
    """Software-pipeline the ``loop_index``-th while loop of ``function_name``."""
    loops = find_while_loops(program, function_name)
    if loop_index >= len(loops):
        raise TransformError(f"loop index {loop_index} out of range")

    dependence: DependenceTest | None = None
    if check_dependences:
        dependence = classify_loop(program, function_name, loops[loop_index])
        if dependence.classification is not LoopClassification.DOALL_AFTER_TRAVERSAL:
            raise TransformError(
                "loop is not pipelineable: " + "; ".join(dependence.reasons)
            )

    new_program = copy.deepcopy(program)
    func = new_program.function_named(function_name)
    assert func is not None
    body_stmts = func.body.statements
    loop = [s for s in iter_statements(func.body) if isinstance(s, While)][loop_index]

    found = _find_traversal_update(loop.body)
    if found is None:
        raise TransformError("loop body has no traversal update p = p->f")
    update_idx, traversal_var, traversal_field = found
    _check_traversal_shape(loop, update_idx, traversal_var)
    work = [s for i, s in enumerate(loop.body.statements) if i != update_idx]
    if not work:
        raise TransformError("loop body consists only of the traversal update")
    # the kernel loads p->next *before* the work runs; a store to the
    # traversal field would make the prefetched link stale
    for stmt in work:
        for node in stmt.walk():
            if isinstance(node, FieldAssign) and node.field == traversal_field:
                raise TransformError(
                    f"loop body writes the traversal field {traversal_field!r}; "
                    f"the prefetched link would be stale"
                )

    taken = {p.name for p in func.params} | {
        s.name for s in iter_statements(func.body) if isinstance(s, VarDecl)
    }
    lookahead = _fresh_name(f"next_{traversal_var}", taken)

    def load_next(into: str) -> Assign:
        return Assign(
            target=into,
            value=FieldAccess(base=Name(traversal_var), field=traversal_field),
        )

    steady_state = While(
        cond=BinOp(op="<>", left=Name(lookahead), right=NullLit()),
        body=Block(
            statements=copy.deepcopy(work)
            + [Assign(target=traversal_var, value=Name(lookahead)), load_next(lookahead)]
        ),
        line=loop.line,
    )
    pipelined = If(
        cond=BinOp(op="<>", left=Name(traversal_var), right=NullLit()),
        then_body=Block(
            statements=[
                VarDecl(name=lookahead),
                load_next(lookahead),           # prologue: prefetch the next node
                steady_state,                   # kernel
                Block(statements=copy.deepcopy(work)),  # epilogue: last node's work
            ]
        ),
        line=loop.line,
    )

    # splice the pipelined structure in place of the original loop
    _replace_statement(func.body, loop, pipelined)

    return PipelineResult(
        program=new_program,
        function_name=function_name,
        traversal_var=traversal_var,
        traversal_field=traversal_field,
        lookahead_var=lookahead,
        dependence=dependence,
        notes=[
            "the prefetch of p->next above the work is legal because ADDS shows "
            "the next node is never the node being written",
            "the prologue prefetch relies on speculative traversability when the "
            "list has exactly one node",
        ],
    )


def _replace_statement(block: Block, old, new) -> bool:
    """Replace ``old`` (by identity) with ``new`` anywhere inside ``block``."""
    from repro.lang.ast_nodes import For, If as IfStmt, ParallelFor, While as WhileStmt

    for i, stmt in enumerate(block.statements):
        if stmt is old:
            block.statements[i] = new
            return True
        if isinstance(stmt, Block):
            if _replace_statement(stmt, old, new):
                return True
        elif isinstance(stmt, IfStmt):
            if _replace_statement(stmt.then_body, old, new):
                return True
            if stmt.else_body is not None and _replace_statement(stmt.else_body, old, new):
                return True
        elif isinstance(stmt, (WhileStmt, For, ParallelFor)):
            if _replace_statement(stmt.body, old, new):
                return True
    return False
