"""Loop unrolling for pointer traversal loops (cited from [HG92]).

Unrolling a traversal loop by a factor ``k`` replicates the body ``k`` times,
renaming nothing but letting the traversal update carry the pointer forward
between copies::

    while p <> NULL              while p <> NULL
    { work(p);                   { work(p);
      p = p->next;        =>       p = p->next;
    }                              if p <> NULL { work(p); p = p->next; }
                                   ... (k-1 guarded copies)
                                 }

The guards on the 2nd..k-th copies are required because the list length need
not be a multiple of ``k``; each guard repeats the loop's *own* condition —
guarding with a mere NULL check would run the extra copies for a loop such
as ``while p->coef > 0`` past its actual exit point.  When the structure is
speculatively traversable *and* the work is known to be harmless on a NULL
node the guards could be dropped; we keep them for a semantics-preserving
transformation.

The transformation is legal for any loop (it does not reorder work between
iterations), but it is *useful* — exposes instruction-level parallelism —
exactly when the dependence test shows the per-node work of consecutive
iterations to be independent, which is the property ADDS establishes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Block,
    Call,
    If,
    New,
    Program,
    While,
    iter_statements,
)
from repro.transform.dependence import DependenceTest, classify_loop, find_while_loops
from repro.transform.stripmine import TransformError, _find_traversal_update


@dataclass
class UnrollResult:
    """Outcome of unrolling one traversal loop."""

    program: Program
    function_name: str
    factor: int
    traversal_var: str
    traversal_field: str
    dependence: DependenceTest | None = None
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"unrolled loop in {self.function_name} by factor {self.factor} "
            f"(traversal {self.traversal_var}->{self.traversal_field})"
        )


def unroll_loop(
    program: Program,
    function_name: str,
    factor: int = 4,
    loop_index: int = 0,
    check_dependences: bool = False,
) -> UnrollResult:
    """Unroll the ``loop_index``-th while loop of ``function_name`` ``factor`` times."""
    if factor < 2:
        raise TransformError("unroll factor must be at least 2")
    loops = find_while_loops(program, function_name)
    if loop_index >= len(loops):
        raise TransformError(f"loop index {loop_index} out of range")

    dependence: DependenceTest | None = None
    if check_dependences:
        dependence = classify_loop(program, function_name, loops[loop_index])

    new_program = copy.deepcopy(program)
    func = new_program.function_named(function_name)
    assert func is not None
    loop = [s for s in iter_statements(func.body) if isinstance(s, While)][loop_index]

    found = _find_traversal_update(loop.body)
    if found is None:
        raise TransformError("loop body has no traversal update p = p->f")
    _idx, traversal_var, traversal_field = found

    # the guards re-evaluate the loop condition between body copies, so the
    # condition must be pure — a call could observe the extra evaluation
    if any(isinstance(n, (Call, New)) for n in loop.cond.walk()):
        raise TransformError(
            "loop condition contains a call or allocation; unrolling would "
            "re-evaluate its side effects"
        )

    original_body = list(loop.body.statements)
    new_statements = list(copy.deepcopy(original_body))
    for _ in range(factor - 1):
        guarded = If(
            # the loop's own condition, not just `p <> NULL`: the 2nd..k-th
            # copies must stop exactly where the original loop would have
            cond=copy.deepcopy(loop.cond),
            then_body=Block(statements=copy.deepcopy(original_body)),
        )
        new_statements.append(guarded)
    loop.body = Block(statements=new_statements, line=loop.body.line)

    return UnrollResult(
        program=new_program,
        function_name=function_name,
        factor=factor,
        traversal_var=traversal_var,
        traversal_field=traversal_field,
        dependence=dependence,
        notes=[
            "copies 2..k are guarded by the loop's own condition because the "
            "trip count need not be a multiple of the unroll factor"
        ],
    )
